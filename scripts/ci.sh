#!/usr/bin/env bash
# Tier-1 gate: build, tests, formatting, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
# Determinism/contract audit (rules R1-R10): machine-readable report for
# artifact upload, suppression-debt ledger on stderr, nonzero exit on any
# diagnostic.
mkdir -p target
cargo run -p mcs-lint --release -- --json > target/lint-report.json
cargo run -p mcs-lint --release -- --debt
# Chaos smoke test: corrupted-trace ingestion + seeded fault-plan replay
# (bit-identical across runs, availability bounded, no panics).
cargo run --release --example chaos_replay
# Observability tour: metric snapshots byte-identical across thread counts.
cargo run --release --example observability
# Fleet replay on the shared mcs-sim timeline: fair-weather + faulted
# snapshots (sim.* counters included) byte-identical across runs and
# thread counts.
cargo run --release --example fleet_replay
# Transfer-protocol tour: out-of-order arrival, resume-from-partial,
# dedup-aware skips — every section asserts its invariants.
cargo run --release --example chunk_transfer
# Sync-protocol evaluation: whole-file retry vs. chunk-resume under a
# chaos plan, §3.3 optimisations over the same workload, bit-identical
# across runs and thread counts.
cargo run --release --example sync_protocol
# Scenario matrix: device x radio-profile x file-size sweep. Asserts the
# Fig 12/13/15 orderings under the measured baseline, the fair-share vs
# packet-level parity band, and byte-identical reports across 2 runs x 2
# thread counts (small smoke matrix; --full runs the paper's 2/10/80 MB).
cargo run --release --example scenario_matrix
# Out-of-core ingest: sharded JSONL + columnar traces streamed back
# bit-identical to the in-memory pipeline at several thread counts.
cargo run --release --example big_trace
# Same pipeline across all three formats at smoke scale, plus the
# columnar density floor.
cargo run --release -p mcs-bench --bin trace_ingest -- --smoke
echo "ci: all checks passed"
