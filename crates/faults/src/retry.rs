//! Budget-bounded retry with capped exponential backoff and seeded jitter.
//!
//! The policy is *pure*: [`RetryPolicy::backoff_ms`] maps an attempt index
//! and a unit coin to a delay, so the caller decides where the coin comes
//! from (in the replay layer it is a [`crate::unit_coin`] keyed by the
//! operation number, keeping faulted replays order-free).

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// How a fault-aware operation retries before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (1..=32).
    pub max_attempts: u32,
    /// Backoff before the first retry, in ms.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, in ms.
    pub cap_backoff_ms: u64,
    /// Jitter amplitude: the delay is scaled by a factor drawn uniformly
    /// from `[1 - jitter_frac, 1 + jitter_frac]` (in `[0, 1]`).
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ms: 200,
            cap_backoff_ms: 10_000,
            jitter_frac: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Checks the knobs (attempt budget in `1..=32`, jitter in `[0, 1]`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(1..=32).contains(&self.max_attempts) {
            return Err(ConfigError::OutOfRange {
                what: "max_attempts",
                requirement: "must lie in 1..=32",
            });
        }
        if !(0.0..=1.0).contains(&self.jitter_frac) {
            return Err(ConfigError::OutOfRange {
                what: "jitter_frac",
                requirement: "must lie in [0,1]",
            });
        }
        Ok(())
    }

    /// The jittered delay before retry number `attempt` (1-based: attempt 1
    /// is the first *retry*). `coin` must be uniform in `[0, 1)`.
    ///
    /// The un-jittered delay is `base * 2^(attempt-1)` capped at
    /// `cap_backoff_ms`; jitter scales it by `1 ± jitter_frac`, and the
    /// jittered result is clamped to the cap again so `cap_backoff_ms`
    /// really is a ceiling on any single backoff.
    pub fn backoff_ms(&self, attempt: u32, coin: f64) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp.min(63))
            .min(self.cap_backoff_ms);
        let factor = 1.0 + self.jitter_frac * (2.0 * coin - 1.0);
        ((raw as f64 * factor).max(0.0) as u64).min(self.cap_backoff_ms)
    }

    /// True when another attempt is allowed after `attempt` attempts have
    /// already failed.
    pub fn allows(&self, attempts_so_far: u32) -> bool {
        attempts_so_far < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_until_cap() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 100,
            cap_backoff_ms: 1000,
            jitter_frac: 0.0,
        };
        assert_eq!(p.backoff_ms(1, 0.5), 100);
        assert_eq!(p.backoff_ms(2, 0.5), 200);
        assert_eq!(p.backoff_ms(3, 0.5), 400);
        assert_eq!(p.backoff_ms(4, 0.5), 800);
        assert_eq!(p.backoff_ms(5, 0.5), 1000); // capped
        assert_eq!(p.backoff_ms(30, 0.5), 1000); // no overflow
    }

    #[test]
    fn jitter_scales_within_band() {
        let p = RetryPolicy {
            jitter_frac: 0.5,
            ..RetryPolicy::default()
        };
        let lo = p.backoff_ms(1, 0.0);
        let hi = p.backoff_ms(1, 0.999_999);
        assert!(lo < p.base_backoff_ms && hi > p.base_backoff_ms);
        assert!(lo as f64 >= p.base_backoff_ms as f64 * 0.5 - 1.0);
        assert!(hi as f64 <= p.base_backoff_ms as f64 * 1.5 + 1.0);
        // cap_backoff_ms is a hard ceiling even under maximal upward
        // jitter: a deep attempt whose raw delay hits the cap must not
        // exceed it after jitter is applied.
        assert_eq!(p.backoff_ms(10, 0.999_999), p.cap_backoff_ms);
        assert_eq!(p.backoff_ms(10, 0.5), p.cap_backoff_ms);
    }

    #[test]
    fn budget_is_enforced() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.allows(0));
        assert!(p.allows(2));
        assert!(!p.allows(3));
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
        p.max_attempts = 33;
        assert!(p.validate().is_err());
        p.max_attempts = 4;
        p.jitter_frac = 1.5;
        assert!(p.validate().is_err());
        p.jitter_frac = 0.5;
        assert!(p.validate().is_ok());
    }
}
