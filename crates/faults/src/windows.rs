//! Sorted, disjoint, half-open time windows.
//!
//! Every fault schedule in this crate — front-end outages, brownouts,
//! metadata unavailability, link blackouts — is "a set of intervals during
//! which something is wrong". [`Windows`] is that set, normalised once at
//! construction (sorted, overlaps merged, empties dropped) so membership
//! queries are a binary search and two schedules compare equal iff they
//! cover the same instants.
//!
//! Units are deliberately unspecified: the storage layer uses milliseconds,
//! the packet layer microseconds. [`Windows::scale`] converts between them.

use serde::{Deserialize, Serialize};

/// A normalised set of half-open `[start, end)` intervals.
///
/// Invariant: spans are sorted by start, pairwise disjoint (no two spans
/// touch or overlap), and non-empty (`start < end`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Windows {
    spans: Vec<(u64, u64)>,
}

impl Windows {
    /// The empty set: `contains` is `false` everywhere.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a normalised window set from arbitrary `(start, end)` pairs.
    ///
    /// Pairs with `start >= end` are dropped; overlapping or adjacent pairs
    /// are merged. The input order does not matter.
    pub fn new(mut spans: Vec<(u64, u64)>) -> Self {
        spans.retain(|&(s, e)| s < e);
        spans.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        Self { spans: merged }
    }

    /// True when `t` falls inside some window.
    pub fn contains(&self, t: u64) -> bool {
        // Index of the first span starting after `t`; the candidate is the
        // one before it.
        let idx = self.spans.partition_point(|&(s, _)| s <= t);
        idx > 0 && t < self.spans[idx - 1].1
    }

    /// The earliest instant `>= t` that is *not* covered by any window.
    ///
    /// Returns `t` itself when `t` is already clear. Because spans are
    /// disjoint and non-adjacent, the end of the covering span is clear.
    pub fn next_clear(&self, t: u64) -> u64 {
        let idx = self.spans.partition_point(|&(s, _)| s <= t);
        if idx > 0 && t < self.spans[idx - 1].1 {
            self.spans[idx - 1].1
        } else {
            t
        }
    }

    /// Total covered duration (sum of span lengths).
    pub fn covered(&self) -> u64 {
        self.spans.iter().map(|&(s, e)| e - s).sum()
    }

    /// The normalised spans, sorted and disjoint.
    pub fn spans(&self) -> &[(u64, u64)] {
        &self.spans
    }

    /// True when no instants are covered.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Multiplies every boundary by `factor` (saturating), e.g. to convert
    /// a millisecond schedule to the microsecond clock of the packet layer.
    ///
    /// The result is re-normalised through [`Windows::new`]: saturation can
    /// collapse a span to empty (`(MAX, MAX)`) or make previously separate
    /// spans touch, and `factor == 0` collapses everything — all of which
    /// would otherwise break the sorted/disjoint/non-empty invariant that
    /// `contains`, `next_clear`, and `PartialEq` rely on.
    pub fn scale(&self, factor: u64) -> Self {
        Self::new(
            self.spans
                .iter()
                .map(|&(s, e)| (s.saturating_mul(factor), e.saturating_mul(factor)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_overlaps_and_order() {
        let w = Windows::new(vec![(50, 60), (10, 20), (15, 30), (30, 35), (40, 40)]);
        // (15,30) overlaps (10,20); (30,35) touches the merged (10,30);
        // (40,40) is empty and dropped.
        assert_eq!(w.spans(), &[(10, 35), (50, 60)]);
        assert_eq!(w.covered(), 25 + 10);
    }

    #[test]
    fn contains_is_half_open() {
        let w = Windows::new(vec![(10, 20)]);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(!Windows::empty().contains(0));
    }

    #[test]
    fn next_clear_skips_covering_span() {
        let w = Windows::new(vec![(10, 20), (30, 40)]);
        assert_eq!(w.next_clear(5), 5);
        assert_eq!(w.next_clear(10), 20);
        assert_eq!(w.next_clear(15), 20);
        assert_eq!(w.next_clear(20), 20);
        assert_eq!(w.next_clear(35), 40);
        assert_eq!(w.next_clear(99), 99);
    }

    #[test]
    fn scale_converts_units() {
        let w = Windows::new(vec![(1, 2), (5, 7)]).scale(1000);
        assert_eq!(w.spans(), &[(1000, 2000), (5000, 7000)]);
        assert!(w.contains(1500));
        assert!(!w.contains(2500));
    }

    #[test]
    fn equal_coverage_compares_equal() {
        let a = Windows::new(vec![(0, 10), (10, 20)]);
        let b = Windows::new(vec![(0, 20)]);
        assert_eq!(a, b);
    }

    /// Checks the construction invariant directly: sorted by start,
    /// pairwise disjoint and non-touching, every span non-empty.
    fn assert_normalised(w: &Windows) {
        for pair in w.spans().windows(2) {
            assert!(pair[0].1 < pair[1].0, "overlap/touch in {:?}", w.spans());
        }
        for &(s, e) in w.spans() {
            assert!(s < e, "empty span in {:?}", w.spans());
        }
    }

    #[test]
    fn scale_zero_collapses_to_empty() {
        let w = Windows::new(vec![(1, 2), (5, 7)]).scale(0);
        assert_eq!(w, Windows::empty());
        assert!(!w.contains(0));
    }

    #[test]
    fn scale_saturation_keeps_invariant() {
        // Both boundaries of the second span saturate to u64::MAX — the
        // degenerate (MAX, MAX) span must be dropped, not kept.
        let w = Windows::new(vec![(1, 2), (5, 7)]).scale(u64::MAX / 2);
        assert_normalised(&w);
        assert_eq!(w.spans(), &[(u64::MAX / 2, u64::MAX - 1)]);
        // Saturation can also make previously separate spans touch; the
        // result must merge them so `next_clear` still lands in the clear.
        let touching = Windows::new(vec![(1, 2), (3, 4)]).scale(u64::MAX / 3);
        assert_normalised(&touching);
        let t = touching.spans()[0].0;
        assert!(!touching.contains(touching.next_clear(t)));
    }

    proptest::proptest! {
        /// `scale` output always satisfies the sorted/disjoint/non-empty
        /// invariant, including factors that force saturation or collapse.
        #[test]
        fn prop_scale_preserves_invariant(
            raw in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..12),
            factor in proptest::prop_oneof![
                proptest::prelude::Just(0u64),
                proptest::prelude::Just(1u64),
                proptest::prelude::Just(1000u64),
                proptest::prelude::Just(u64::MAX / 2),
                proptest::prelude::Just(u64::MAX),
                proptest::prelude::any::<u64>(),
            ],
        ) {
            let w = Windows::new(raw).scale(factor);
            assert_normalised(&w);
            // A normalised set round-trips through its own spans.
            proptest::prop_assert_eq!(&w, &Windows::new(w.spans().to_vec()));
        }
    }
}
