//! The shared invalid-configuration error.
//!
//! Fallible constructors across the workspace (`StorageService::new`,
//! `MetadataServer::new`, `LruCache::new`, `Link::new`, fault-plan and
//! retry-policy validation) return this instead of `assert!`ing, so a bad
//! knob surfaces as a value the caller can handle — a CLI prints it, a
//! harness skips the scenario — rather than a panic that kills a replay.

use std::fmt;

/// Why a configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A count that must be at least one was zero.
    ZeroCount {
        /// Which knob (e.g. `"front-ends"`).
        what: &'static str,
    },
    /// A numeric parameter fell outside its valid range.
    OutOfRange {
        /// Which knob (e.g. `"link rate"`).
        what: &'static str,
        /// The requirement it violated (e.g. `"must be positive"`).
        requirement: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCount { what } => {
                write!(f, "invalid configuration: need at least one {what}")
            }
            ConfigError::OutOfRange { what, requirement } => {
                write!(f, "invalid configuration: {what} {requirement}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_knob() {
        let e = ConfigError::ZeroCount { what: "front-end" };
        assert_eq!(
            e.to_string(),
            "invalid configuration: need at least one front-end"
        );
        let e = ConfigError::OutOfRange {
            what: "loss probability",
            requirement: "must lie in [0,1)",
        };
        assert!(e.to_string().contains("loss probability"));
        assert!(e.to_string().contains("[0,1)"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
