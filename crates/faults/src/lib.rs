//! Deterministic fault injection for the IMC'16 reproduction.
//!
//! Mobile clients live on lossy, high-RTT Wi-Fi/LTE paths, and production
//! clusters lose front-ends, brown out, and partition — yet a reproduction
//! that only ever sees fair weather proves nothing about resilience. This
//! crate supplies the *adverse* weather, deterministically:
//!
//! * [`windows`] — sorted, disjoint half-open time windows ([`Windows`]),
//!   the representation every fault schedule shares,
//! * [`plan`] — [`FaultPlan`]: per-component outage/brownout/blackout
//!   schedules generated from a single seed via
//!   [`mcs_stats::rng::stream_rng`], plus stateless per-operation fault
//!   coins ([`unit_coin`]) that do not depend on draw order,
//! * [`retry`] — [`RetryPolicy`]: capped exponential backoff with
//!   deterministic jitter, budget-bounded,
//! * [`error`] — [`ConfigError`], the shared invalid-configuration error
//!   the storage and net crates return from fallible constructors.
//!
//! Everything honours the workspace determinism contract (DESIGN.md §7):
//! identical seeds give bit-identical fault timelines at any thread count,
//! because schedules are materialised once by a sequential pass and
//! per-operation decisions are pure hashes of `(seed, stream, op, attempt)`
//! rather than draws from shared mutable RNG state.
//!
//! Fault windows are authored in *milliseconds* (the service clock); the
//! shared `mcs-sim` timeline runs in *microseconds*. The conversion lives
//! in exactly two places — [`FaultPlan::link_blackouts_us`] for the packet
//! layer and the `*_at` helpers ([`FaultPlan::frontend_down_at`] et al.)
//! for components reading the simulation clock directly — so no caller
//! ever divides or multiplies by 1 000 itself (DESIGN.md §10).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod error;
pub mod plan;
pub mod retry;
pub mod windows;

pub use error::ConfigError;
pub use plan::{unit_coin, FaultPlan, FaultPlanConfig};
pub use retry::RetryPolicy;
pub use windows::Windows;
