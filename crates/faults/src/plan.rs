//! Seeded fault plans: *when* each component misbehaves.
//!
//! A [`FaultPlan`] is materialised once from a [`FaultPlanConfig`] by a
//! sequential pass per component — outage start gaps and durations are
//! exponential draws from dedicated [`stream_rng`] streams, so the timeline
//! for front-end 3 does not depend on how many draws front-end 2 consumed,
//! and the whole plan is bit-identical for a given `(seed, config)` at any
//! thread count.
//!
//! Per-*operation* fault decisions (does this chunk transfer time out?) are
//! not drawn from an RNG at all: they are pure hashes of
//! `(seed, stream, op, attempt)` via [`unit_coin`], so concurrent replays
//! that interleave operations differently still flip the same coins.

use serde::{Deserialize, Serialize};

use mcs_stats::rng::{split_seed, stream_rng, Exponential};

use crate::error::ConfigError;
use crate::windows::Windows;

const DAY_MS: f64 = 86_400_000.0;

// Stream ids for schedule generation (one RNG per component instance).
const STREAM_FE_OUTAGE: u64 = 0xFA01_0000;
const STREAM_FE_BROWNOUT: u64 = 0xFA02_0000;
const STREAM_METADATA: u64 = 0xFA03_0000;
const STREAM_LINK: u64 = 0xFA04_0000;

/// Maps a SplitMix64 output to a uniform in `[0, 1)` using the top 53 bits.
fn to_unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A stateless fault coin: uniform in `[0, 1)`, a pure function of
/// `(seed, stream, k)`.
///
/// Unlike a draw from a shared RNG, the value for operation `k` is
/// independent of how many coins other operations flipped — this is what
/// keeps faulted replays order-free and hence bit-identical across thread
/// counts (the same property `mcs-lint` R2 guards for clocks).
pub fn unit_coin(seed: u64, stream: u64, k: u64) -> f64 {
    to_unit(split_seed(split_seed(seed, stream), k))
}

/// Knobs for [`FaultPlan::generate`]. Rates are events per simulated day;
/// a rate of zero disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Master seed; the same seed always yields the same plan.
    pub seed: u64,
    /// Plan horizon in milliseconds; no window extends past it.
    pub horizon_ms: u64,
    /// Number of front-ends to schedule faults for (>= 1).
    pub n_frontends: usize,
    /// Full outages per front-end per day (requests fail, failover kicks in).
    pub frontend_outages_per_day: f64,
    /// Mean outage duration in ms.
    pub frontend_outage_mean_ms: f64,
    /// Brownouts per front-end per day (requests may time out, see
    /// [`FaultPlanConfig::chunk_timeout_prob`]).
    pub frontend_brownouts_per_day: f64,
    /// Mean brownout duration in ms.
    pub frontend_brownout_mean_ms: f64,
    /// Probability a chunk transfer times out while its front-end is
    /// browned out (in `[0, 1]`).
    pub chunk_timeout_prob: f64,
    /// Metadata-server unavailability windows per day.
    pub metadata_outages_per_day: f64,
    /// Mean metadata outage duration in ms.
    pub metadata_outage_mean_ms: f64,
    /// Link blackouts per day (the path drops everything mid-window).
    pub link_blackouts_per_day: f64,
    /// Mean link blackout duration in ms.
    pub link_blackout_mean_ms: f64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            horizon_ms: 86_400_000, // one day
            n_frontends: 8,
            frontend_outages_per_day: 2.0,
            frontend_outage_mean_ms: 120_000.0, // 2 min
            frontend_brownouts_per_day: 6.0,
            frontend_brownout_mean_ms: 300_000.0, // 5 min
            chunk_timeout_prob: 0.5,
            metadata_outages_per_day: 0.5,
            metadata_outage_mean_ms: 30_000.0,
            link_blackouts_per_day: 12.0,
            link_blackout_mean_ms: 5_000.0,
        }
    }
}

impl FaultPlanConfig {
    /// Checks every knob; [`FaultPlan::generate`] calls this first.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_frontends == 0 {
            return Err(ConfigError::ZeroCount { what: "front-end" });
        }
        if self.horizon_ms == 0 {
            return Err(ConfigError::OutOfRange {
                what: "horizon_ms",
                requirement: "must be positive",
            });
        }
        let rates = [
            ("frontend_outages_per_day", self.frontend_outages_per_day),
            (
                "frontend_brownouts_per_day",
                self.frontend_brownouts_per_day,
            ),
            ("metadata_outages_per_day", self.metadata_outages_per_day),
            ("link_blackouts_per_day", self.link_blackouts_per_day),
        ];
        for (what, rate) in rates {
            if !rate.is_finite() || rate < 0.0 {
                return Err(ConfigError::OutOfRange {
                    what,
                    requirement: "must be finite and non-negative",
                });
            }
        }
        let durations = [
            ("frontend_outage_mean_ms", self.frontend_outage_mean_ms),
            ("frontend_brownout_mean_ms", self.frontend_brownout_mean_ms),
            ("metadata_outage_mean_ms", self.metadata_outage_mean_ms),
            ("link_blackout_mean_ms", self.link_blackout_mean_ms),
        ];
        for (what, mean) in durations {
            if !mean.is_finite() || mean <= 0.0 {
                return Err(ConfigError::OutOfRange {
                    what,
                    requirement: "must be finite and positive",
                });
            }
        }
        if !(0.0..=1.0).contains(&self.chunk_timeout_prob) {
            return Err(ConfigError::OutOfRange {
                what: "chunk_timeout_prob",
                requirement: "must lie in [0,1]",
            });
        }
        Ok(())
    }
}

/// Draws one component's schedule: exponential gaps between window starts,
/// exponential durations, clipped to the horizon.
fn draw_windows(seed: u64, stream: u64, horizon_ms: u64, per_day: f64, mean_ms: f64) -> Windows {
    if per_day <= 0.0 {
        return Windows::empty();
    }
    let mut rng = stream_rng(seed, stream);
    let gap = Exponential::new(DAY_MS / per_day);
    let dur = Exponential::new(mean_ms);
    let mut spans = Vec::new();
    let mut cursor = 0.0f64;
    loop {
        cursor += gap.sample(&mut rng);
        if cursor >= horizon_ms as f64 {
            break;
        }
        let start = cursor as u64;
        let end = (cursor + dur.sample(&mut rng).max(1.0)).min(horizon_ms as f64) as u64;
        spans.push((start, end));
        cursor = end as f64;
    }
    Windows::new(spans)
}

/// Per-operation coin streams used by consumers of a plan. Public so the
/// storage layer can keep its retry-jitter coins on a disjoint stream.
pub mod streams {
    /// Chunk-transfer timeout coins (one per `(op, attempt)`).
    pub const CHUNK_TIMEOUT: u64 = 0xFB02;
    /// Per-chunk send-timeout coins for the resumable transfer protocol
    /// (one per `(op, chunk, send)`).
    pub const CHUNK_SEND: u64 = 0xFB03;
}

/// The materialised fault timeline for one simulated deployment.
///
/// All times are milliseconds on the replay's virtual clock, starting at 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from (also seeds per-op coins).
    pub seed: u64,
    /// Horizon the schedules were clipped to.
    pub horizon_ms: u64,
    /// Full-outage windows, one schedule per front-end.
    pub frontend_outages: Vec<Windows>,
    /// Brownout windows, one schedule per front-end.
    pub frontend_brownouts: Vec<Windows>,
    /// Metadata-server unavailability windows.
    pub metadata_outages: Windows,
    /// Link blackout windows (ms; scale by 1000 for the µs packet clock).
    pub link_blackouts: Windows,
    /// Chunk-timeout probability during a brownout.
    pub chunk_timeout_prob: f64,
}

impl FaultPlan {
    /// Generates the plan for `cfg`; deterministic in `(cfg.seed, cfg)`.
    pub fn generate(cfg: &FaultPlanConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let frontend_outages = (0..cfg.n_frontends)
            .map(|fe| {
                draw_windows(
                    cfg.seed,
                    STREAM_FE_OUTAGE + fe as u64,
                    cfg.horizon_ms,
                    cfg.frontend_outages_per_day,
                    cfg.frontend_outage_mean_ms,
                )
            })
            .collect();
        let frontend_brownouts = (0..cfg.n_frontends)
            .map(|fe| {
                draw_windows(
                    cfg.seed,
                    STREAM_FE_BROWNOUT + fe as u64,
                    cfg.horizon_ms,
                    cfg.frontend_brownouts_per_day,
                    cfg.frontend_brownout_mean_ms,
                )
            })
            .collect();
        Ok(Self {
            seed: cfg.seed,
            horizon_ms: cfg.horizon_ms,
            frontend_outages,
            frontend_brownouts,
            metadata_outages: draw_windows(
                cfg.seed,
                STREAM_METADATA,
                cfg.horizon_ms,
                cfg.metadata_outages_per_day,
                cfg.metadata_outage_mean_ms,
            ),
            link_blackouts: draw_windows(
                cfg.seed,
                STREAM_LINK,
                cfg.horizon_ms,
                cfg.link_blackouts_per_day,
                cfg.link_blackout_mean_ms,
            ),
            chunk_timeout_prob: cfg.chunk_timeout_prob,
        })
    }

    /// A plan with no faults at all — replays under it behave exactly like
    /// un-faulted replays.
    pub fn none(n_frontends: usize) -> Self {
        Self {
            seed: 0,
            horizon_ms: u64::MAX,
            frontend_outages: vec![Windows::empty(); n_frontends],
            frontend_brownouts: vec![Windows::empty(); n_frontends],
            metadata_outages: Windows::empty(),
            link_blackouts: Windows::empty(),
            chunk_timeout_prob: 0.0,
        }
    }

    /// Does this plan inject no faults at all? An empty plan cannot gate
    /// anything on time, so replays under it keep the fair-weather
    /// plan-order timeline and stay bit-identical to un-faulted replays
    /// (DESIGN.md §10.4).
    pub fn is_empty(&self) -> bool {
        self.frontend_outages.iter().all(Windows::is_empty)
            && self.frontend_brownouts.iter().all(Windows::is_empty)
            && self.metadata_outages.is_empty()
            && self.link_blackouts.is_empty()
            && self.chunk_timeout_prob == 0.0
    }

    /// Is front-end `fe` fully down at `now_ms`? Unknown front-ends
    /// (beyond the plan's schedule count) never fail.
    pub fn frontend_down(&self, fe: usize, now_ms: u64) -> bool {
        self.frontend_outages
            .get(fe)
            .is_some_and(|w| w.contains(now_ms))
    }

    /// Is front-end `fe` browned out (degraded, chunk transfers may time
    /// out) at `now_ms`?
    pub fn frontend_degraded(&self, fe: usize, now_ms: u64) -> bool {
        self.frontend_brownouts
            .get(fe)
            .is_some_and(|w| w.contains(now_ms))
    }

    /// Is the metadata server unavailable at `now_ms`?
    pub fn metadata_down(&self, now_ms: u64) -> bool {
        self.metadata_outages.contains(now_ms)
    }

    /// Link blackout windows on the microsecond clock of the packet layer.
    pub fn link_blackouts_us(&self) -> Windows {
        self.link_blackouts.scale(1000)
    }

    /// [`FaultPlan::frontend_down`] read directly off the shared `mcs-sim`
    /// timeline (µs). Fault windows are authored in milliseconds; this is
    /// the one conversion point between the two clocks (DESIGN.md §10).
    pub fn frontend_down_at(&self, fe: usize, t: mcs_sim::Time) -> bool {
        self.frontend_down(fe, t / mcs_sim::MS)
    }

    /// [`FaultPlan::frontend_degraded`] on the `mcs-sim` timeline (µs).
    pub fn frontend_degraded_at(&self, fe: usize, t: mcs_sim::Time) -> bool {
        self.frontend_degraded(fe, t / mcs_sim::MS)
    }

    /// [`FaultPlan::metadata_down`] on the `mcs-sim` timeline (µs).
    pub fn metadata_down_at(&self, t: mcs_sim::Time) -> bool {
        self.metadata_down(t / mcs_sim::MS)
    }

    /// Does attempt `attempt` of operation `op` on a browned-out front-end
    /// time out? A pure coin: independent of call order.
    pub fn chunk_timeout(&self, op: u64, attempt: u32) -> bool {
        unit_coin(
            self.seed,
            streams::CHUNK_TIMEOUT,
            op.wrapping_mul(64).wrapping_add(attempt as u64),
        ) < self.chunk_timeout_prob
    }

    /// Does the `send`-th transmission of `chunk` within operation `op`
    /// time out on a browned-out front-end? The resumable transfer
    /// protocol flips one coin per individual chunk send, keyed by the
    /// whole `(op, chunk, send)` triple on a stream disjoint from
    /// [`FaultPlan::chunk_timeout`], so decisions are order-free however
    /// out-of-order sends and resumed attempts interleave.
    pub fn chunk_send_timeout(&self, op: u64, chunk: u64, send: u32) -> bool {
        unit_coin(
            split_seed(self.seed, op),
            streams::CHUNK_SEND,
            chunk.wrapping_mul(64).wrapping_add(send as u64),
        ) < self.chunk_timeout_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let cfg = FaultPlanConfig {
            seed: 42,
            ..FaultPlanConfig::default()
        };
        let a = FaultPlan::generate(&cfg).unwrap();
        let b = FaultPlan::generate(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&FaultPlanConfig {
            seed: 1,
            ..FaultPlanConfig::default()
        })
        .unwrap();
        let b = FaultPlan::generate(&FaultPlanConfig {
            seed: 2,
            ..FaultPlanConfig::default()
        })
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn schedules_respect_horizon_and_rates() {
        let cfg = FaultPlanConfig {
            seed: 7,
            horizon_ms: 7 * 86_400_000, // a week, to average out
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg).unwrap();
        assert_eq!(plan.frontend_outages.len(), cfg.n_frontends);
        for w in plan
            .frontend_outages
            .iter()
            .chain(plan.frontend_brownouts.iter())
            .chain([&plan.metadata_outages, &plan.link_blackouts])
        {
            for &(s, e) in w.spans() {
                assert!(s < e && e <= cfg.horizon_ms);
            }
        }
        // ~2/day outages over 7 days: expect a handful per front-end.
        let total: usize = plan.frontend_outages.iter().map(|w| w.spans().len()).sum();
        let per_fe = total as f64 / cfg.n_frontends as f64;
        assert!((4.0..40.0).contains(&per_fe), "outages per fe: {per_fe}");
    }

    #[test]
    fn zero_rates_disable_fault_classes() {
        let cfg = FaultPlanConfig {
            frontend_outages_per_day: 0.0,
            frontend_brownouts_per_day: 0.0,
            metadata_outages_per_day: 0.0,
            link_blackouts_per_day: 0.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg).unwrap();
        assert!(plan.frontend_outages.iter().all(Windows::is_empty));
        assert!(plan.frontend_brownouts.iter().all(Windows::is_empty));
        assert!(plan.metadata_outages.is_empty());
        assert!(plan.link_blackouts.is_empty());
    }

    #[test]
    fn none_plan_never_faults() {
        let plan = FaultPlan::none(4);
        for t in [0u64, 1, 1 << 40, u64::MAX - 1] {
            for fe in 0..4 {
                assert!(!plan.frontend_down(fe, t));
                assert!(!plan.frontend_degraded(fe, t));
            }
            assert!(!plan.metadata_down(t));
        }
        assert!(!plan.chunk_timeout(0, 0));
        // Out-of-range front-ends never fail either.
        assert!(!plan.frontend_down(99, 0));
        // An all-quiet plan must report empty — the storage replay keys
        // its timeline mode off this.
        assert!(plan.is_empty());
        assert!(!FaultPlan::generate(&FaultPlanConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sim_time_helpers_agree_with_ms_predicates() {
        // Windows are authored in ms; the `_at` helpers read them off the
        // µs simulation clock. Probe window edges on both clocks,
        // including the sub-millisecond remainder (t = 5_000_999 µs is
        // still inside a window ending at ms 5_001).
        let mut plan = FaultPlan::none(2);
        plan.frontend_outages[1] = Windows::new(vec![(5_000, 5_001)]);
        plan.frontend_brownouts[0] = Windows::new(vec![(10, 20)]);
        plan.metadata_outages = Windows::new(vec![(0, 1)]);
        for t_us in [
            0u64, 999, 1_000, 9_999, 10_000, 5_000_000, 5_000_999, 5_001_000,
        ] {
            let t_ms = t_us / mcs_sim::MS;
            for fe in 0..3 {
                assert_eq!(
                    plan.frontend_down_at(fe, t_us),
                    plan.frontend_down(fe, t_ms)
                );
                assert_eq!(
                    plan.frontend_degraded_at(fe, t_us),
                    plan.frontend_degraded(fe, t_ms)
                );
            }
            assert_eq!(plan.metadata_down_at(t_us), plan.metadata_down(t_ms));
        }
        assert!(plan.frontend_down_at(1, 5_000_999));
        assert!(!plan.frontend_down_at(1, 5_001_000));
        assert!(plan.frontend_degraded_at(0, 19_999));
        assert!(!plan.frontend_degraded_at(0, 20_000));
        assert!(plan.metadata_down_at(999));
        assert!(!plan.metadata_down_at(1_000));
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut cfg = FaultPlanConfig {
            n_frontends: 0,
            ..FaultPlanConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.n_frontends = 1;
        cfg.horizon_ms = 0;
        assert!(cfg.validate().is_err());
        cfg.horizon_ms = 1000;
        cfg.chunk_timeout_prob = 1.5;
        assert!(cfg.validate().is_err());
        cfg.chunk_timeout_prob = 0.5;
        cfg.frontend_outages_per_day = -1.0;
        assert!(cfg.validate().is_err());
        cfg.frontend_outages_per_day = 1.0;
        cfg.link_blackout_mean_ms = 0.0;
        assert!(cfg.validate().is_err());
        cfg.link_blackout_mean_ms = 10.0;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn unit_coin_is_stateless_and_uniform_ish() {
        assert_eq!(unit_coin(9, 1, 5), unit_coin(9, 1, 5));
        assert_ne!(unit_coin(9, 1, 5), unit_coin(9, 1, 6));
        assert_ne!(unit_coin(9, 1, 5), unit_coin(9, 2, 5));
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|k| unit_coin(3, 7, k)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "coin mean {mean}");
        assert!((0..n).all(|k| (0.0..1.0).contains(&unit_coin(3, 7, k))));
    }

    #[test]
    fn chunk_timeout_frequency_tracks_probability() {
        let plan = FaultPlan {
            chunk_timeout_prob: 0.3,
            ..FaultPlan::none(1)
        };
        let n = 20_000u64;
        let hits = (0..n).filter(|&op| plan.chunk_timeout(op, 0)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "timeout frac {frac}");
    }

    #[test]
    fn chunk_send_timeout_is_stateless_and_tracks_probability() {
        let plan = FaultPlan {
            seed: 77,
            chunk_timeout_prob: 0.3,
            ..FaultPlan::none(1)
        };
        // Pure in the (op, chunk, send) triple, and distinct coordinates
        // draw distinct coins.
        assert_eq!(
            plan.chunk_send_timeout(1, 2, 3),
            plan.chunk_send_timeout(1, 2, 3)
        );
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&chunk| plan.chunk_send_timeout(5, chunk, 1))
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "send-timeout frac {frac}");
        // Disjoint from the whole-file coin stream: the same key must not
        // reproduce `chunk_timeout`'s decisions wholesale.
        let overlap = (0..n)
            .filter(|&op| plan.chunk_timeout(op, 1) == plan.chunk_send_timeout(op, op, 1))
            .count() as f64
            / n as f64;
        assert!(overlap < 0.9, "streams look correlated: {overlap}");
        assert!(!FaultPlan::none(1).chunk_send_timeout(0, 0, 0));
    }

    #[test]
    fn plan_survives_serde_round_trip() {
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: 11,
            ..FaultPlanConfig::default()
        })
        .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
