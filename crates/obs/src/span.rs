//! Logical-time tracing: [`Event`]s, [`Span`]s, and the [`Tracer`] log.
//!
//! All timestamps are *logical* — simulation-clock milliseconds, operation
//! ordinals, record indices — never wall clock, so traces are bit-identical
//! across runs (mcs-lint rule R2 holds with zero suppressions). Code that
//! genuinely needs wall-clock phase timing (benchmarks) goes through the
//! [`Clock`] trait; the only real-time implementation lives in
//! `crates/bench`, the one crate R2 exempts.

use serde::Serialize;

/// A source of timestamps for span timing.
///
/// Library code takes `&mut dyn Clock` (or a generic) and never calls
/// `std::time` directly; [`LogicalClock`] is the deterministic
/// implementation, and `crates/bench` provides the wall-clock one.
pub trait Clock {
    /// The current time, in whatever unit the implementation defines
    /// (logical ticks here, nanoseconds in the bench wall clock).
    fn now(&mut self) -> u64;
}

/// A deterministic [`Clock`]: reports whatever time it was last told.
///
/// Simulated components drive it from their own virtual time
/// (`advance`/`set`), so span durations are reproducible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogicalClock {
    t: u64,
}

impl LogicalClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `dt` ticks (saturating).
    pub fn advance(&mut self, dt: u64) {
        self.t = self.t.saturating_add(dt);
    }

    /// Jumps the clock to an absolute time.
    pub fn set(&mut self, t: u64) {
        self.t = t;
    }
}

impl Clock for LogicalClock {
    fn now(&mut self) -> u64 {
        self.t
    }
}

/// A point measurement: at logical time `t`, `name` observed `value`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Event {
    /// Logical timestamp.
    pub t: u64,
    /// What was observed.
    pub name: String,
    /// The observed value.
    pub value: u64,
}

/// An interval measurement: `name` ran over logical `[start, end]` and
/// produced `value` (e.g. records processed by a shard).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Span {
    /// What ran.
    pub name: String,
    /// Logical start time.
    pub start: u64,
    /// Logical end time.
    pub end: u64,
    /// Work attributed to the interval.
    pub value: u64,
}

/// Append-only log of [`Event`]s and [`Span`]s.
///
/// Merging concatenates logs; merge per-shard tracers in ascending shard
/// order and the combined log equals the canonical shard-major order.
/// Trace contents are deterministic for a fixed thread count but — unlike
/// [`Registry`](crate::Registry) metrics — describe the *execution*
/// (records per shard, merge fan-in), so they legitimately differ across
/// thread counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tracer {
    events: Vec<Event>,
    spans: Vec<Span>,
}

impl Tracer {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a point measurement.
    pub fn event(&mut self, t: u64, name: &str, value: u64) {
        self.events.push(Event {
            t,
            name: name.to_owned(),
            value,
        });
    }

    /// Records an interval measurement.
    pub fn span(&mut self, name: &str, start: u64, end: u64, value: u64) {
        self.spans.push(Span {
            name: name.to_owned(),
            start,
            end,
            value,
        });
    }

    /// Runs `f`, recording a span from the clock's time before to after;
    /// the span's value is whatever `f` reports as its work done.
    pub fn scoped<C: Clock, F: FnOnce(&mut Self) -> u64>(
        &mut self,
        clock: &mut C,
        name: &str,
        f: F,
    ) -> u64 {
        let start = clock.now();
        let value = f(self);
        let end = clock.now();
        self.span(name, start, end, value);
        value
    }

    /// Recorded point measurements, in insertion order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Recorded interval measurements, in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Appends another log after this one. Merge in ascending shard order
    /// for a canonical shard-major log.
    pub fn merge(&mut self, other: &Tracer) {
        self.events.extend(other.events.iter().cloned());
        self.spans.extend(other.spans.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_law_tracer_concatenates_in_shard_order() {
        let mut whole = Tracer::new();
        whole.event(0, "gen.shard.records", 10);
        whole.event(1, "gen.shard.records", 12);
        whole.span("gen.shard", 0, 5, 10);
        whole.span("gen.shard", 5, 9, 12);

        let mut s0 = Tracer::new();
        s0.event(0, "gen.shard.records", 10);
        s0.span("gen.shard", 0, 5, 10);
        let mut s1 = Tracer::new();
        s1.event(1, "gen.shard.records", 12);
        s1.span("gen.shard", 5, 9, 12);

        let mut merged = Tracer::new();
        merged.merge(&s0);
        merged.merge(&s1);
        assert_eq!(merged, whole);
    }

    #[test]
    fn scoped_span_uses_logical_clock() {
        let mut clock = LogicalClock::new();
        clock.set(100);
        let mut tr = Tracer::new();
        let v = tr.scoped(&mut clock, "phase", |tr| {
            tr.event(100, "inner", 1);
            42
        });
        assert_eq!(v, 42);
        // The clock did not move during f, so the span is instantaneous at
        // logical time 100 — deterministic, unlike wall clock.
        assert_eq!(
            tr.spans(),
            &[Span {
                name: "phase".into(),
                start: 100,
                end: 100,
                value: 42
            }]
        );
        assert_eq!(tr.events().len(), 1);
    }

    #[test]
    fn logical_clock_advances_and_saturates() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        c.advance(7);
        assert_eq!(c.now(), 7);
        c.set(u64::MAX);
        c.advance(10);
        assert_eq!(c.now(), u64::MAX);
    }
}
