//! The three metric monoids: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! Every type here obeys the shard-reduce merge law (DESIGN.md §6): for a
//! workload split into contiguous shards, pushing each shard into its own
//! instance and merging the instances in ascending shard order is
//! bit-identical to pushing the whole workload into one instance. Counters
//! and histograms are commutative monoids (any merge order works); the
//! gauge is last-write-wins, so only ascending shard order reproduces the
//! sequential value — the same rule the analysis collectors follow.

use serde::Serialize;

/// Monotone event counter. Merge law: addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter (the monoid identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Absorbs another counter (commutative, associative).
    pub fn merge(&mut self, other: &Counter) {
        self.value += other.value;
    }
}

/// Last-written value. Merge law: a set gauge overwrites, an unset gauge
/// is the identity — so merging per-shard gauges in ascending shard order
/// reproduces the sequential last write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Gauge {
    value: i64,
    set: bool,
}

impl Gauge {
    /// An unset gauge (the monoid identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a value.
    pub fn set(&mut self, v: i64) {
        self.value = v;
        self.set = true;
    }

    /// The last value recorded, if any.
    pub fn get(&self) -> Option<i64> {
        self.set.then_some(self.value)
    }

    /// Absorbs a later shard's gauge: its write (if any) wins.
    pub fn merge(&mut self, other: &Gauge) {
        if other.set {
            *self = *other;
        }
    }
}

/// Number of power-of-two buckets: bucket `i` counts values whose bit
/// length is `i`, i.e. bucket 0 holds `0`, bucket `i` holds
/// `[2^(i-1), 2^i)`. 64-bit values need 65 buckets.
pub const N_BUCKETS: usize = 65;

/// Mergeable log2-bucketed histogram over `u64` observations.
///
/// Bucket layout is static, so any two histograms merge exactly
/// (bucket-wise addition); count/sum/min/max merge alongside. The merge is
/// commutative and associative — a true monoid, stronger than the gauge's
/// ordered law.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; N_BUCKETS],
        }
    }
}

/// Exported view of a [`Histogram`]: only the non-empty buckets, as
/// `(bucket index, count)` pairs in ascending index order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Smallest observation (`0` when empty).
    pub min: u64,
    /// Largest observation (`0` when empty).
    pub max: u64,
    /// `(log2 bucket index, count)` for every non-empty bucket.
    pub buckets: Vec<(u32, u64)>,
}

impl Histogram {
    /// An empty histogram (the monoid identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of a value: its bit length.
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts (length [`N_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Absorbs another histogram (commutative, associative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Exported view with only the non-empty buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count > 0 { self.min } else { 0 },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_law_counter() {
        // Split-push-merge equals whole-push, for every split point.
        let values = [3u64, 0, 7, 1, 1, 40];
        let mut whole = Counter::new();
        for &v in &values {
            whole.add(v);
        }
        for split in 0..=values.len() {
            let mut left = Counter::new();
            let mut right = Counter::new();
            for &v in &values[..split] {
                left.add(v);
            }
            for &v in &values[split..] {
                right.add(v);
            }
            left.merge(&right);
            assert_eq!(left, whole, "split {split}");
        }
        assert_eq!(whole.get(), 52);
    }

    #[test]
    fn merge_law_gauge_last_write_wins_in_shard_order() {
        let writes = [5i64, -3, 9];
        let mut whole = Gauge::new();
        for &v in &writes {
            whole.set(v);
        }
        for split in 0..=writes.len() {
            let mut left = Gauge::new();
            let mut right = Gauge::new();
            for &v in &writes[..split] {
                left.set(v);
            }
            for &v in &writes[split..] {
                right.set(v);
            }
            left.merge(&right);
            assert_eq!(left, whole, "split {split}");
        }
        assert_eq!(whole.get(), Some(9));
        // The identity merges as a no-op from either side.
        let mut id = Gauge::new();
        id.merge(&whole);
        assert_eq!(id, whole);
        let mut w2 = whole;
        w2.merge(&Gauge::new());
        assert_eq!(w2, whole);
    }

    #[test]
    fn merge_law_histogram() {
        let values = [0u64, 1, 2, 3, 512 * 1024, u64::MAX, 1_500_000];
        let mut whole = Histogram::new();
        for &v in &values {
            whole.observe(v);
        }
        for split in 0..=values.len() {
            let mut left = Histogram::new();
            let mut right = Histogram::new();
            for &v in &values[..split] {
                left.observe(v);
            }
            for &v in &values[split..] {
                right.observe(v);
            }
            left.merge(&right);
            assert_eq!(left, whole, "split {split}");
        }
        assert_eq!(whole.count(), 7);
        assert_eq!(whole.min(), Some(0));
        assert_eq!(whole.max(), Some(u64::MAX));
    }

    #[test]
    fn histogram_buckets_are_bit_length() {
        let mut h = Histogram::new();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(2); // bucket 2: [2, 4)
        h.observe(3); // bucket 2
        h.observe(4); // bucket 3: [4, 8)
        h.observe(u64::MAX); // bucket 64
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (64, 1)]);
        // The sum saturates at u64::MAX, so the mean reflects that cap.
        assert_eq!(h.mean().unwrap(), u64::MAX as f64 / 6.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_clean() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(Histogram::new().min(), None);
        assert_eq!(Histogram::new().mean(), None);
    }

    proptest! {
        /// Shard invariance: any 3-way split of any observation sequence
        /// merges (in shard order) to the sequential histogram and counter.
        #[test]
        fn prop_shard_invariance_histogram_counter(
            values in proptest::collection::vec(any::<u64>(), 0..64),
            a in 0usize..64,
            b in 0usize..64,
        ) {
            let (a, b) = (a.min(values.len()), b.min(values.len()));
            let (lo, hi) = (a.min(b), a.max(b));
            let mut whole_h = Histogram::new();
            let mut whole_c = Counter::new();
            for &v in &values {
                whole_h.observe(v);
                whole_c.inc();
            }
            let mut h = Histogram::new();
            let mut c = Counter::new();
            for shard in [&values[..lo], &values[lo..hi], &values[hi..]] {
                let mut sh = Histogram::new();
                let mut sc = Counter::new();
                for &v in shard {
                    sh.observe(v);
                    sc.inc();
                }
                h.merge(&sh);
                c.merge(&sc);
            }
            prop_assert_eq!(h, whole_h);
            prop_assert_eq!(c, whole_c);
        }
    }
}
