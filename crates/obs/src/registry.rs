//! Named metric registry with handle-based hot-path access and
//! merge-by-name.
//!
//! Registration returns a typed handle ([`CounterId`], [`GaugeId`],
//! [`HistId`]) that indexes a dense `Vec`, so instrumented inner loops pay
//! one bounds-checked array access per increment — no string hashing.
//! Merging walks the *other* registry's name table (a `BTreeMap`, so
//! ascending name order) and folds each metric into the local metric of
//! the same name, registering it first if absent. Two shards that
//! registered the same names in different orders therefore still merge
//! bit-identically.

use std::collections::BTreeMap;

use crate::export::Snapshot;
use crate::metrics::{Counter, Gauge, Histogram};

/// Handle to a registered [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered [`Gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A named set of metric monoids that merges by name.
///
/// Equality compares the *logical* contents (name → metric), not handle
/// assignment order, so two registries built by different shard schedules
/// compare equal iff their merged measurements are identical.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counter_names: BTreeMap<String, usize>,
    counters: Vec<Counter>,
    gauge_names: BTreeMap<String, usize>,
    gauges: Vec<Gauge>,
    hist_names: BTreeMap<String, usize>,
    hists: Vec<Histogram>,
}

impl PartialEq for Registry {
    fn eq(&self, other: &Self) -> bool {
        self.snapshot() == other.snapshot()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a counter named `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_names.get(name) {
            return CounterId(i);
        }
        let i = self.counters.len();
        self.counters.push(Counter::new());
        self.counter_names.insert(name.to_owned(), i);
        CounterId(i)
    }

    /// Registers (or looks up) a gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&i) = self.gauge_names.get(name) {
            return GaugeId(i);
        }
        let i = self.gauges.len();
        self.gauges.push(Gauge::new());
        self.gauge_names.insert(name.to_owned(), i);
        GaugeId(i)
    }

    /// Registers (or looks up) a histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(&i) = self.hist_names.get(name) {
            return HistId(i);
        }
        let i = self.hists.len();
        self.hists.push(Histogram::new());
        self.hist_names.insert(name.to_owned(), i);
        HistId(i)
    }

    /// Adds one to a counter.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].inc();
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].add(n);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].get()
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, v: i64) {
        self.gauges[id.0].set(v);
    }

    /// Last value set on a gauge, if any.
    pub fn gauge_value(&self, id: GaugeId) -> Option<i64> {
        self.gauges[id.0].get()
    }

    /// Records an observation into a histogram.
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].observe(v);
    }

    /// Read access to a histogram.
    pub fn histogram_ref(&self, id: HistId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Value of the counter named `name`, if registered.
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counter_names
            .get(name)
            .map(|&i| self.counters[i].get())
    }

    /// Absorbs another registry, matching metrics *by name* and
    /// registering any the local registry lacks. Merge shards in ascending
    /// shard order to reproduce the sequential gauge values; counters and
    /// histograms commute.
    pub fn merge(&mut self, other: &Registry) {
        for (name, &oi) in &other.counter_names {
            let id = self.counter(name);
            self.counters[id.0].merge(&other.counters[oi]);
        }
        for (name, &oi) in &other.gauge_names {
            let id = self.gauge(name);
            self.gauges[id.0].merge(&other.gauges[oi]);
        }
        for (name, &oi) in &other.hist_names {
            let id = self.histogram(name);
            self.hists[id.0].merge(&other.hists[oi]);
        }
    }

    /// Stable-ordered export of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counter_names
                .iter()
                .map(|(n, &i)| (n.clone(), self.counters[i].get()))
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .filter_map(|(n, &i)| self.gauges[i].get().map(|v| (n.clone(), v)))
                .collect(),
            histograms: self
                .hist_names
                .iter()
                .map(|(n, &i)| (n.clone(), self.hists[i].snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_registry_matches_by_name_across_registration_orders() {
        // Shard A registers (x, y); shard B registers (y, x): handles
        // differ, but the merge keys on names.
        let mut a = Registry::new();
        let ax = a.counter("x");
        let ay = a.counter("y");
        a.add(ax, 1);
        a.add(ay, 10);

        let mut b = Registry::new();
        let by = b.counter("y");
        let bx = b.counter("x");
        b.add(by, 20);
        b.add(bx, 2);

        a.merge(&b);
        assert_eq!(a.counter_by_name("x"), Some(3));
        assert_eq!(a.counter_by_name("y"), Some(30));
    }

    #[test]
    fn merge_registry_shard_order_equals_sequential() {
        // Full sequential run...
        let mut whole = Registry::new();
        let c = whole.counter("ops");
        let g = whole.gauge("last");
        let h = whole.histogram("bytes");
        for i in 0..10u64 {
            whole.add(c, i);
            whole.set(g, i as i64);
            whole.observe(h, i * 100);
        }

        // ...equals two half-shards merged in ascending shard order.
        let mut shards = Vec::new();
        for range in [0..5u64, 5..10] {
            let mut r = Registry::new();
            let c = r.counter("ops");
            let g = r.gauge("last");
            let h = r.histogram("bytes");
            for i in range {
                r.add(c, i);
                r.set(g, i as i64);
                r.observe(h, i * 100);
            }
            shards.push(r);
        }
        let mut merged = Registry::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.snapshot(), whole.snapshot());
    }

    #[test]
    fn merge_registry_with_empty_is_identity() {
        let mut r = Registry::new();
        let c = r.counter("n");
        r.add(c, 7);
        let before = r.snapshot();
        r.merge(&Registry::new());
        assert_eq!(r.snapshot(), before);

        let mut id = Registry::new();
        id.merge(&r);
        assert_eq!(id.snapshot(), before);
    }

    #[test]
    fn unset_gauges_are_omitted_from_snapshots() {
        let mut r = Registry::new();
        let _ = r.gauge("never_set");
        let g = r.gauge("set");
        r.set(g, -4);
        let s = r.snapshot();
        assert!(!s.gauges.contains_key("never_set"));
        assert_eq!(s.gauges["set"], -4);
    }
}
