//! Stable-ordered exporters: [`Snapshot`] plus JSON / plain-text
//! rendering.
//!
//! Snapshots are `BTreeMap`-backed, so iteration — and therefore every
//! rendered byte — is ordered by metric name. Two registries that compare
//! equal render byte-identical JSON and tables, which is what lets the
//! chaos tests assert snapshot equality across runs and thread counts by
//! string comparison. The JSON writer is hand-rolled and infallible (no
//! `Result`, no panics), keeping the export path clean under the
//! workspace `unwrap_used` lint.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::HistogramSnapshot;

/// Point-in-time export of a [`Registry`](crate::Registry).
///
/// Unset gauges are omitted; histograms carry only their non-empty
/// buckets. All maps are `BTreeMap`s, so field order is stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (set gauges only).
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Escapes a metric name for a JSON string literal. Names are plain
/// dotted identifiers in practice, but the escape keeps the writer total.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_map<V, F: Fn(&mut String, &V)>(out: &mut String, map: &BTreeMap<String, V>, render: F) {
    out.push('{');
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, name);
        out.push(':');
        render(out, v);
    }
    out.push('}');
}

impl Snapshot {
    /// Renders the snapshot as a single-line JSON object with keys in
    /// metric-name order. Infallible; equal snapshots render identical
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":");
        push_map(&mut out, &self.counters, |o, v| {
            let _ = write!(o, "{v}");
        });
        out.push_str(",\"gauges\":");
        push_map(&mut out, &self.gauges, |o, v| {
            let _ = write!(o, "{v}");
        });
        out.push_str(",\"histograms\":");
        push_map(&mut out, &self.histograms, |o, h| {
            let _ = write!(
                o,
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            );
            for (i, (b, c)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                let _ = write!(o, "[{b},{c}]");
            }
            o.push_str("]}");
        });
        out.push('}');
        out
    }

    /// Renders the snapshot as an aligned plain-text table, one metric
    /// per row in name order.
    pub fn to_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max("metric".len());
        let mut out = String::new();
        let _ = writeln!(out, "{:<width$}  value", "metric");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<width$}  {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<width$}  {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<width$}  count={} sum={} min={} max={}",
                h.count, h.sum, h.min, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let mut r = Registry::new();
        let c = r.counter("replay.retries");
        r.add(c, 3);
        let c = r.counter("gen.records");
        r.add(c, 1000);
        let g = r.gauge("pipeline.tau_ms");
        r.set(g, -1);
        let h = r.histogram("replay.store_bytes");
        r.observe(h, 0);
        r.observe(h, 700);
        r.snapshot()
    }

    #[test]
    fn json_is_stable_ordered_and_pinned() {
        let s = sample();
        let json = s.to_json();
        // Byte-stable across calls, and every byte is pinned: names in
        // lexicographic order, no whitespace, one line.
        assert_eq!(json, sample().to_json());
        assert_eq!(
            json,
            concat!(
                "{\"counters\":{\"gen.records\":1000,\"replay.retries\":3},",
                "\"gauges\":{\"pipeline.tau_ms\":-1},",
                "\"histograms\":{\"replay.store_bytes\":",
                "{\"count\":2,\"sum\":700,\"min\":0,\"max\":700,",
                "\"buckets\":[[0,1],[10,1]]}}}"
            )
        );
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut r = Registry::new();
        let c = r.counter("weird\"name\\with\ncontrol\u{1}");
        r.inc(c);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"weird\\\"name\\\\with\\ncontrol\\u0001\":1"));
    }

    #[test]
    fn table_lists_every_metric_once() {
        let table = sample().to_table();
        for name in [
            "replay.retries",
            "gen.records",
            "pipeline.tau_ms",
            "replay.store_bytes",
        ] {
            assert_eq!(table.matches(name).count(), 1, "{name}");
        }
        assert!(table.contains("count=2 sum=700 min=0 max=700"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = Snapshot::default();
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert!(s.to_table().starts_with("metric"));
    }
}
