//! `mcs-obs` — deterministic observability for the reproduction stack.
//!
//! The paper's core deliverable is *measurement*: session statistics,
//! per-chunk transfer diagnosis, degraded-mode accounting. This crate is
//! how the stack measures *itself* without breaking the determinism
//! contract every other crate is held to (DESIGN.md §7):
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) are monoids with a
//!   `merge()` law: pushing a workload into per-shard metric sets and
//!   merging them in ascending shard order is bit-identical to pushing the
//!   whole workload into one set — the same contract as the analysis
//!   collectors, so instrumented parallel code stays reproducible at any
//!   thread count.
//! * **[`Registry`]** names metrics and merges whole per-shard sets *by
//!   name*, so shards that registered in different orders still combine
//!   deterministically.
//! * **Tracing** ([`Tracer`]) records spans and events stamped with
//!   *logical* time — simulation clocks, operation ordinals, record
//!   indices — never wall clock. Wall-clock phase timing lives behind the
//!   [`Clock`] trait, whose only real-time implementation is confined to
//!   `crates/bench` (mcs-lint rule R2).
//! * **Exporters** ([`Snapshot::to_json`], [`Snapshot::to_table`]) are
//!   stable-ordered (BTreeMap-backed), so two bit-identical registries
//!   render byte-identical output.
//!
//! ```
//! use mcs_obs::Registry;
//!
//! let mut a = Registry::new();
//! let c = a.counter("replay.retries");
//! a.add(c, 3);
//!
//! // A second shard, registered independently, merges by name.
//! let mut b = Registry::new();
//! let c2 = b.counter("replay.retries");
//! b.add(c2, 4);
//!
//! a.merge(&b);
//! assert_eq!(a.snapshot().counters["replay.retries"], 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod export;
pub mod metrics;
pub mod registry;
pub mod span;

pub use export::Snapshot;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{CounterId, GaugeId, HistId, Registry};
pub use span::{Clock, Event, LogicalClock, Span, Tracer};

/// Metrics registry plus logical-time trace log, bundled for instrumented
/// entry points (`par_analyze_observed`, `replay_trace_faulted_observed`,
/// …).
///
/// The split matters for the determinism contract: everything in
/// `metrics` is **thread-count invariant** (derived from the workload, so
/// any sharding merges to the same totals), while `trace` records
/// *execution* diagnostics (shard fan-in, per-shard record counts, phase
/// spans) that are deterministic for a fixed thread count but legitimately
/// differ across thread counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Obs {
    /// Thread-count-invariant workload metrics.
    pub metrics: Registry,
    /// Execution diagnostics on logical time.
    pub trace: Tracer,
}

impl Obs {
    /// An empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs another bundle: metrics merge by name, trace logs
    /// concatenate. Merge in ascending shard order for sequential
    /// equivalence.
    pub fn merge(&mut self, other: &Obs) {
        self.metrics.merge(&other.metrics);
        self.trace.merge(&other.trace);
    }

    /// Stable-ordered snapshot of the metric set.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_law_obs_bundle() {
        // Obs merge = Registry merge by name + Tracer concatenation.
        let mut whole = Obs::new();
        let c = whole.metrics.counter("x");
        whole.metrics.add(c, 5);
        whole.trace.event(0, "a", 1);
        whole.trace.event(1, "b", 2);

        let mut left = Obs::new();
        let c = left.metrics.counter("x");
        left.metrics.add(c, 2);
        left.trace.event(0, "a", 1);
        let mut right = Obs::new();
        let c = right.metrics.counter("x");
        right.metrics.add(c, 3);
        right.trace.event(1, "b", 2);

        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(left.snapshot(), whole.snapshot());
    }
}
