//! The clustered service façade: metadata server + front-end fleet,
//! exposing the mobile app's operations (store a batch, retrieve by path or
//! URL) end-to-end.

use crate::content::{Content, FileManifest};
use crate::frontend::FrontEnd;
use crate::metadata::{MetadataServer, ShareUrl, StoreDecision, UserId};

/// Outcome of one file store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOutcome {
    /// Whether deduplication skipped the upload.
    pub deduplicated: bool,
    /// Bytes actually uploaded (0 when deduplicated).
    pub bytes_uploaded: u64,
    /// Front-end that handled the upload (None when deduplicated).
    pub frontend: Option<usize>,
}

/// Outcome of one file retrieve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrieveOutcome {
    /// Bytes downloaded.
    pub bytes_downloaded: u64,
    /// Front-end that served it.
    pub frontend: usize,
}

/// The whole service.
///
/// ```
/// use mcs_storage::{Content, StorageService};
///
/// let mut svc = StorageService::new(4, 24);
/// let photo = Content::Synthetic { seed: 1, size: 1_500_000 };
/// let first = svc.store(1, "a.jpg", &photo, 0);
/// assert!(!first.deduplicated);
/// // Another user uploads the same bytes: the metadata server dedups.
/// let second = svc.store(2, "b.jpg", &photo, 10);
/// assert!(second.deduplicated);
/// assert_eq!(svc.retrieve(2, "b.jpg", 20).unwrap().bytes_downloaded, 1_500_000);
/// ```
#[derive(Debug)]
pub struct StorageService {
    metadata: MetadataServer,
    frontends: Vec<FrontEnd>,
}

impl StorageService {
    /// Builds a cluster of `n_frontends`, accounting load over
    /// `horizon_hours`.
    pub fn new(n_frontends: usize, horizon_hours: usize) -> Self {
        assert!(n_frontends > 0, "need at least one front-end");
        Self {
            metadata: MetadataServer::new(n_frontends),
            frontends: (0..n_frontends)
                .map(|id| FrontEnd::new(id, horizon_hours))
                .collect(),
        }
    }

    /// Stores one file: metadata round trip, dedup check, chunk uploads.
    pub fn store(
        &mut self,
        user: UserId,
        name: &str,
        content: &Content,
        now_ms: u64,
    ) -> StoreOutcome {
        let manifest = FileManifest::build(name, content);
        match self.metadata.begin_store(user, manifest.clone(), now_ms) {
            StoreDecision::Deduplicated => StoreOutcome {
                deduplicated: true,
                bytes_uploaded: 0,
                frontend: None,
            },
            StoreDecision::Upload { frontend } => {
                self.frontends[frontend].put_file(&manifest, now_ms);
                let bytes = manifest.size;
                self.metadata.complete_upload(manifest, frontend);
                StoreOutcome {
                    deduplicated: false,
                    bytes_uploaded: bytes,
                    frontend: Some(frontend),
                }
            }
        }
    }

    /// Stores a batch of files (the app's multi-select backup).
    pub fn store_batch(
        &mut self,
        user: UserId,
        files: &[(String, Content)],
        now_ms: u64,
    ) -> Vec<StoreOutcome> {
        files
            .iter()
            .map(|(name, content)| self.store(user, name, content, now_ms))
            .collect()
    }

    /// Retrieves a file from the user's own namespace.
    pub fn retrieve(&mut self, user: UserId, path: &str, now_ms: u64) -> Option<RetrieveOutcome> {
        let (manifest, fe) = self.metadata.begin_retrieve(user, path)?;
        let bytes = self.frontends[fe].get_file(&manifest, now_ms);
        Some(RetrieveOutcome {
            bytes_downloaded: bytes,
            frontend: fe,
        })
    }

    /// Publishes a share URL.
    pub fn publish_url(&mut self, user: UserId, path: &str) -> Option<ShareUrl> {
        self.metadata.publish_url(user, path)
    }

    /// Retrieves shared content by URL (possibly by a different user).
    pub fn retrieve_url(
        &mut self,
        requester: UserId,
        url: &ShareUrl,
        now_ms: u64,
    ) -> Option<RetrieveOutcome> {
        let (manifest, fe) = self.metadata.begin_retrieve_url(requester, url)?;
        let bytes = self.frontends[fe].get_file(&manifest, now_ms);
        Some(RetrieveOutcome {
            bytes_downloaded: bytes,
            frontend: fe,
        })
    }

    /// Deletes a file from a user's namespace (§2.1: deletes go through
    /// the metadata servers only and never hit the front-end data path —
    /// reclamation happens later via [`Self::collect_garbage`]).
    pub fn delete(&mut self, user: UserId, path: &str) -> bool {
        self.metadata.delete(user, path).is_some()
    }

    /// Garbage-collects contents no namespace links anymore; returns bytes
    /// reclaimed across the fleet.
    pub fn collect_garbage(&mut self) -> u64 {
        let orphans = self.metadata.orphans();
        let mut freed = 0;
        for (digest, fe) in orphans {
            // Fetch the manifest before forgetting it.
            let manifest = {
                let (m, _) = self
                    .metadata
                    .manifest_of(&digest)
                    // mcs-lint: allow(panic, orphans() only lists digests present in `known`)
                    .expect("orphan listed by metadata");
                m
            };
            freed += self.frontends[fe].reclaim_file(&manifest);
            self.metadata.forget(&digest);
        }
        freed
    }

    /// Metadata server view.
    pub fn metadata(&self) -> &MetadataServer {
        &self.metadata
    }

    /// Front-end fleet view.
    pub fn frontends(&self) -> &[FrontEnd] {
        &self.frontends
    }

    /// Total unique bytes resident across the fleet.
    pub fn stored_bytes(&self) -> u64 {
        self.frontends.iter().map(|f| f.stored_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photo(seed: u64) -> Content {
        Content::Synthetic {
            seed,
            size: 1_500_000,
        }
    }

    #[test]
    fn end_to_end_store_and_retrieve() {
        let mut svc = StorageService::new(4, 24);
        let out = svc.store(1, "p/1.jpg", &photo(1), 0);
        assert!(!out.deduplicated);
        assert_eq!(out.bytes_uploaded, 1_500_000);
        let got = svc.retrieve(1, "p/1.jpg", 1000).expect("retrieved");
        assert_eq!(got.bytes_downloaded, 1_500_000);
    }

    #[test]
    fn cross_user_dedup_saves_upload() {
        let mut svc = StorageService::new(4, 24);
        let a = svc.store(1, "x.jpg", &photo(7), 0);
        let b = svc.store(2, "y.jpg", &photo(7), 10);
        assert!(!a.deduplicated);
        assert!(b.deduplicated);
        assert_eq!(b.bytes_uploaded, 0);
        assert_eq!(svc.stored_bytes(), 1_500_000, "stored once");
        // Both users can retrieve.
        assert!(svc.retrieve(1, "x.jpg", 20).is_some());
        assert!(svc.retrieve(2, "y.jpg", 20).is_some());
    }

    #[test]
    fn batch_store() {
        let mut svc = StorageService::new(2, 24);
        let files: Vec<(String, Content)> = (0..5)
            .map(|i| (format!("p/{i}.jpg"), photo(100 + i)))
            .collect();
        let outs = svc.store_batch(3, &files, 0);
        assert_eq!(outs.len(), 5);
        assert!(outs.iter().all(|o| !o.deduplicated));
        assert_eq!(svc.metadata().distinct_contents(), 5);
    }

    #[test]
    fn share_url_content_distribution() {
        let mut svc = StorageService::new(4, 24);
        let video = Content::Synthetic {
            seed: 50,
            size: 150_000_000,
        };
        svc.store(1, "clip.mp4", &video, 0);
        let url = svc.publish_url(1, "clip.mp4").expect("url");
        // Many downloaders (the §3.2.1 download-only pattern).
        for user in 100..110 {
            let got = svc.retrieve_url(user, &url, 1000).expect("served");
            assert_eq!(got.bytes_downloaded, 150_000_000);
        }
    }

    #[test]
    fn delete_and_garbage_collection() {
        let mut svc = StorageService::new(3, 24);
        svc.store(1, "a.jpg", &photo(1), 0);
        svc.store(2, "b.jpg", &photo(1), 1); // dedup link to same content
        assert_eq!(svc.stored_bytes(), 1_500_000);

        // Deleting one link leaves the content alive (user 2 still links).
        assert!(svc.delete(1, "a.jpg"));
        assert_eq!(svc.collect_garbage(), 0);
        assert!(svc.retrieve(2, "b.jpg", 5).is_some());

        // Deleting the last link orphans the content; GC reclaims it.
        assert!(svc.delete(2, "b.jpg"));
        let freed = svc.collect_garbage();
        assert_eq!(freed, 1_500_000);
        assert_eq!(svc.stored_bytes(), 0);
        assert_eq!(svc.metadata().distinct_contents(), 0);
        // Idempotent.
        assert_eq!(svc.collect_garbage(), 0);
        // The deleted path is gone.
        assert!(svc.retrieve(2, "b.jpg", 9).is_none());
        assert!(!svc.delete(2, "b.jpg"));
    }

    #[test]
    fn gc_only_touches_orphans() {
        let mut svc = StorageService::new(2, 24);
        svc.store(1, "keep.jpg", &photo(5), 0);
        svc.store(1, "drop.jpg", &photo(6), 1);
        svc.delete(1, "drop.jpg");
        let freed = svc.collect_garbage();
        assert_eq!(freed, 1_500_000);
        // The kept file still fully retrievable.
        assert_eq!(
            svc.retrieve(1, "keep.jpg", 5).unwrap().bytes_downloaded,
            1_500_000
        );
    }

    #[test]
    fn retrieval_of_missing_path_is_none() {
        let mut svc = StorageService::new(1, 24);
        assert!(svc.retrieve(1, "ghost", 0).is_none());
    }

    #[test]
    fn dedup_retrieve_works_without_reupload() {
        // The §2.1 promise: a deduplicated store is still fully retrievable.
        let mut svc = StorageService::new(3, 24);
        svc.store(1, "a", &photo(9), 0);
        let o = svc.store(2, "b", &photo(9), 1);
        assert!(o.deduplicated);
        // The content lives on user 1's front-end; the metadata server
        // routes user 2's retrieval there, so the full bytes come back and
        // no front-end reports a missing chunk.
        let got = svc.retrieve(2, "b", 2).expect("routed");
        assert_eq!(got.bytes_downloaded, 1_500_000);
        assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Store {
            user: u64,
            name: u8,
            content_seed: u64,
            size: u32,
        },
        Retrieve {
            user: u64,
            name: u8,
        },
        Delete {
            user: u64,
            name: u8,
        },
        Gc,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..4, any::<u8>(), 0u64..6, 1u32..2_000_000).prop_map(
                |(user, name, content_seed, size)| Op::Store {
                    user,
                    name: name % 8,
                    content_seed,
                    size,
                }
            ),
            (0u64..4, any::<u8>()).prop_map(|(user, name)| Op::Retrieve {
                user,
                name: name % 8
            }),
            (0u64..4, any::<u8>()).prop_map(|(user, name)| Op::Delete {
                user,
                name: name % 8
            }),
            Just(Op::Gc),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Any operation sequence keeps the service consistent: a stored,
        /// undeleted path always resolves with full bytes; no front-end
        /// ever reports a missing chunk; GC never breaks a live link.
        #[test]
        fn prop_random_op_sequences_stay_consistent(ops in proptest::collection::vec(arb_op(), 1..60)) {
            let mut svc = StorageService::new(4, 24);
            // Ground truth: (user, name) -> expected size if live.
            let mut live: std::collections::HashMap<(u64, String), u64> =
                std::collections::HashMap::new();
            for (t, op) in ops.into_iter().enumerate() {
                let now = t as u64 * 1000;
                match op {
                    Op::Store { user, name, content_seed, size } => {
                        let name = format!("f{name}");
                        let content = Content::Synthetic { seed: content_seed, size: size as u64 };
                        svc.store(user, &name, &content, now);
                        live.insert((user, name), size as u64);
                    }
                    Op::Retrieve { user, name } => {
                        let name = format!("f{name}");
                        let got = svc.retrieve(user, &name, now);
                        match live.get(&(user, name)) {
                            Some(&size) => {
                                let got = got.expect("live path must resolve");
                                prop_assert_eq!(got.bytes_downloaded, size);
                            }
                            None => prop_assert!(got.is_none()),
                        }
                    }
                    Op::Delete { user, name } => {
                        let name = format!("f{name}");
                        let existed = svc.delete(user, &name);
                        prop_assert_eq!(existed, live.remove(&(user, name)).is_some());
                    }
                    Op::Gc => {
                        let _ = svc.collect_garbage();
                    }
                }
            }
            // Final sweep: every live path still fully retrievable.
            svc.collect_garbage();
            for ((user, name), size) in &live {
                let got = svc.retrieve(*user, name, 1_000_000).expect("live after GC");
                prop_assert_eq!(got.bytes_downloaded, *size);
            }
            prop_assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
        }
    }
}
