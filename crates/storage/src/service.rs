//! The clustered service façade: metadata server + front-end fleet,
//! exposing the mobile app's operations (store a batch, retrieve by path or
//! URL) end-to-end.
//!
//! Two parallel operation surfaces exist. The infallible `store`/`retrieve`
//! pair is the fair-weather path every workload-level experiment uses. The
//! `try_store`/`try_retrieve` pair consults an injected
//! [`mcs_faults::FaultPlan`]: operations observe component outages on the
//! caller's virtual clock, back off and retry under a [`RetryPolicy`], fail
//! over between front-ends where the architecture permits it (uploads pick
//! any live front-end; retrievals cannot — content has one home), and
//! return a [`ServiceError`] when the budget runs out. Without a plan
//! installed, `try_*` degrade to the infallible paths.
//!
//! The third surface is the resumable pair,
//! [`StorageService::try_store_resumable`] /
//! [`StorageService::try_retrieve_resumable`]: files move chunk-by-chunk
//! through the [`crate::transfer`] protocol on an `mcs-sim` timeline, so
//! a mid-transfer outage keeps the verified chunks — uploads persist them
//! in the metadata chunk index (and dedup against it), downloads keep a
//! client-side partial manifest — and a later attempt re-sends only what
//! is missing instead of restarting from byte zero.

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;

use mcs_faults::{unit_coin, ConfigError, FaultPlan, RetryPolicy};
use mcs_obs::{CounterId, HistId, Registry};
use mcs_stats::rng::split_seed;

use crate::content::{Content, FileManifest};
use crate::error::ServiceError;
use crate::frontend::FrontEnd;
use crate::md5::Digest;
use crate::metadata::{MetadataServer, ShareUrl, StoreDecision, UserId};
use crate::transfer::{
    run_transfer_attempt, Channel, ChunkFate, Stall, TransferConfig, TransferSession, TransferStats,
};

/// Coin stream for retry-backoff jitter (disjoint from the fault plan's
/// own streams; see `mcs_faults::plan::streams`).
const STREAM_BACKOFF: u64 = 0xFB01;

/// Coin stream for per-chunk timeout-detection pacing in the resumable
/// paths (again disjoint from every plan stream).
const STREAM_CHUNK_PACE: u64 = 0xFB04;

/// Arrival-window size the resumable paths run with: chunks in flight at
/// once per transfer (the protocol's out-of-order tolerance).
const TRANSFER_WINDOW: usize = 8;

/// Outcome of one file store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOutcome {
    /// Whether deduplication skipped the upload.
    pub deduplicated: bool,
    /// Bytes actually uploaded (0 when deduplicated).
    pub bytes_uploaded: u64,
    /// Front-end that handled the upload (None when deduplicated).
    pub frontend: Option<usize>,
}

/// Outcome of one file retrieve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrieveOutcome {
    /// Bytes downloaded.
    pub bytes_downloaded: u64,
    /// Front-end that served it.
    pub frontend: usize,
}

/// Degraded-mode counters accumulated by the fault-aware paths.
///
/// This is a *view*: the service keeps its counts in an `mcs-obs`
/// [`Registry`] (see [`StorageService::metrics`]) and materialises this
/// struct on demand, so the shape downstream consumers destructure is
/// unchanged while every counter is also exportable by name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultTelemetry {
    /// Backoff-and-retry rounds issued (all causes).
    pub retries: u64,
    /// Uploads redirected past a down front-end to a live one.
    pub failovers: u64,
    /// Chunk transfers that timed out on a browned-out front-end.
    pub chunk_timeouts: u64,
    /// Operations that exhausted their retry budget and failed.
    pub failed_ops: u64,
    /// Bytes moved (or re-moved) by attempts that did not complete —
    /// the retry-inflated traffic a fair-weather model never sees.
    pub retry_bytes: u64,
    /// Resumable transfer attempts that started from partial progress
    /// instead of byte zero (view over `transfer.resumed_sessions`).
    pub resumed_transfers: u64,
    /// Bytes those resumes did *not* re-send that a whole-file retry
    /// would have (view over `transfer.resume_saved_bytes`).
    pub resume_saved_bytes: u64,
}

/// The whole service.
///
/// ```
/// use mcs_storage::{Content, StorageService};
///
/// let mut svc = StorageService::new(4, 24).unwrap();
/// let photo = Content::Synthetic { seed: 1, size: 1_500_000 };
/// let first = svc.store(1, "a.jpg", &photo, 0);
/// assert!(!first.deduplicated);
/// // Another user uploads the same bytes: the metadata server dedups.
/// let second = svc.store(2, "b.jpg", &photo, 10);
/// assert!(second.deduplicated);
/// assert_eq!(svc.retrieve(2, "b.jpg", 20).unwrap().bytes_downloaded, 1_500_000);
/// ```
#[derive(Debug)]
pub struct StorageService {
    metadata: MetadataServer,
    frontends: Vec<FrontEnd>,
    /// Injected fault schedule + retry policy (None = fair weather).
    faults: Option<(FaultPlan, RetryPolicy)>,
    /// Registry-backed degraded-mode counters ([`Self::metrics`]).
    obs: Registry,
    ids: TelemetryIds,
    /// Monotone operation counter keying per-op fault/jitter coins.
    op_seq: u64,
    /// Client-side partial downloads keyed by (user, path): the `.part`
    /// manifest a resumed [`Self::try_retrieve_resumable`] picks up.
    partial_downloads: BTreeMap<(UserId, String), PartialDownload>,
}

/// A persisted partial download: which chunks of which content version
/// the client already holds verified.
#[derive(Debug, Clone)]
struct PartialDownload {
    /// Content version the partial belongs to (a replaced file discards
    /// the stale partial).
    file_digest: Digest,
    /// Verified chunk indices.
    verified: BTreeSet<u64>,
}

/// Handles into [`StorageService::obs`] for the hot-path counters.
#[derive(Debug, Clone, Copy)]
struct TelemetryIds {
    retries: CounterId,
    failovers: CounterId,
    chunk_timeouts: CounterId,
    failed_ops: CounterId,
    retry_bytes: CounterId,
    backoff_ms: CounterId,
    tx_sessions: CounterId,
    tx_resumed: CounterId,
    tx_chunks_sent: CounterId,
    tx_chunks_resent: CounterId,
    tx_chunks_deduped: CounterId,
    tx_resume_saved_bytes: CounterId,
    tx_chunks_per_resume: HistId,
}

impl TelemetryIds {
    fn register(obs: &mut Registry) -> Self {
        Self {
            retries: obs.counter("storage.retries"),
            failovers: obs.counter("storage.failovers"),
            chunk_timeouts: obs.counter("storage.chunk_timeouts"),
            failed_ops: obs.counter("storage.failed_ops"),
            retry_bytes: obs.counter("storage.retry_bytes"),
            backoff_ms: obs.counter("storage.backoff_ms"),
            tx_sessions: obs.counter("transfer.sessions"),
            tx_resumed: obs.counter("transfer.resumed_sessions"),
            tx_chunks_sent: obs.counter("transfer.chunks_sent"),
            tx_chunks_resent: obs.counter("transfer.chunks_resent"),
            tx_chunks_deduped: obs.counter("transfer.chunks_deduped"),
            tx_resume_saved_bytes: obs.counter("transfer.resume_saved_bytes"),
            tx_chunks_per_resume: obs.histogram("transfer.chunks_per_resume"),
        }
    }
}

/// [`Channel`] implementation over a fault plan: sends observe the bound
/// front-end's outage/brownout windows at their own timeline instants,
/// and per-send timeout coins come off dedicated stateless streams so
/// fates are order-free.
struct PlanChannel<'a> {
    plan: &'a FaultPlan,
    retry: &'a RetryPolicy,
    fe: usize,
    op: u64,
}

impl Channel for PlanChannel<'_> {
    fn send(&mut self, chunk: u64, send: u32, now_ms: u64) -> ChunkFate {
        if self.plan.frontend_down(self.fe, now_ms) {
            return ChunkFate::Down;
        }
        if self.plan.frontend_degraded(self.fe, now_ms)
            && self.plan.chunk_send_timeout(self.op, chunk, send)
        {
            // Timeout detection paces like a retry: capped exponential
            // backoff in the send ordinal, jittered by its own coin.
            let coin = unit_coin(
                split_seed(self.plan.seed, self.op),
                STREAM_CHUNK_PACE,
                chunk.wrapping_mul(64).wrapping_add(send as u64),
            );
            return ChunkFate::Timeout {
                detect_after_ms: self.retry.backoff_ms(send, coin),
            };
        }
        ChunkFate::Deliver { ack_after_ms: 0 }
    }
}

impl StorageService {
    /// Builds a cluster of `n_frontends`, accounting load over
    /// `horizon_hours`. Rejects an empty fleet.
    pub fn new(n_frontends: usize, horizon_hours: usize) -> Result<Self, ConfigError> {
        let mut obs = Registry::new();
        let ids = TelemetryIds::register(&mut obs);
        Ok(Self {
            metadata: MetadataServer::new(n_frontends)?,
            frontends: (0..n_frontends)
                .map(|id| FrontEnd::new(id, horizon_hours))
                .collect(),
            faults: None,
            obs,
            ids,
            op_seq: 0,
            partial_downloads: BTreeMap::new(),
        })
    }

    /// Installs a fault plan + retry policy; `try_store`/`try_retrieve`
    /// consult it from now on. Validates the policy first.
    pub fn set_fault_plan(
        &mut self,
        plan: FaultPlan,
        retry: RetryPolicy,
    ) -> Result<(), ConfigError> {
        retry.validate()?;
        self.faults = Some((plan, retry));
        Ok(())
    }

    /// Removes any installed fault plan (back to fair weather).
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// Degraded-mode counters accumulated so far, materialised from the
    /// metric registry.
    pub fn telemetry(&self) -> FaultTelemetry {
        FaultTelemetry {
            retries: self.obs.counter_value(self.ids.retries),
            failovers: self.obs.counter_value(self.ids.failovers),
            chunk_timeouts: self.obs.counter_value(self.ids.chunk_timeouts),
            failed_ops: self.obs.counter_value(self.ids.failed_ops),
            retry_bytes: self.obs.counter_value(self.ids.retry_bytes),
            resumed_transfers: self.obs.counter_value(self.ids.tx_resumed),
            resume_saved_bytes: self.obs.counter_value(self.ids.tx_resume_saved_bytes),
        }
    }

    /// Chunk-transfer protocol counters, materialised from the registry's
    /// `transfer.*` names (the [`TransferStats`] monoid).
    pub fn transfer_stats(&self) -> TransferStats {
        TransferStats {
            sessions: self.obs.counter_value(self.ids.tx_sessions),
            resumed_sessions: self.obs.counter_value(self.ids.tx_resumed),
            chunks_sent: self.obs.counter_value(self.ids.tx_chunks_sent),
            chunks_resent: self.obs.counter_value(self.ids.tx_chunks_resent),
            chunks_deduped: self.obs.counter_value(self.ids.tx_chunks_deduped),
            resume_saved_bytes: self.obs.counter_value(self.ids.tx_resume_saved_bytes),
        }
    }

    /// The service's metric registry (`storage.*` counters, including the
    /// total backoff milliseconds the virtual clock spent waiting —
    /// `storage.backoff_ms` — which [`FaultTelemetry`] does not carry).
    pub fn metrics(&self) -> &Registry {
        &self.obs
    }

    /// Stores one file: metadata round trip, dedup check, chunk uploads.
    pub fn store(
        &mut self,
        user: UserId,
        name: &str,
        content: &Content,
        now_ms: u64,
    ) -> StoreOutcome {
        let manifest = FileManifest::build(name, content);
        match self.metadata.begin_store(user, manifest.clone(), now_ms) {
            StoreDecision::Deduplicated => StoreOutcome {
                deduplicated: true,
                bytes_uploaded: 0,
                frontend: None,
            },
            StoreDecision::Upload { frontend } => {
                self.frontends[frontend].put_file(&manifest, now_ms);
                let bytes = manifest.size;
                self.metadata.complete_upload(manifest, frontend);
                StoreOutcome {
                    deduplicated: false,
                    bytes_uploaded: bytes,
                    frontend: Some(frontend),
                }
            }
        }
    }

    /// Stores a batch of files (the app's multi-select backup).
    pub fn store_batch(
        &mut self,
        user: UserId,
        files: &[(String, Content)],
        now_ms: u64,
    ) -> Vec<StoreOutcome> {
        files
            .iter()
            .map(|(name, content)| self.store(user, name, content, now_ms))
            .collect()
    }

    /// Retrieves a file from the user's own namespace.
    pub fn retrieve(&mut self, user: UserId, path: &str, now_ms: u64) -> Option<RetrieveOutcome> {
        let (manifest, fe) = self.metadata.begin_retrieve(user, path)?;
        let bytes = self.frontends[fe].get_file(&manifest, now_ms);
        Some(RetrieveOutcome {
            bytes_downloaded: bytes,
            frontend: fe,
        })
    }

    /// Jitter coin for retry `attempt` of operation `op` — stateless, so
    /// the backoff sequence does not depend on what other operations did.
    fn backoff_coin(plan: &FaultPlan, op: u64, attempt: u32) -> f64 {
        unit_coin(
            plan.seed,
            STREAM_BACKOFF,
            op.wrapping_mul(64).wrapping_add(attempt as u64),
        )
    }

    /// Waits out a metadata outage with backoff on the virtual clock.
    /// Returns the time the metadata server answered, or an error when the
    /// retry budget ran out first.
    fn await_metadata(
        obs: &mut Registry,
        ids: &TelemetryIds,
        plan: &FaultPlan,
        retry: &RetryPolicy,
        op: u64,
        mut t: u64,
    ) -> Result<u64, ServiceError> {
        let mut attempts = 1u32;
        while plan.metadata_down(t) {
            if !retry.allows(attempts) {
                obs.inc(ids.failed_ops);
                return Err(ServiceError::MetadataUnavailable { attempts });
            }
            obs.inc(ids.retries);
            let delay = retry.backoff_ms(attempts, Self::backoff_coin(plan, op, attempts));
            obs.add(ids.backoff_ms, delay);
            t = t.saturating_add(delay);
            attempts += 1;
        }
        Ok(t)
    }

    /// Fault-aware store. Without an installed plan this is exactly
    /// [`Self::store`]. With one, the operation runs on the virtual clock
    /// starting at `now_ms`: it waits out metadata outages, fails over past
    /// down front-ends, re-sends chunk transfers that time out during
    /// brownouts, and gives up with a [`ServiceError`] when the retry
    /// budget is exhausted. Failed stores leave **no** namespace entry —
    /// the metadata round trip only commits on success.
    pub fn try_store(
        &mut self,
        user: UserId,
        name: &str,
        content: &Content,
        now_ms: u64,
    ) -> Result<StoreOutcome, ServiceError> {
        let Some((plan, retry)) = self.faults.clone() else {
            return Ok(self.store(user, name, content, now_ms));
        };
        self.op_seq += 1;
        let op = self.op_seq;
        let mut t = Self::await_metadata(&mut self.obs, &self.ids, &plan, &retry, op, now_ms)?;

        let manifest = FileManifest::build(name, content);
        // Dedup pre-check *before* mutating the namespace, so a store that
        // later fails on the data path leaves no dangling link.
        if self.metadata.knows(&manifest.file_digest) {
            let decision = self.metadata.begin_store(user, manifest, t);
            debug_assert_eq!(decision, StoreDecision::Deduplicated);
            return Ok(StoreOutcome {
                deduplicated: true,
                bytes_uploaded: 0,
                frontend: None,
            });
        }

        // Upload path: start at the user's closest front-end, fail over
        // past down ones, and re-send on brownout chunk timeouts.
        let n = self.frontends.len();
        let preferred = self.metadata.closest_frontend(user);
        let mut attempts = 1u32;
        loop {
            let mut chosen = None;
            for k in 0..n {
                let fe = (preferred + k) % n;
                if plan.frontend_down(fe, t) {
                    continue;
                }
                if k > 0 {
                    self.obs.inc(self.ids.failovers);
                }
                chosen = Some(fe);
                break;
            }
            let failure = match chosen {
                None => ServiceError::AllFrontendsDown { attempts },
                Some(fe) => {
                    if plan.frontend_degraded(fe, t) && plan.chunk_timeout(op, attempts) {
                        // The transfer moved (some of) the bytes and died.
                        self.obs.inc(self.ids.chunk_timeouts);
                        self.obs.add(self.ids.retry_bytes, manifest.size);
                        ServiceError::ChunkTimeout {
                            frontend: fe,
                            attempts,
                        }
                    } else {
                        let decision = self.metadata.begin_store(user, manifest.clone(), t);
                        debug_assert!(matches!(decision, StoreDecision::Upload { .. }));
                        self.frontends[fe].put_file(&manifest, t);
                        let bytes = manifest.size;
                        self.metadata.complete_upload(manifest, fe);
                        return Ok(StoreOutcome {
                            deduplicated: false,
                            bytes_uploaded: bytes,
                            frontend: Some(fe),
                        });
                    }
                }
            };
            if !retry.allows(attempts) {
                self.obs.inc(self.ids.failed_ops);
                return Err(failure);
            }
            self.obs.inc(self.ids.retries);
            let delay = retry.backoff_ms(attempts, Self::backoff_coin(&plan, op, attempts));
            self.obs.add(self.ids.backoff_ms, delay);
            t = t.saturating_add(delay);
            attempts += 1;
        }
    }

    /// Fault-aware retrieve. Without an installed plan this is
    /// [`Self::retrieve`] with `None` mapped to [`ServiceError::NotFound`].
    /// With one, the operation waits out metadata outages, then waits (with
    /// backoff) for the single front-end holding the content — retrievals
    /// cannot fail over — and re-requests on brownout chunk timeouts.
    pub fn try_retrieve(
        &mut self,
        user: UserId,
        path: &str,
        now_ms: u64,
    ) -> Result<RetrieveOutcome, ServiceError> {
        let Some((plan, retry)) = self.faults.clone() else {
            return self
                .retrieve(user, path, now_ms)
                .ok_or(ServiceError::NotFound);
        };
        self.op_seq += 1;
        let op = self.op_seq;
        let mut t = Self::await_metadata(&mut self.obs, &self.ids, &plan, &retry, op, now_ms)?;

        let Some((manifest, fe)) = self.metadata.begin_retrieve(user, path) else {
            return Err(ServiceError::NotFound);
        };
        let mut attempts = 1u32;
        loop {
            let failure = if plan.frontend_down(fe, t) {
                ServiceError::FrontendUnavailable {
                    frontend: fe,
                    attempts,
                }
            } else if plan.frontend_degraded(fe, t) && plan.chunk_timeout(op, attempts) {
                self.obs.inc(self.ids.chunk_timeouts);
                self.obs.add(self.ids.retry_bytes, manifest.size);
                ServiceError::ChunkTimeout {
                    frontend: fe,
                    attempts,
                }
            } else {
                let bytes = self.frontends[fe].get_file(&manifest, t);
                return Ok(RetrieveOutcome {
                    bytes_downloaded: bytes,
                    frontend: fe,
                });
            };
            if !retry.allows(attempts) {
                self.obs.inc(self.ids.failed_ops);
                return Err(failure);
            }
            self.obs.inc(self.ids.retries);
            let delay = retry.backoff_ms(attempts, Self::backoff_coin(&plan, op, attempts));
            self.obs.add(self.ids.backoff_ms, delay);
            t = t.saturating_add(delay);
            attempts += 1;
        }
    }

    /// Books one engine attempt's protocol counters.
    fn book_attempt(&mut self, report: &crate::transfer::AttemptReport) {
        self.obs.add(self.ids.tx_chunks_sent, report.chunks_sent);
        self.obs
            .add(self.ids.tx_chunks_resent, report.chunks_resent);
        self.obs.add(self.ids.chunk_timeouts, report.timeouts);
        self.obs.add(self.ids.retry_bytes, report.bytes_resent);
    }

    /// Books resume accounting if `session` starts this attempt with
    /// partial progress: what a whole-file retry would have re-sent.
    fn book_resume(&mut self, session: &TransferSession) {
        if session.verified_count() > 0 && !session.is_complete() {
            self.obs.inc(self.ids.tx_resumed);
            self.obs
                .add(self.ids.tx_resume_saved_bytes, session.bytes_verified());
            self.obs.observe(
                self.ids.tx_chunks_per_resume,
                session.missing().len() as u64,
            );
        }
    }

    /// Resumable fault-aware store: the upload moves chunk-by-chunk
    /// through the [`crate::transfer`] protocol on an `mcs-sim` timeline.
    ///
    /// Differences from [`Self::try_store`]:
    ///
    /// - A brownout costs individual chunk re-sends (per-send coins on
    ///   `mcs_faults::plan::streams::CHUNK_SEND`), not the whole file.
    /// - A mid-transfer outage stalls the attempt but every verified
    ///   chunk stays resident on the front-end **and** in the metadata
    ///   chunk index, so the retry — or a whole new operation for the
    ///   same content — resumes with only the missing chunks.
    /// - Chunk-level dedup: chunks the index already records on the
    ///   chosen front-end are skipped outright (`transfer.chunks_deduped`),
    ///   so a resumed upload of partially-known content never re-sends
    ///   verified bytes.
    ///
    /// `bytes_uploaded` reports what *this operation* actually moved —
    /// resumed/deduped chunks are excluded, which is exactly the paper's
    /// wasted-bandwidth question. Without an installed plan this is
    /// [`Self::store`]. Failed stores leave no namespace entry; their
    /// partial chunks await a resume (GC reclaims them if the content is
    /// later stored and deleted).
    pub fn try_store_resumable(
        &mut self,
        user: UserId,
        name: &str,
        content: &Content,
        now_ms: u64,
    ) -> Result<StoreOutcome, ServiceError> {
        let Some((plan, retry)) = self.faults.clone() else {
            return Ok(self.store(user, name, content, now_ms));
        };
        self.op_seq += 1;
        let op = self.op_seq;
        let mut t = Self::await_metadata(&mut self.obs, &self.ids, &plan, &retry, op, now_ms)?;

        let manifest = FileManifest::build(name, content);
        // File-level dedup pre-check, same contract as try_store.
        if self.metadata.knows(&manifest.file_digest) {
            let decision = self.metadata.begin_store(user, manifest, t);
            debug_assert_eq!(decision, StoreDecision::Deduplicated);
            return Ok(StoreOutcome {
                deduplicated: true,
                bytes_uploaded: 0,
                frontend: None,
            });
        }

        let n = self.frontends.len();
        let preferred = self.metadata.closest_frontend(user);
        let cfg = TransferConfig {
            window: TRANSFER_WINDOW,
            max_chunk_sends: retry.max_attempts,
        };
        self.obs.inc(self.ids.tx_sessions);
        // The in-op partial: (bound front-end, session, bytes this op
        // actually uploaded). Sessions are sticky to their front-end —
        // chunks live server-side, so failing over means starting a new
        // session on the new home (minus whatever the chunk index
        // already proves is there).
        let mut bound: Option<(usize, TransferSession, u64)> = None;
        let mut attempts = 1u32;
        loop {
            let chosen = match &bound {
                Some((fe, _, _)) if !plan.frontend_down(*fe, t) => Some(*fe),
                _ => {
                    let mut found = None;
                    for k in 0..n {
                        let fe = (preferred + k) % n;
                        if plan.frontend_down(fe, t) {
                            continue;
                        }
                        if k > 0 {
                            self.obs.inc(self.ids.failovers);
                        }
                        found = Some(fe);
                        break;
                    }
                    found
                }
            };
            let failure = match chosen {
                None => ServiceError::AllFrontendsDown { attempts },
                Some(fe) => {
                    let rebind = !matches!(&bound, Some((b, _, _)) if *b == fe);
                    if rebind {
                        if let Some((_, _, wasted)) = bound.take() {
                            // The old home's partial cannot serve the new
                            // one: those bytes become retry waste. (They
                            // stay resident + indexed on the old front-end
                            // for future ops to dedup against.)
                            self.obs.add(self.ids.retry_bytes, wasted);
                        }
                        let mut session = TransferSession::new(manifest.clone(), cfg.window);
                        let known = self.metadata.chunks_on_frontend(&manifest, fe);
                        for &i in &known {
                            let _ = session.skip_verified(i);
                        }
                        if !known.is_empty() {
                            self.obs.add(self.ids.tx_chunks_deduped, known.len() as u64);
                        }
                        bound = Some((fe, session, 0));
                    }
                    let Some((_, session, uploaded)) = bound.as_mut() else {
                        // Unreachable by construction (the rebind above
                        // always leaves a session bound); treated as an
                        // unavailable front-end rather than a panic.
                        return Err(ServiceError::FrontendUnavailable {
                            frontend: fe,
                            attempts,
                        });
                    };
                    let mut stall = None;
                    if !session.is_complete() {
                        self.book_resume(session);
                        let mut channel = PlanChannel {
                            plan: &plan,
                            retry: &retry,
                            fe,
                            op,
                        };
                        let report = run_transfer_attempt(
                            session,
                            &mut channel,
                            |i| manifest.chunk_digests[i as usize],
                            &cfg,
                            t,
                        );
                        self.book_attempt(&report);
                        // Apply verified chunks in ack order: they are
                        // durable on the front-end and indexed for dedup
                        // even if the operation later fails.
                        for &(i, at) in &report.verified {
                            let d = manifest.chunk_digests[i as usize];
                            self.frontends[fe].put_chunk(d, manifest.chunk_size(i), at);
                            self.metadata.record_chunk(d, fe);
                            *uploaded = uploaded.saturating_add(manifest.chunk_size(i));
                        }
                        t = t.max(report.end_ms);
                        stall = report.stall;
                    }
                    match stall {
                        None => {
                            let decision = self.metadata.begin_store(user, manifest.clone(), t);
                            debug_assert!(matches!(decision, StoreDecision::Upload { .. }));
                            let bytes_uploaded = *uploaded;
                            self.metadata.complete_upload(manifest, fe);
                            return Ok(StoreOutcome {
                                deduplicated: false,
                                bytes_uploaded,
                                frontend: Some(fe),
                            });
                        }
                        Some(Stall::FrontendDown { .. }) => ServiceError::FrontendUnavailable {
                            frontend: fe,
                            attempts,
                        },
                        Some(Stall::ChunkBudget { .. }) => ServiceError::ChunkTimeout {
                            frontend: fe,
                            attempts,
                        },
                    }
                }
            };
            if !retry.allows(attempts) {
                self.obs.inc(self.ids.failed_ops);
                return Err(failure);
            }
            self.obs.inc(self.ids.retries);
            let delay = retry.backoff_ms(attempts, Self::backoff_coin(&plan, op, attempts));
            self.obs.add(self.ids.backoff_ms, delay);
            t = t.saturating_add(delay);
            attempts += 1;
        }
    }

    /// Resumable fault-aware retrieve: the download moves chunk-by-chunk
    /// through the [`crate::transfer`] protocol, and a download that
    /// exhausts its retry budget mid-transfer remembers which chunks the
    /// client already verified. The next retrieve of the same path — if
    /// the content is unchanged — resumes with only the missing chunks
    /// (`transfer.resumed_sessions` / `transfer.resume_saved_bytes`).
    ///
    /// `bytes_downloaded` reports the full file size the client ends up
    /// with; the front-end's hourly download load only grows by the bytes
    /// each attempt actually served. Without an installed plan this is
    /// [`Self::retrieve`] with `None` mapped to [`ServiceError::NotFound`].
    pub fn try_retrieve_resumable(
        &mut self,
        user: UserId,
        path: &str,
        now_ms: u64,
    ) -> Result<RetrieveOutcome, ServiceError> {
        let Some((plan, retry)) = self.faults.clone() else {
            return self
                .retrieve(user, path, now_ms)
                .ok_or(ServiceError::NotFound);
        };
        self.op_seq += 1;
        let op = self.op_seq;
        let mut t = Self::await_metadata(&mut self.obs, &self.ids, &plan, &retry, op, now_ms)?;

        let Some((manifest, fe)) = self.metadata.begin_retrieve(user, path) else {
            return Err(ServiceError::NotFound);
        };
        let cfg = TransferConfig {
            window: TRANSFER_WINDOW,
            max_chunk_sends: retry.max_attempts,
        };
        // Resume a matching interrupted download of this path; a stale
        // partial (the content changed in between) is discarded.
        let key = (user, path.to_string());
        let mut session = match self.partial_downloads.remove(&key) {
            Some(p) if p.file_digest == manifest.file_digest => {
                TransferSession::resume(manifest.clone(), &p.verified, cfg.window)
            }
            _ => TransferSession::new(manifest.clone(), cfg.window),
        };
        self.obs.inc(self.ids.tx_sessions);
        let mut attempts = 1u32;
        loop {
            let failure = if plan.frontend_down(fe, t) {
                ServiceError::FrontendUnavailable {
                    frontend: fe,
                    attempts,
                }
            } else {
                self.book_resume(&session);
                let mut channel = PlanChannel {
                    plan: &plan,
                    retry: &retry,
                    fe,
                    op,
                };
                let report = run_transfer_attempt(
                    &mut session,
                    &mut channel,
                    |i| manifest.chunk_digests[i as usize],
                    &cfg,
                    t,
                );
                self.book_attempt(&report);
                // Each chunk verified this attempt was served once by the
                // front-end, at its ack instant.
                for &(i, at) in &report.verified {
                    let _ = self.frontends[fe].get_chunk(&manifest.chunk_digests[i as usize], at);
                }
                t = t.max(report.end_ms);
                match report.stall {
                    None => {
                        return Ok(RetrieveOutcome {
                            bytes_downloaded: manifest.size,
                            frontend: fe,
                        });
                    }
                    Some(Stall::FrontendDown { .. }) => ServiceError::FrontendUnavailable {
                        frontend: fe,
                        attempts,
                    },
                    Some(Stall::ChunkBudget { .. }) => ServiceError::ChunkTimeout {
                        frontend: fe,
                        attempts,
                    },
                }
            };
            if !retry.allows(attempts) {
                self.obs.inc(self.ids.failed_ops);
                // Keep the client-side partial for the next retrieve of
                // this path: that is what makes the download resumable.
                if session.verified_count() > 0 && !session.is_complete() {
                    self.partial_downloads.insert(
                        key,
                        PartialDownload {
                            file_digest: manifest.file_digest,
                            verified: session.verified_set(),
                        },
                    );
                }
                return Err(failure);
            }
            self.obs.inc(self.ids.retries);
            let delay = retry.backoff_ms(attempts, Self::backoff_coin(&plan, op, attempts));
            self.obs.add(self.ids.backoff_ms, delay);
            t = t.saturating_add(delay);
            attempts += 1;
        }
    }

    /// Publishes a share URL.
    pub fn publish_url(&mut self, user: UserId, path: &str) -> Option<ShareUrl> {
        self.metadata.publish_url(user, path)
    }

    /// Retrieves shared content by URL (possibly by a different user).
    pub fn retrieve_url(
        &mut self,
        requester: UserId,
        url: &ShareUrl,
        now_ms: u64,
    ) -> Option<RetrieveOutcome> {
        let (manifest, fe) = self.metadata.begin_retrieve_url(requester, url)?;
        let bytes = self.frontends[fe].get_file(&manifest, now_ms);
        Some(RetrieveOutcome {
            bytes_downloaded: bytes,
            frontend: fe,
        })
    }

    /// Deletes a file from a user's namespace (§2.1: deletes go through
    /// the metadata servers only and never hit the front-end data path —
    /// reclamation happens later via [`Self::collect_garbage`]).
    pub fn delete(&mut self, user: UserId, path: &str) -> bool {
        self.metadata.delete(user, path).is_some()
    }

    /// Garbage-collects contents no namespace links anymore; returns bytes
    /// reclaimed across the fleet.
    pub fn collect_garbage(&mut self) -> u64 {
        let orphans = self.metadata.orphans();
        let mut freed = 0;
        for (digest, fe) in orphans {
            // Fetch the manifest before forgetting it.
            let manifest = {
                let (m, _) = self
                    .metadata
                    .manifest_of(&digest)
                    // mcs-lint: allow(panic, orphans() only lists digests present in `known`)
                    .expect("orphan listed by metadata");
                m
            };
            freed += self.frontends[fe].reclaim_file(&manifest);
            // Drop chunk-index entries for chunks the reclaim actually
            // freed (shared chunks stay resident and stay indexed).
            for d in &manifest.chunk_digests {
                if !self.frontends[fe].has_chunk(d) {
                    self.metadata.unrecord_chunk(d, fe);
                }
            }
            self.metadata.forget(&digest);
        }
        freed
    }

    /// Metadata server view.
    pub fn metadata(&self) -> &MetadataServer {
        &self.metadata
    }

    /// Front-end fleet view.
    pub fn frontends(&self) -> &[FrontEnd] {
        &self.frontends
    }

    /// Total unique bytes resident across the fleet.
    pub fn stored_bytes(&self) -> u64 {
        self.frontends.iter().map(|f| f.stored_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photo(seed: u64) -> Content {
        Content::Synthetic {
            seed,
            size: 1_500_000,
        }
    }

    #[test]
    fn end_to_end_store_and_retrieve() {
        let mut svc = StorageService::new(4, 24).unwrap();
        let out = svc.store(1, "p/1.jpg", &photo(1), 0);
        assert!(!out.deduplicated);
        assert_eq!(out.bytes_uploaded, 1_500_000);
        let got = svc.retrieve(1, "p/1.jpg", 1000).expect("retrieved");
        assert_eq!(got.bytes_downloaded, 1_500_000);
    }

    #[test]
    fn cross_user_dedup_saves_upload() {
        let mut svc = StorageService::new(4, 24).unwrap();
        let a = svc.store(1, "x.jpg", &photo(7), 0);
        let b = svc.store(2, "y.jpg", &photo(7), 10);
        assert!(!a.deduplicated);
        assert!(b.deduplicated);
        assert_eq!(b.bytes_uploaded, 0);
        assert_eq!(svc.stored_bytes(), 1_500_000, "stored once");
        // Both users can retrieve.
        assert!(svc.retrieve(1, "x.jpg", 20).is_some());
        assert!(svc.retrieve(2, "y.jpg", 20).is_some());
    }

    #[test]
    fn batch_store() {
        let mut svc = StorageService::new(2, 24).unwrap();
        let files: Vec<(String, Content)> = (0..5)
            .map(|i| (format!("p/{i}.jpg"), photo(100 + i)))
            .collect();
        let outs = svc.store_batch(3, &files, 0);
        assert_eq!(outs.len(), 5);
        assert!(outs.iter().all(|o| !o.deduplicated));
        assert_eq!(svc.metadata().distinct_contents(), 5);
    }

    #[test]
    fn share_url_content_distribution() {
        let mut svc = StorageService::new(4, 24).unwrap();
        let video = Content::Synthetic {
            seed: 50,
            size: 150_000_000,
        };
        svc.store(1, "clip.mp4", &video, 0);
        let url = svc.publish_url(1, "clip.mp4").expect("url");
        // Many downloaders (the §3.2.1 download-only pattern).
        for user in 100..110 {
            let got = svc.retrieve_url(user, &url, 1000).expect("served");
            assert_eq!(got.bytes_downloaded, 150_000_000);
        }
    }

    #[test]
    fn delete_and_garbage_collection() {
        let mut svc = StorageService::new(3, 24).unwrap();
        svc.store(1, "a.jpg", &photo(1), 0);
        svc.store(2, "b.jpg", &photo(1), 1); // dedup link to same content
        assert_eq!(svc.stored_bytes(), 1_500_000);

        // Deleting one link leaves the content alive (user 2 still links).
        assert!(svc.delete(1, "a.jpg"));
        assert_eq!(svc.collect_garbage(), 0);
        assert!(svc.retrieve(2, "b.jpg", 5).is_some());

        // Deleting the last link orphans the content; GC reclaims it.
        assert!(svc.delete(2, "b.jpg"));
        let freed = svc.collect_garbage();
        assert_eq!(freed, 1_500_000);
        assert_eq!(svc.stored_bytes(), 0);
        assert_eq!(svc.metadata().distinct_contents(), 0);
        // Idempotent.
        assert_eq!(svc.collect_garbage(), 0);
        // The deleted path is gone.
        assert!(svc.retrieve(2, "b.jpg", 9).is_none());
        assert!(!svc.delete(2, "b.jpg"));
    }

    #[test]
    fn gc_only_touches_orphans() {
        let mut svc = StorageService::new(2, 24).unwrap();
        svc.store(1, "keep.jpg", &photo(5), 0);
        svc.store(1, "drop.jpg", &photo(6), 1);
        svc.delete(1, "drop.jpg");
        let freed = svc.collect_garbage();
        assert_eq!(freed, 1_500_000);
        // The kept file still fully retrievable.
        assert_eq!(
            svc.retrieve(1, "keep.jpg", 5).unwrap().bytes_downloaded,
            1_500_000
        );
    }

    #[test]
    fn retrieval_of_missing_path_is_none() {
        let mut svc = StorageService::new(1, 24).unwrap();
        assert!(svc.retrieve(1, "ghost", 0).is_none());
    }

    #[test]
    fn zero_frontends_rejected_not_panicked() {
        let err = StorageService::new(0, 24).expect_err("must reject");
        assert!(err.to_string().contains("front-end"));
    }

    #[test]
    fn try_retrieve_of_never_stored_path_is_not_found() {
        // Without a plan installed…
        let mut svc = StorageService::new(2, 24).unwrap();
        assert_eq!(
            svc.try_retrieve(1, "never/stored", 0),
            Err(ServiceError::NotFound)
        );
        // …and with one (NotFound is not a fault, so no failed_ops).
        svc.set_fault_plan(FaultPlan::none(2), RetryPolicy::default())
            .unwrap();
        assert_eq!(
            svc.try_retrieve(1, "never/stored", 0),
            Err(ServiceError::NotFound)
        );
        assert_eq!(svc.telemetry().failed_ops, 0);
    }

    #[test]
    fn zero_byte_file_stores_and_retrieves() {
        let mut svc = StorageService::new(2, 24).unwrap();
        let empty = Content::Synthetic { seed: 3, size: 0 };
        let out = svc.store(1, "empty.txt", &empty, 0);
        assert!(!out.deduplicated);
        assert_eq!(out.bytes_uploaded, 0);
        let got = svc.retrieve(1, "empty.txt", 5).expect("resolves");
        assert_eq!(got.bytes_downloaded, 0);
        // The fault-aware path agrees.
        let got = svc.try_retrieve(1, "empty.txt", 6).expect("resolves");
        assert_eq!(got.bytes_downloaded, 0);
        assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
    }

    #[test]
    fn try_paths_with_no_faults_match_infallible_paths() {
        let mut plain = StorageService::new(4, 24).unwrap();
        let mut faulted = StorageService::new(4, 24).unwrap();
        faulted
            .set_fault_plan(FaultPlan::none(4), RetryPolicy::default())
            .unwrap();
        for i in 0..20u64 {
            let c = photo(i % 5);
            let name = format!("f{i}");
            let a = plain.store(i % 3, &name, &c, i * 100);
            let b = faulted.try_store(i % 3, &name, &c, i * 100).unwrap();
            assert_eq!(a, b);
        }
        for i in 0..20u64 {
            let name = format!("f{i}");
            let a = plain.retrieve(i % 3, &name, 10_000);
            let b = faulted.try_retrieve(i % 3, &name, 10_000).ok();
            assert_eq!(a, b);
        }
        assert_eq!(faulted.telemetry(), FaultTelemetry::default());
    }

    #[test]
    fn upload_fails_over_past_down_frontend() {
        let mut svc = StorageService::new(2, 24).unwrap();
        let user = 1u64;
        let home = svc.metadata().closest_frontend(user);
        // The preferred front-end is down for the whole horizon.
        let mut plan = FaultPlan::none(2);
        plan.frontend_outages[home] = mcs_faults::Windows::new(vec![(0, u64::MAX)]);
        svc.set_fault_plan(plan, RetryPolicy::default()).unwrap();
        let out = svc.try_store(user, "a.jpg", &photo(1), 0).unwrap();
        assert_eq!(out.frontend, Some(1 - home), "failed over to the peer");
        assert_eq!(svc.telemetry().failovers, 1);
        assert_eq!(svc.telemetry().failed_ops, 0);
    }

    #[test]
    fn all_frontends_down_exhausts_budget() {
        let mut svc = StorageService::new(2, 24).unwrap();
        let mut plan = FaultPlan::none(2);
        for w in &mut plan.frontend_outages {
            *w = mcs_faults::Windows::new(vec![(0, u64::MAX)]);
        }
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        svc.set_fault_plan(plan, retry).unwrap();
        let err = svc.try_store(1, "a.jpg", &photo(1), 0).unwrap_err();
        assert_eq!(err, ServiceError::AllFrontendsDown { attempts: 3 });
        assert_eq!(svc.telemetry().failed_ops, 1);
        assert_eq!(svc.telemetry().retries, 2);
        // The failed store left no namespace entry behind.
        assert!(svc.metadata().list(1).is_empty());
        assert_eq!(svc.metadata().distinct_contents(), 0);
    }

    #[test]
    fn metadata_outage_delays_then_succeeds() {
        let mut svc = StorageService::new(2, 24).unwrap();
        let mut plan = FaultPlan::none(2);
        // Short outage: the first backoff (≥ 100 ms) clears it.
        plan.metadata_outages = mcs_faults::Windows::new(vec![(0, 50)]);
        svc.set_fault_plan(plan, RetryPolicy::default()).unwrap();
        let out = svc.try_store(1, "a.jpg", &photo(1), 0).unwrap();
        assert!(!out.deduplicated);
        assert!(svc.telemetry().retries >= 1);
        assert_eq!(svc.telemetry().failed_ops, 0);
    }

    #[test]
    fn brownout_timeouts_inflate_retry_bytes() {
        let mut svc = StorageService::new(1, 24).unwrap();
        let mut plan = FaultPlan::none(1);
        plan.frontend_brownouts[0] = mcs_faults::Windows::new(vec![(0, u64::MAX)]);
        plan.chunk_timeout_prob = 1.0; // every transfer times out
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        svc.set_fault_plan(plan, retry).unwrap();
        let err = svc.try_store(1, "a.jpg", &photo(1), 0).unwrap_err();
        assert!(matches!(err, ServiceError::ChunkTimeout { .. }));
        let t = svc.telemetry();
        assert_eq!(t.chunk_timeouts, 2);
        assert_eq!(t.retry_bytes, 2 * 1_500_000);
        assert_eq!(t.failed_ops, 1);
    }

    #[test]
    fn metrics_registry_mirrors_telemetry() {
        let mut svc = StorageService::new(2, 24).unwrap();
        let mut plan = FaultPlan::none(2);
        plan.metadata_outages = mcs_faults::Windows::new(vec![(0, 50)]);
        svc.set_fault_plan(plan, RetryPolicy::default()).unwrap();
        svc.try_store(1, "a.jpg", &photo(1), 0).unwrap();
        let t = svc.telemetry();
        let m = svc.metrics();
        assert!(t.retries >= 1);
        assert_eq!(m.counter_by_name("storage.retries"), Some(t.retries));
        assert_eq!(m.counter_by_name("storage.failed_ops"), Some(t.failed_ops));
        // The registry also carries what FaultTelemetry cannot: the total
        // virtual-clock backoff spent waiting out the outage.
        assert!(m.counter_by_name("storage.backoff_ms").unwrap() >= 50);
    }

    #[test]
    fn dedup_retrieve_works_without_reupload() {
        // The §2.1 promise: a deduplicated store is still fully retrievable.
        let mut svc = StorageService::new(3, 24).unwrap();
        svc.store(1, "a", &photo(9), 0);
        let o = svc.store(2, "b", &photo(9), 1);
        assert!(o.deduplicated);
        // The content lives on user 1's front-end; the metadata server
        // routes user 2's retrieval there, so the full bytes come back and
        // no front-end reports a missing chunk.
        let got = svc.retrieve(2, "b", 2).expect("routed");
        assert_eq!(got.bytes_downloaded, 1_500_000);
        assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
    }

    #[test]
    fn resumable_paths_with_none_plan_match_infallible_paths() {
        let mut plain = StorageService::new(4, 24).unwrap();
        let mut faulted = StorageService::new(4, 24).unwrap();
        faulted
            .set_fault_plan(FaultPlan::none(4), RetryPolicy::default())
            .unwrap();
        for i in 0..20u64 {
            let c = photo(i % 5);
            let name = format!("f{i}");
            let a = plain.store(i % 3, &name, &c, i * 100);
            let b = faulted
                .try_store_resumable(i % 3, &name, &c, i * 100)
                .unwrap();
            assert_eq!(a, b);
        }
        for i in 0..20u64 {
            let name = format!("f{i}");
            let a = plain.retrieve(i % 3, &name, 10_000);
            let b = faulted.try_retrieve_resumable(i % 3, &name, 10_000).ok();
            assert_eq!(a, b);
        }
        assert_eq!(faulted.telemetry(), FaultTelemetry::default());
        // Server-side state is bit-identical too: same chunk requests,
        // same hourly loads, same residency.
        for (p, f) in plain.frontends().iter().zip(faulted.frontends()) {
            assert_eq!(p.chunk_puts, f.chunk_puts);
            assert_eq!(p.chunk_gets, f.chunk_gets);
            assert_eq!(p.stored_bytes(), f.stored_bytes());
            assert_eq!(p.upload_load, f.upload_load);
            assert_eq!(p.download_load, f.download_load);
        }
    }

    #[test]
    fn mid_transfer_outage_resumes_only_missing_chunks() {
        // 8-chunk file; a brownout that hardens into a full outage
        // interrupts the first upload partway, leaving a partial on the
        // front-end and in the metadata chunk index.
        let size = 4_000_000u64;
        let content = Content::Synthetic { seed: 21, size };
        let mut svc = StorageService::new(1, 24).unwrap();
        let mut plan = FaultPlan::none(1);
        plan.seed = 9;
        plan.frontend_brownouts[0] = mcs_faults::Windows::new(vec![(0, 200)]);
        plan.frontend_outages[0] = mcs_faults::Windows::new(vec![(200, u64::MAX)]);
        plan.chunk_timeout_prob = 0.5;
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        svc.set_fault_plan(plan, retry).unwrap();
        let err = svc
            .try_store_resumable(1, "big.bin", &content, 0)
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::AllFrontendsDown { .. } | ServiceError::FrontendUnavailable { .. }
        ));
        let stats1 = svc.transfer_stats();
        let verified = svc.frontends()[0].distinct_chunks() as u64;
        let partial_bytes = svc.frontends()[0].stored_bytes();
        assert!(
            verified > 0 && verified < 8,
            "partial progress: {verified}/8"
        );
        // The failed store left no namespace entry, but the chunks stay.
        assert!(svc.metadata().list(1).is_empty());

        // Weather clears; the retried upload resumes via the chunk index.
        svc.set_fault_plan(FaultPlan::none(1), RetryPolicy::default())
            .unwrap();
        let out = svc
            .try_store_resumable(1, "big.bin", &content, 10_000)
            .unwrap();
        assert!(!out.deduplicated);
        assert_eq!(
            out.bytes_uploaded,
            size - partial_bytes,
            "only missing bytes moved"
        );
        let stats2 = svc.transfer_stats();
        assert_eq!(stats2.chunks_deduped - stats1.chunks_deduped, verified);
        assert_eq!(
            stats2.chunks_sent - stats1.chunks_sent,
            8 - verified,
            "resume sent only the missing chunks"
        );
        assert_eq!(stats2.resumed_sessions - stats1.resumed_sessions, 1);
        assert_eq!(
            stats2.resume_saved_bytes - stats1.resume_saved_bytes,
            partial_bytes
        );
        // FaultTelemetry materialises the same registry counters.
        let t = svc.telemetry();
        assert_eq!(t.resumed_transfers, stats2.resumed_sessions);
        assert_eq!(t.resume_saved_bytes, stats2.resume_saved_bytes);
        let m = svc.metrics();
        assert_eq!(
            m.counter_by_name("transfer.chunks_deduped"),
            Some(stats2.chunks_deduped)
        );
        assert_eq!(
            m.counter_by_name("transfer.resumed_sessions"),
            Some(stats2.resumed_sessions)
        );
        // The finished file is whole and fully retrievable.
        assert_eq!(svc.stored_bytes(), size);
        let got = svc.try_retrieve_resumable(1, "big.bin", 20_000).unwrap();
        assert_eq!(got.bytes_downloaded, size);
        assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
    }

    #[test]
    fn interrupted_download_resumes_from_partial() {
        let size = 4_000_000u64;
        let content = Content::Synthetic { seed: 22, size };
        let mut svc = StorageService::new(1, 24).unwrap();
        svc.store(1, "big.bin", &content, 0);
        let mut plan = FaultPlan::none(1);
        plan.seed = 5;
        plan.frontend_brownouts[0] = mcs_faults::Windows::new(vec![(0, 200)]);
        plan.frontend_outages[0] = mcs_faults::Windows::new(vec![(200, u64::MAX)]);
        plan.chunk_timeout_prob = 0.5;
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        svc.set_fault_plan(plan, retry).unwrap();
        let err = svc.try_retrieve_resumable(1, "big.bin", 0).unwrap_err();
        assert!(!matches!(err, ServiceError::NotFound));
        let served_partial: f64 = svc.frontends()[0].download_load.iter().sum();
        assert!(
            served_partial > 0.0 && served_partial < size as f64,
            "partial download: {served_partial}"
        );

        svc.set_fault_plan(FaultPlan::none(1), RetryPolicy::default())
            .unwrap();
        let got = svc.try_retrieve_resumable(1, "big.bin", 10_000).unwrap();
        assert_eq!(got.bytes_downloaded, size);
        assert_eq!(svc.telemetry().resumed_transfers, 1);
        // Across both calls every chunk was served exactly once: the
        // resume re-requested none the client already verified.
        let served: f64 = svc.frontends()[0].download_load.iter().sum();
        assert_eq!(served, size as f64);
        // The partial is consumed: the next retrieve is a fresh session.
        let before = svc.transfer_stats().resumed_sessions;
        svc.try_retrieve_resumable(1, "big.bin", 20_000).unwrap();
        assert_eq!(svc.transfer_stats().resumed_sessions, before);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Store {
            user: u64,
            name: u8,
            content_seed: u64,
            size: u32,
        },
        Retrieve {
            user: u64,
            name: u8,
        },
        Delete {
            user: u64,
            name: u8,
        },
        Gc,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..4, any::<u8>(), 0u64..6, 1u32..2_000_000).prop_map(
                |(user, name, content_seed, size)| Op::Store {
                    user,
                    name: name % 8,
                    content_seed,
                    size,
                }
            ),
            (0u64..4, any::<u8>()).prop_map(|(user, name)| Op::Retrieve {
                user,
                name: name % 8
            }),
            (0u64..4, any::<u8>()).prop_map(|(user, name)| Op::Delete {
                user,
                name: name % 8
            }),
            Just(Op::Gc),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Any operation sequence keeps the service consistent: a stored,
        /// undeleted path always resolves with full bytes; no front-end
        /// ever reports a missing chunk; GC never breaks a live link.
        #[test]
        fn prop_random_op_sequences_stay_consistent(ops in proptest::collection::vec(arb_op(), 1..60)) {
            let mut svc = StorageService::new(4, 24).unwrap();
            // Ground truth: (user, name) -> expected size if live.
            let mut live: std::collections::HashMap<(u64, String), u64> =
                std::collections::HashMap::new();
            for (t, op) in ops.into_iter().enumerate() {
                let now = t as u64 * 1000;
                match op {
                    Op::Store { user, name, content_seed, size } => {
                        let name = format!("f{name}");
                        let content = Content::Synthetic { seed: content_seed, size: size as u64 };
                        svc.store(user, &name, &content, now);
                        live.insert((user, name), size as u64);
                    }
                    Op::Retrieve { user, name } => {
                        let name = format!("f{name}");
                        let got = svc.retrieve(user, &name, now);
                        match live.get(&(user, name)) {
                            Some(&size) => {
                                let got = got.expect("live path must resolve");
                                prop_assert_eq!(got.bytes_downloaded, size);
                            }
                            None => prop_assert!(got.is_none()),
                        }
                    }
                    Op::Delete { user, name } => {
                        let name = format!("f{name}");
                        let existed = svc.delete(user, &name);
                        prop_assert_eq!(existed, live.remove(&(user, name)).is_some());
                    }
                    Op::Gc => {
                        let _ = svc.collect_garbage();
                    }
                }
            }
            // Final sweep: every live path still fully retrievable.
            svc.collect_garbage();
            for ((user, name), size) in &live {
                let got = svc.retrieve(*user, name, 1_000_000).expect("live after GC");
                prop_assert_eq!(got.bytes_downloaded, *size);
            }
            prop_assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
        }
    }
}
