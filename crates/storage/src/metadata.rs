//! The metadata server (§2.1).
//!
//! Every store or retrieve begins here. For storage the client sends the
//! file's manifest; if a copy of the content is already on some storage
//! server, the metadata server merely links it into the user's namespace
//! and tells the client **not** to upload (file-level deduplication).
//! Otherwise it directs the client to the closest front-end. For retrieval
//! it resolves a path or shared URL to the manifest and a front-end.

use std::collections::{BTreeMap, BTreeSet};

use mcs_faults::ConfigError;

use crate::content::FileManifest;
use crate::md5::Digest;

/// User account identifier.
pub type UserId = u64;

/// A shared-URL token (the service lets users share files by URL, §2.1;
/// downloads by URL are the §3.2.1 content-distribution usage pattern).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShareUrl(pub String);

/// One file entry in a user's namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Content digest (keys into the known-content table).
    pub digest: Digest,
    /// Upload (link) time, ms since trace start.
    pub stored_at_ms: u64,
}

/// Outcome of a file-storage operation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreDecision {
    /// Content already known: linked into the namespace, no upload needed.
    Deduplicated,
    /// Content unknown: client must upload all chunks to this front-end.
    Upload {
        /// Front-end to contact.
        frontend: usize,
    },
}

/// Metadata-server statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// File-storage operations handled.
    pub store_ops: u64,
    /// Stores satisfied by deduplication.
    pub dedup_hits: u64,
    /// Bytes the dedup avoided uploading.
    pub dedup_bytes_saved: u64,
    /// File-retrieval operations handled.
    pub retrieve_ops: u64,
    /// Retrievals that failed (unknown path/URL).
    pub retrieve_misses: u64,
    /// Delete operations handled.
    pub delete_ops: u64,
}

/// The metadata server.
///
/// All tables are B-tree maps: GC listings, namespace listings, and any
/// future iteration come out in key order with no per-call sorting, which
/// keeps every output structurally deterministic (the PR-2 contract that
/// `mcs-lint` rule R1 enforces).
#[derive(Debug, Default)]
pub struct MetadataServer {
    /// Content known to exist on storage servers, with the front-end
    /// holding it.
    known: BTreeMap<Digest, (FileManifest, usize)>,
    /// Per-user namespaces: path → entry.
    namespaces: BTreeMap<UserId, BTreeMap<String, FileEntry>>,
    /// Published share URLs.
    urls: BTreeMap<ShareUrl, Digest>,
    /// Chunk index: chunk digest → front-ends holding a verified copy.
    /// The dedup-aware half of the resumable transfer protocol: a resumed
    /// (or partially-known) upload consults this to skip chunks the
    /// target front-end already proved it has.
    chunk_index: BTreeMap<Digest, BTreeSet<usize>>,
    /// Number of front-end servers to spread uploads over.
    frontends: usize,
    /// Counters.
    pub stats: MetadataStats,
}

impl MetadataServer {
    /// Creates a metadata server fronting `frontends` front-end servers.
    /// An empty fleet is a configuration error, not a panic.
    pub fn new(frontends: usize) -> Result<Self, ConfigError> {
        if frontends == 0 {
            return Err(ConfigError::ZeroCount { what: "front-end" });
        }
        Ok(Self {
            frontends,
            ..Self::default()
        })
    }

    /// Handles a file-storage operation request: dedup check + namespace
    /// link + front-end selection.
    pub fn begin_store(
        &mut self,
        user: UserId,
        manifest: FileManifest,
        now_ms: u64,
    ) -> StoreDecision {
        self.stats.store_ops += 1;
        let digest = manifest.file_digest;
        let size = manifest.size;
        let known = self.known.contains_key(&digest);
        let ns = self.namespaces.entry(user).or_default();
        ns.insert(
            manifest.name.clone(),
            FileEntry {
                digest,
                stored_at_ms: now_ms,
            },
        );
        if known {
            self.stats.dedup_hits += 1;
            self.stats.dedup_bytes_saved += size;
            StoreDecision::Deduplicated
        } else {
            StoreDecision::Upload {
                frontend: self.closest_frontend(user),
            }
        }
    }

    /// Marks an upload complete: the content now exists on `frontend`,
    /// future stores of it deduplicate at file level, and every chunk of
    /// it enters the chunk index for chunk-level dedup.
    pub fn complete_upload(&mut self, manifest: FileManifest, frontend: usize) {
        for digest in &manifest.chunk_digests {
            self.record_chunk(*digest, frontend);
        }
        self.known
            .insert(manifest.file_digest, (manifest, frontend));
    }

    /// Records that `frontend` holds a verified copy of the chunk with
    /// this digest. Called per verified chunk by resumable uploads, so a
    /// stalled transfer's progress survives in the index.
    pub fn record_chunk(&mut self, digest: Digest, frontend: usize) {
        self.chunk_index.entry(digest).or_default().insert(frontend);
    }

    /// Does the chunk index record a verified copy of `digest` on
    /// `frontend`?
    pub fn frontend_has_chunk(&self, digest: &Digest, frontend: usize) -> bool {
        self.chunk_index
            .get(digest)
            .is_some_and(|fes| fes.contains(&frontend))
    }

    /// Indices of `manifest`'s chunks that the index records on
    /// `frontend` — what a resumed upload may skip.
    pub fn chunks_on_frontend(&self, manifest: &FileManifest, frontend: usize) -> BTreeSet<u64> {
        manifest
            .chunk_digests
            .iter()
            .enumerate()
            .filter(|(_, d)| self.frontend_has_chunk(d, frontend))
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Drops `frontend` from the chunk's index entry (the front-end
    /// reclaimed its last reference during GC).
    pub fn unrecord_chunk(&mut self, digest: &Digest, frontend: usize) {
        if let Some(fes) = self.chunk_index.get_mut(digest) {
            fes.remove(&frontend);
            if fes.is_empty() {
                self.chunk_index.remove(digest);
            }
        }
    }

    /// Resolves a path in a user's namespace for retrieval.
    pub fn begin_retrieve(&mut self, user: UserId, path: &str) -> Option<(FileManifest, usize)> {
        self.stats.retrieve_ops += 1;
        let entry = self
            .namespaces
            .get(&user)
            .and_then(|ns| ns.get(path))
            .cloned();
        match entry.and_then(|e| self.known.get(&e.digest).cloned()) {
            Some((m, fe)) => Some((m, fe)),
            None => {
                self.stats.retrieve_misses += 1;
                None
            }
        }
    }

    /// Publishes a share URL for a stored file.
    pub fn publish_url(&mut self, user: UserId, path: &str) -> Option<ShareUrl> {
        let entry = self.namespaces.get(&user)?.get(path)?;
        let url = ShareUrl(format!("mcs://share/{}", entry.digest.to_hex()));
        self.urls.insert(url.clone(), entry.digest);
        Some(url)
    }

    /// Resolves a share URL (the §2.1 retrieval path: URL → file MD5 →
    /// manifest).
    pub fn begin_retrieve_url(
        &mut self,
        requester: UserId,
        url: &ShareUrl,
    ) -> Option<(FileManifest, usize)> {
        self.stats.retrieve_ops += 1;
        let _ = requester;
        match self.urls.get(url).and_then(|d| self.known.get(d).cloned()) {
            Some((m, fe)) => Some((m, fe)),
            None => {
                self.stats.retrieve_misses += 1;
                None
            }
        }
    }

    /// Deletes a path from a user's namespace; returns the entry if it
    /// existed. Content is *not* erased here — other users may still link
    /// it; orphan collection is the front-end's garbage-collection job
    /// (the §2.1 note that deletes never touch the front-end data path is
    /// why the paper's logs do not contain them).
    pub fn delete(&mut self, user: UserId, path: &str) -> Option<FileEntry> {
        let entry = self.namespaces.get_mut(&user)?.remove(path)?;
        self.stats.delete_ops += 1;
        Some(entry)
    }

    /// Number of namespace links pointing at `digest` across all users.
    pub fn link_count(&self, digest: &Digest) -> usize {
        self.namespaces
            .values()
            .flat_map(|ns| ns.values())
            .filter(|e| &e.digest == digest)
            .count()
    }

    /// Contents with no remaining namespace links (eligible for GC),
    /// with the front-end holding each.
    pub fn orphans(&self) -> Vec<(Digest, usize)> {
        let mut linked: BTreeSet<Digest> = BTreeSet::new();
        for ns in self.namespaces.values() {
            for e in ns.values() {
                linked.insert(e.digest);
            }
        }
        // `known` is a BTreeMap, so the result is already digest-sorted.
        self.known
            .iter()
            .filter(|(d, _)| !linked.contains(d))
            .map(|(d, (_, fe))| (*d, *fe))
            .collect()
    }

    /// Forgets an orphaned content (after the front-end reclaimed it).
    pub fn forget(&mut self, digest: &Digest) -> bool {
        self.known.remove(digest).is_some()
    }

    /// Lists a user's namespace (path, entry) pairs, sorted by path
    /// (namespaces are path-keyed B-trees, so iteration is the sort).
    pub fn list(&self, user: UserId) -> Vec<(String, FileEntry)> {
        self.namespaces
            .get(&user)
            .map(|ns| ns.iter().map(|(k, e)| (k.clone(), e.clone())).collect())
            .unwrap_or_default()
    }

    /// Manifest and front-end location of a known content.
    pub fn manifest_of(&self, digest: &Digest) -> Option<(FileManifest, usize)> {
        self.known.get(digest).cloned()
    }

    /// Whether content with this digest is stored.
    pub fn knows(&self, digest: &Digest) -> bool {
        self.known.contains_key(digest)
    }

    /// Number of distinct stored contents.
    pub fn distinct_contents(&self) -> usize {
        self.known.len()
    }

    /// "Closest" front-end for a user — deterministic rendezvous-style
    /// assignment standing in for the geographic selection the real
    /// service performs.
    pub fn closest_frontend(&self, user: UserId) -> usize {
        let mut best = 0usize;
        let mut best_score = 0u64;
        for fe in 0..self.frontends {
            let mut x = user
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(fe as u64);
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            if x >= best_score {
                best_score = x;
                best = fe;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::Content;

    fn manifest(name: &str, seed: u64, size: u64) -> FileManifest {
        FileManifest::build(name, &Content::Synthetic { seed, size })
    }

    #[test]
    fn zero_frontends_rejected_not_panicked() {
        assert!(MetadataServer::new(0).is_err());
    }

    #[test]
    fn first_store_uploads_second_dedups() {
        let mut md = MetadataServer::new(4).unwrap();
        let m = manifest("a.jpg", 1, 1000);
        match md.begin_store(10, m.clone(), 0) {
            StoreDecision::Upload { frontend } => assert!(frontend < 4),
            other => panic!("expected upload, got {other:?}"),
        }
        md.complete_upload(m.clone(), 0);
        // Same content, other user, other name.
        let m2 = manifest("b.jpg", 1, 1000);
        assert_eq!(md.begin_store(11, m2, 5), StoreDecision::Deduplicated);
        assert_eq!(md.stats.dedup_hits, 1);
        assert_eq!(md.stats.dedup_bytes_saved, 1000);
        assert_eq!(md.distinct_contents(), 1);
    }

    #[test]
    fn dedup_requires_completed_upload() {
        let mut md = MetadataServer::new(1).unwrap();
        let m = manifest("a.jpg", 1, 1000);
        let _ = md.begin_store(10, m, 0);
        // Upload never completed; the same content must upload again.
        let m2 = manifest("a.jpg", 1, 1000);
        assert!(matches!(
            md.begin_store(11, m2, 1),
            StoreDecision::Upload { .. }
        ));
    }

    #[test]
    fn retrieve_by_path() {
        let mut md = MetadataServer::new(2).unwrap();
        let m = manifest("docs/x.pdf", 7, 5000);
        let _ = md.begin_store(1, m.clone(), 0);
        md.complete_upload(m.clone(), 0);
        let (got, fe) = md.begin_retrieve(1, "docs/x.pdf").expect("found");
        assert_eq!(got.file_digest, m.file_digest);
        assert!(fe < 2);
        assert!(md.begin_retrieve(1, "docs/missing.pdf").is_none());
        assert!(md.begin_retrieve(2, "docs/x.pdf").is_none());
        assert_eq!(md.stats.retrieve_misses, 2);
    }

    #[test]
    fn share_urls() {
        let mut md = MetadataServer::new(2).unwrap();
        let m = manifest("video.mp4", 9, 150_000_000);
        let _ = md.begin_store(1, m.clone(), 0);
        md.complete_upload(m.clone(), 0);
        let url = md.publish_url(1, "video.mp4").expect("published");
        // A different user retrieves via the URL.
        let (got, _) = md.begin_retrieve_url(99, &url).expect("resolved");
        assert_eq!(got.file_digest, m.file_digest);
        // Unknown URL misses.
        assert!(md
            .begin_retrieve_url(99, &ShareUrl("mcs://share/bogus".into()))
            .is_none());
        // URL for a path that does not exist.
        assert!(md.publish_url(1, "nope").is_none());
    }

    #[test]
    fn namespace_listing_sorted() {
        let mut md = MetadataServer::new(1).unwrap();
        for (name, seed) in [("b.jpg", 1u64), ("a.jpg", 2), ("c.jpg", 3)] {
            let m = manifest(name, seed, 100);
            let _ = md.begin_store(5, m.clone(), 0);
            md.complete_upload(m, 0);
        }
        let listing = md.list(5);
        let names: Vec<&str> = listing.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.jpg", "b.jpg", "c.jpg"]);
        assert!(md.list(999).is_empty());
    }

    #[test]
    fn overwriting_a_path_replaces_entry() {
        // §2.1 footnote: no delta updates; a changed file is a new upload.
        let mut md = MetadataServer::new(1).unwrap();
        let v1 = manifest("note.txt", 1, 100);
        let v2 = manifest("note.txt", 2, 120);
        let _ = md.begin_store(1, v1.clone(), 0);
        md.complete_upload(v1, 0);
        let _ = md.begin_store(1, v2.clone(), 10);
        md.complete_upload(v2.clone(), 0);
        let (got, _) = md.begin_retrieve(1, "note.txt").unwrap();
        assert_eq!(got.file_digest, v2.file_digest);
        assert_eq!(md.distinct_contents(), 2, "old content still exists");
    }

    #[test]
    fn chunk_index_tracks_per_frontend_copies() {
        let mut md = MetadataServer::new(2).unwrap();
        let m = manifest("big.bin", 3, 3 * 512 * 1024);
        assert_eq!(m.chunk_count(), 3);
        assert!(md.chunks_on_frontend(&m, 0).is_empty());
        // A stalled upload verified chunks 0 and 2 on front-end 1.
        md.record_chunk(m.chunk_digests[0], 1);
        md.record_chunk(m.chunk_digests[2], 1);
        assert_eq!(
            md.chunks_on_frontend(&m, 1).into_iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert!(md.chunks_on_frontend(&m, 0).is_empty(), "per-frontend");
        assert!(md.frontend_has_chunk(&m.chunk_digests[0], 1));
        assert!(!md.frontend_has_chunk(&m.chunk_digests[1], 1));
        // Completing an upload indexes every chunk on the hosting fe.
        md.complete_upload(m.clone(), 0);
        assert_eq!(md.chunks_on_frontend(&m, 0).len(), 3);
        // GC on fe 1 unrecords its copies; fe 0's survive.
        md.unrecord_chunk(&m.chunk_digests[0], 1);
        md.unrecord_chunk(&m.chunk_digests[2], 1);
        assert!(md.chunks_on_frontend(&m, 1).is_empty());
        assert_eq!(md.chunks_on_frontend(&m, 0).len(), 3);
        // Unrecording an unknown pair is a no-op, not a panic.
        md.unrecord_chunk(&Digest([1; 16]), 7);
    }

    #[test]
    fn frontend_assignment_deterministic_and_spread() {
        let md = MetadataServer::new(8).unwrap();
        let mut seen = std::collections::HashSet::new();
        for user in 0..200u64 {
            let fe = md.closest_frontend(user);
            assert_eq!(fe, md.closest_frontend(user));
            assert!(fe < 8);
            seen.insert(fe);
        }
        assert!(seen.len() >= 6, "assignment should spread: {seen:?}");
    }
}
