//! File content and chunk manifests.
//!
//! The service splits every file into 512 KB chunks, identifying the file
//! and each chunk by MD5 (§2.1). Reproduction traces move terabytes, so
//! materialising real bytes for every synthetic file would be wasteful:
//! [`Content`] is either real bytes (small test files) or a *synthetic*
//! `(seed, size)` pair whose digests are derived deterministically — two
//! synthetic files share digests iff they share seed and size, preserving
//! exactly the dedup semantics the metadata server needs.

use bytes::Bytes;

use crate::md5::{md5, Digest, Md5};

/// The service's fixed chunk size: 512 KB (§2.1).
pub const CHUNK_SIZE: u64 = 512 * 1024;

/// File content: real bytes or a synthetic content identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// Actual bytes (tests, small files).
    Inline(Bytes),
    /// Synthetic content: identity is `(seed, size)`.
    Synthetic {
        /// Content seed — equal seeds (and sizes) mean equal content.
        seed: u64,
        /// Size in bytes.
        size: u64,
    },
}

impl Content {
    /// Content length in bytes.
    pub fn size(&self) -> u64 {
        match self {
            Content::Inline(b) => b.len() as u64,
            Content::Synthetic { size, .. } => *size,
        }
    }

    /// Whole-file digest.
    pub fn file_digest(&self) -> Digest {
        match self {
            Content::Inline(b) => md5(b),
            Content::Synthetic { seed, size } => {
                let mut h = Md5::new();
                h.update(b"mcs-synthetic-file");
                h.update(&seed.to_le_bytes());
                h.update(&size.to_le_bytes());
                h.finalize()
            }
        }
    }

    /// Digest of chunk `index`.
    pub fn chunk_digest(&self, index: u64) -> Digest {
        match self {
            Content::Inline(b) => {
                let start = (index * CHUNK_SIZE) as usize;
                let end = ((index + 1) * CHUNK_SIZE).min(b.len() as u64) as usize;
                assert!(
                    start < b.len() || (b.is_empty() && index == 0),
                    "chunk index out of range"
                );
                md5(&b[start.min(b.len())..end])
            }
            Content::Synthetic { seed, size } => {
                let mut h = Md5::new();
                h.update(b"mcs-synthetic-chunk");
                h.update(&seed.to_le_bytes());
                h.update(&size.to_le_bytes());
                h.update(&index.to_le_bytes());
                h.finalize()
            }
        }
    }
}

/// Number of chunks in a file of `size` bytes (at least one).
pub fn chunk_count(size: u64) -> u64 {
    if size == 0 {
        1
    } else {
        size.div_ceil(CHUNK_SIZE)
    }
}

/// Size of chunk `index` of a `size`-byte file.
pub fn chunk_size_at(size: u64, index: u64) -> u64 {
    let n = chunk_count(size);
    assert!(index < n, "chunk index out of range");
    if index + 1 < n {
        CHUNK_SIZE
    } else {
        size - (n - 1) * CHUNK_SIZE
    }
}

/// The metadata a client sends in a file-storage operation request (§2.1:
/// name, size, file MD5, chunk count and per-chunk MD5s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileManifest {
    /// File name (path within the user's namespace).
    pub name: String,
    /// File size in bytes.
    pub size: u64,
    /// Whole-file MD5.
    pub file_digest: Digest,
    /// Per-chunk MD5s, in order.
    pub chunk_digests: Vec<Digest>,
}

impl FileManifest {
    /// Builds the manifest a client would compute for `content`.
    pub fn build(name: impl Into<String>, content: &Content) -> Self {
        let size = content.size();
        let n = chunk_count(size);
        Self {
            name: name.into(),
            size,
            file_digest: content.file_digest(),
            chunk_digests: (0..n).map(|i| content.chunk_digest(i)).collect(),
        }
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> u64 {
        self.chunk_digests.len() as u64
    }

    /// Size of chunk `index`.
    pub fn chunk_size(&self, index: u64) -> u64 {
        chunk_size_at(self.size, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_identity() {
        let a = Content::Synthetic { seed: 1, size: 100 };
        let b = Content::Synthetic { seed: 1, size: 100 };
        let c = Content::Synthetic { seed: 2, size: 100 };
        let d = Content::Synthetic { seed: 1, size: 101 };
        assert_eq!(a.file_digest(), b.file_digest());
        assert_ne!(a.file_digest(), c.file_digest());
        assert_ne!(a.file_digest(), d.file_digest());
        assert_eq!(a.chunk_digest(0), b.chunk_digest(0));
        assert_ne!(a.chunk_digest(0), c.chunk_digest(0));
    }

    #[test]
    fn inline_chunking_digests() {
        let data: Vec<u8> = (0..2 * CHUNK_SIZE + 100).map(|i| (i % 251) as u8).collect();
        let c = Content::Inline(Bytes::from(data.clone()));
        assert_eq!(chunk_count(c.size()), 3);
        assert_eq!(
            c.chunk_digest(0),
            md5(&data[..CHUNK_SIZE as usize]),
            "first chunk digest"
        );
        assert_eq!(
            c.chunk_digest(2),
            md5(&data[2 * CHUNK_SIZE as usize..]),
            "final partial chunk digest"
        );
    }

    #[test]
    fn chunk_math() {
        assert_eq!(chunk_count(0), 1);
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(CHUNK_SIZE), 1);
        assert_eq!(chunk_count(CHUNK_SIZE + 1), 2);
        assert_eq!(chunk_size_at(CHUNK_SIZE + 1, 0), CHUNK_SIZE);
        assert_eq!(chunk_size_at(CHUNK_SIZE + 1, 1), 1);
        let total: u64 = (0..chunk_count(3 * CHUNK_SIZE + 77))
            .map(|i| chunk_size_at(3 * CHUNK_SIZE + 77, i))
            .sum();
        assert_eq!(total, 3 * CHUNK_SIZE + 77);
    }

    #[test]
    fn manifest_matches_content() {
        let content = Content::Synthetic {
            seed: 9,
            size: 3 * CHUNK_SIZE + 5,
        };
        let m = FileManifest::build("photos/img1.jpg", &content);
        assert_eq!(m.size, content.size());
        assert_eq!(m.chunk_count(), 4);
        assert_eq!(m.file_digest, content.file_digest());
        assert_eq!(m.chunk_digests[2], content.chunk_digest(2));
        assert_eq!(m.chunk_size(3), 5);
        assert_eq!(m.name, "photos/img1.jpg");
    }

    #[test]
    fn same_content_different_names_same_digest() {
        let content = Content::Synthetic {
            seed: 4,
            size: 1000,
        };
        let a = FileManifest::build("a.jpg", &content);
        let b = FileManifest::build("b.jpg", &content);
        assert_eq!(a.file_digest, b.file_digest);
        assert_ne!(a.name, b.name);
    }
}
