//! Mobile cloud storage service substrate for the IMC'16 reproduction.
//!
//! Section 2.1 of the paper describes the examined service's architecture
//! precisely: metadata servers performing MD5-based file-level
//! deduplication, storage front-end servers moving 512 KB chunks, share
//! URLs, and no delta updates. This crate implements that service, plus the
//! optimisations the paper *proposes* (Table 4), as executable systems:
//!
//! * [`md5`] — RFC 1321 digests from scratch (content identifiers),
//! * [`content`] — chunk manifests over real or synthetic content,
//! * [`metadata`] — the metadata server: namespaces, dedup, share URLs,
//! * [`frontend`] — front-end chunk stores with hourly load accounting,
//! * [`service`] — the clustered façade used by examples and tests, with
//!   fault-aware `try_store`/`try_retrieve` paths (retry, failover,
//!   degraded-mode telemetry) driven by an injected [`mcs_faults::FaultPlan`],
//! * [`transfer`] — the resumable, out-of-order chunk-transfer protocol
//!   (per-chunk MD5 verification, arrival windows, resume-from-partial)
//!   that `try_store_resumable`/`try_retrieve_resumable` drive on an
//!   `mcs-sim` timeline,
//! * [`error`] — the [`ServiceError`] taxonomy those paths return,
//! * [`defer`] — the "smart auto backup" deferred-upload scheduler
//!   (§3.2.2 implication) with peak-load/QoE evaluation,
//! * [`tier`] — f4-style hot/warm tiering and its cost model (Table 4),
//! * [`cache`] — an LRU download cache for the popularity-locality
//!   implication of §3.1.4.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod cache;
pub mod content;
pub mod defer;
pub mod error;
pub mod frontend;
pub mod md5;
pub mod metadata;
pub mod replay;
pub mod service;
pub mod tier;
pub mod transfer;

pub use cache::LruCache;
pub use content::{Content, FileManifest, CHUNK_SIZE};
pub use defer::{evaluate_deferral, DeferPolicy, UploadJob};
pub use error::ServiceError;
pub use frontend::FrontEnd;
pub use md5::{md5 as md5_digest, Digest, Md5};
pub use metadata::{MetadataServer, ShareUrl, StoreDecision, UserId};
pub use replay::{
    replay_trace, replay_trace_faulted, replay_trace_faulted_observed, replay_trace_observed,
    ReplayConfig, ReplayStats,
};
pub use service::{FaultTelemetry, RetrieveOutcome, StorageService, StoreOutcome};
pub use tier::{Tier, TierPolicy, TieredStore};
pub use transfer::{
    run_transfer_attempt, AttemptReport, Channel, ChunkFate, ChunkState, Stall, TransferConfig,
    TransferError, TransferSession, TransferStats,
};
