//! Front-end download cache (the §3.1.4 implication: *"it would be
//! necessary to monitor the popularity of downloads … if a handful of
//! popular files dominate, web cache proxies can reduce server workload"*).
//!
//! A byte-capacity LRU over content digests. Fed with a Zipf-popular
//! download stream (the service's shared-URL usage) it quantifies how much
//! origin traffic a front-end cache absorbs.

use std::collections::HashMap;

use mcs_faults::ConfigError;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that went to the origin.
    pub misses: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes fetched from the origin.
    pub miss_bytes: u64,
    /// Objects evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// Request hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Byte hit ratio (origin-offload).
    pub fn byte_hit_ratio(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / total as f64
        }
    }
}

/// Byte-capacity LRU cache keyed by `u64` content ids.
#[derive(Debug)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    // id -> (bytes, recency stamp)
    entries: HashMap<u64, (u64, u64)>,
    clock: u64,
    /// Counters.
    pub stats: CacheStats,
}

impl LruCache {
    /// Creates a cache holding at most `capacity_bytes`. A zero-byte cache
    /// is a configuration error, not a panic.
    pub fn new(capacity_bytes: u64) -> Result<Self, ConfigError> {
        if capacity_bytes == 0 {
            return Err(ConfigError::OutOfRange {
                what: "cache capacity",
                requirement: "must be positive",
            });
        }
        Ok(Self {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        })
    }

    /// Requests object `id` of `bytes`; returns true on a cache hit.
    /// Misses fetch from the origin and insert (objects larger than the
    /// whole cache bypass it).
    pub fn request(&mut self, id: u64, bytes: u64) -> bool {
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.1 = self.clock;
            self.stats.hits += 1;
            self.stats.hit_bytes += bytes;
            return true;
        }
        self.stats.misses += 1;
        self.stats.miss_bytes += bytes;
        if bytes > self.capacity_bytes {
            return false; // too big to cache
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            self.evict_lru();
        }
        self.entries.insert(id, (bytes, self.clock));
        self.used_bytes += bytes;
        false
    }

    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, &(_, stamp))| stamp)
            .map(|(&id, _)| id)
            // mcs-lint: allow(panic, caller only evicts when non-empty; victim key just read)
            .expect("eviction needed but cache empty");
        let (bytes, _) = self.entries.remove(&victim).expect("present");
        self.used_bytes -= bytes;
        self.stats.evictions += 1;
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Objects currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_stats::rng::{stream_rng, Zipf};

    #[test]
    fn zero_capacity_rejected_not_panicked() {
        assert!(LruCache::new(0).is_err());
    }

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(1000).unwrap();
        assert!(!c.request(1, 100));
        assert!(c.request(1, 100));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(300).unwrap();
        c.request(1, 100);
        c.request(2, 100);
        c.request(3, 100);
        // Touch 1 so 2 becomes LRU.
        c.request(1, 100);
        c.request(4, 100); // evicts 2
        assert!(c.request(1, 100), "1 still cached");
        assert!(!c.request(2, 100), "2 evicted");
        assert!(c.stats.evictions >= 1);
    }

    #[test]
    fn oversized_objects_bypass() {
        let mut c = LruCache::new(100).unwrap();
        assert!(!c.request(1, 500));
        assert!(!c.request(1, 500), "still a miss — never cached");
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_respected() {
        let mut c = LruCache::new(1000).unwrap();
        for id in 0..50 {
            c.request(id, 90);
        }
        assert!(c.used_bytes() <= 1000);
        assert!(c.len() <= 11);
    }

    #[test]
    fn zipf_workload_gets_high_hit_ratio() {
        // 10k requests over 1000 objects, Zipf(1.0): a small cache captures
        // the popular head — the §3.1.4 locality implication.
        let mut rng = stream_rng(42, 0);
        let zipf = Zipf::new(1000, 1.0);
        let object_bytes = 150_000_000u64 / 100; // scaled-down 150 MB clips
        let mut c = LruCache::new(100 * object_bytes).unwrap(); // caches 10 % of objects
        for _ in 0..10_000 {
            let id = zipf.sample(&mut rng) as u64;
            c.request(id, object_bytes);
        }
        let ratio = c.stats.hit_ratio();
        assert!(ratio > 0.5, "hit ratio {ratio}");
        assert!(c.stats.byte_hit_ratio() > 0.5);
    }

    #[test]
    fn uniform_workload_gets_low_hit_ratio() {
        let mut rng = stream_rng(43, 0);
        let mut c = LruCache::new(100_000).unwrap();
        for i in 0..10_000u64 {
            use rand::RngExt;
            let id = (rng.random::<u64>() % 10_000).wrapping_add(i / 10_000);
            c.request(id, 1000);
        }
        assert!(c.stats.hit_ratio() < 0.05, "{}", c.stats.hit_ratio());
    }
}
