//! Storage front-end servers.
//!
//! Front-ends terminate the HTTP chunk requests (§2.1) and are where the
//! paper's logs were collected; they keep a reference-counted chunk store
//! and per-hour load counters (the server-side view of Fig. 1).

use std::collections::HashMap;

use crate::content::FileManifest;
use crate::md5::Digest;

/// Per-chunk bookkeeping in the chunk store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkMeta {
    size: u64,
    refs: u64,
}

/// A storage front-end server.
#[derive(Debug)]
pub struct FrontEnd {
    /// Server index within the cluster.
    pub id: usize,
    chunks: HashMap<Digest, ChunkMeta>,
    /// Bytes received per hour-of-trace (uploads).
    pub upload_load: Vec<f64>,
    /// Bytes served per hour-of-trace (downloads).
    pub download_load: Vec<f64>,
    /// Chunk-storage requests handled.
    pub chunk_puts: u64,
    /// Chunk-retrieval requests handled.
    pub chunk_gets: u64,
    /// Retrieval requests for unknown chunks (consistency violations).
    pub missing_gets: u64,
}

impl FrontEnd {
    /// Creates a front-end covering `horizon_hours` of load accounting.
    pub fn new(id: usize, horizon_hours: usize) -> Self {
        Self {
            id,
            chunks: HashMap::new(),
            upload_load: vec![0.0; horizon_hours.max(1)],
            download_load: vec![0.0; horizon_hours.max(1)],
            chunk_puts: 0,
            chunk_gets: 0,
            missing_gets: 0,
        }
    }

    fn hour(&self, now_ms: u64) -> usize {
        ((now_ms / 3_600_000) as usize).min(self.upload_load.len() - 1)
    }

    /// Stores one chunk (idempotent per digest; refcount grows).
    pub fn put_chunk(&mut self, digest: Digest, size: u64, now_ms: u64) {
        self.chunk_puts += 1;
        let h = self.hour(now_ms);
        self.upload_load[h] += size as f64;
        self.chunks
            .entry(digest)
            .and_modify(|m| m.refs += 1)
            .or_insert(ChunkMeta { size, refs: 1 });
    }

    /// Serves one chunk; returns its size, or `None` if unknown.
    pub fn get_chunk(&mut self, digest: &Digest, now_ms: u64) -> Option<u64> {
        self.chunk_gets += 1;
        match self.chunks.get(digest) {
            Some(m) => {
                let h = self.hour(now_ms);
                self.download_load[h] += m.size as f64;
                Some(m.size)
            }
            None => {
                self.missing_gets += 1;
                None
            }
        }
    }

    /// Ingests all chunks of a manifest (an upload's data phase).
    pub fn put_file(&mut self, manifest: &FileManifest, now_ms: u64) {
        for (i, &d) in manifest.chunk_digests.iter().enumerate() {
            self.put_chunk(d, manifest.chunk_size(i as u64), now_ms);
        }
    }

    /// Serves all chunks of a manifest; returns bytes served.
    pub fn get_file(&mut self, manifest: &FileManifest, now_ms: u64) -> u64 {
        let mut total = 0;
        for d in &manifest.chunk_digests {
            if let Some(sz) = self.get_chunk(d, now_ms) {
                total += sz;
            }
        }
        total
    }

    /// Reclaims the chunks of a manifest (garbage collection of orphaned
    /// content): decrements refcounts and frees chunks that reach zero.
    /// Returns bytes freed.
    pub fn reclaim_file(&mut self, manifest: &FileManifest) -> u64 {
        let mut freed = 0;
        for (i, d) in manifest.chunk_digests.iter().enumerate() {
            if let Some(meta) = self.chunks.get_mut(d) {
                meta.refs = meta.refs.saturating_sub(1);
                if meta.refs == 0 {
                    freed += manifest.chunk_size(i as u64);
                    self.chunks.remove(d);
                }
            }
        }
        freed
    }

    /// Distinct chunks resident.
    pub fn distinct_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Is a chunk with this digest resident? (Used after GC to decide
    /// whether the metadata chunk index should drop its entry.)
    pub fn has_chunk(&self, digest: &Digest) -> bool {
        self.chunks.contains_key(digest)
    }

    /// Bytes of unique chunk data resident.
    pub fn stored_bytes(&self) -> u64 {
        self.chunks.values().map(|m| m.size).sum()
    }

    /// Peak-to-mean ratio of total (up + down) hourly load — the §2.4
    /// over-provisioning factor seen server-side.
    pub fn peak_to_mean_load(&self) -> f64 {
        let totals: Vec<f64> = self
            .upload_load
            .iter()
            .zip(&self.download_load)
            .map(|(u, d)| u + d)
            .collect();
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        let peak = totals.iter().copied().fold(0.0f64, f64::max);
        if mean == 0.0 {
            0.0
        } else {
            peak / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{Content, CHUNK_SIZE};

    fn manifest(seed: u64, size: u64) -> FileManifest {
        FileManifest::build("f", &Content::Synthetic { seed, size })
    }

    #[test]
    fn put_get_round_trip() {
        let mut fe = FrontEnd::new(0, 24);
        let m = manifest(1, 2 * CHUNK_SIZE + 10);
        fe.put_file(&m, 1000);
        assert_eq!(fe.chunk_puts, 3);
        assert_eq!(fe.distinct_chunks(), 3);
        assert_eq!(fe.stored_bytes(), 2 * CHUNK_SIZE + 10);
        let served = fe.get_file(&m, 2000);
        assert_eq!(served, 2 * CHUNK_SIZE + 10);
        assert_eq!(fe.missing_gets, 0);
    }

    #[test]
    fn missing_chunk_recorded() {
        let mut fe = FrontEnd::new(0, 24);
        let m = manifest(2, 100);
        assert_eq!(fe.get_chunk(&m.chunk_digests[0], 0), None);
        assert_eq!(fe.missing_gets, 1);
    }

    #[test]
    fn duplicate_chunks_refcounted_not_duplicated() {
        let mut fe = FrontEnd::new(0, 24);
        let m = manifest(3, CHUNK_SIZE);
        fe.put_file(&m, 0);
        fe.put_file(&m, 0);
        assert_eq!(fe.distinct_chunks(), 1);
        assert_eq!(fe.stored_bytes(), CHUNK_SIZE);
        assert_eq!(fe.chunk_puts, 2);
    }

    #[test]
    fn hourly_load_accounting() {
        let mut fe = FrontEnd::new(0, 3);
        let m = manifest(4, 1000);
        fe.put_file(&m, 30 * 60 * 1000); // hour 0
        fe.put_file(&m, 2 * 3_600_000 + 1); // hour 2
        fe.get_file(&m, 2 * 3_600_000 + 2);
        assert_eq!(fe.upload_load[0], 1000.0);
        assert_eq!(fe.upload_load[1], 0.0);
        assert_eq!(fe.upload_load[2], 1000.0);
        assert_eq!(fe.download_load[2], 1000.0);
        // Beyond-horizon timestamps clamp to the last hour.
        fe.put_file(&m, 99 * 3_600_000);
        assert_eq!(fe.upload_load[2], 2000.0);
    }

    #[test]
    fn peak_to_mean() {
        let mut fe = FrontEnd::new(0, 4);
        let m = manifest(5, 4000);
        fe.put_file(&m, 0);
        assert!(fe.peak_to_mean_load() > 3.9, "{}", fe.peak_to_mean_load());
        let empty = FrontEnd::new(1, 4);
        assert_eq!(empty.peak_to_mean_load(), 0.0);
    }
}
