//! Resumable, out-of-order chunk transfer protocol (ROADMAP item 3).
//!
//! The paper's client moves every file as sequential 512 KB chunks
//! (§2.1); real sync engines (and the sftpx protocol this module is
//! shaped after) make each chunk independently verifiable — chunk id +
//! offset + checksum — so arrival order does not matter and a transfer
//! interrupted anywhere resumes from the verified prefix-set instead of
//! byte zero.
//!
//! Two layers live here:
//!
//! - [`TransferSession`]: a pure per-chunk state machine
//!   (`Pending → InFlight → Verified`, with `Failed` for timed-out or
//!   corrupted sends). Every transition is checked and typed
//!   ([`TransferError`]); verification compares the received chunk's MD5
//!   digest against the [`FileManifest`], and the session finalizes when
//!   the *last* chunk verifies — in whatever order that happens.
//! - [`run_transfer_attempt`]: one transfer attempt driven by the shared
//!   `mcs-sim` event queue. Chunk sends, acks, and timeout detections are
//!   events on the one timeline; a [`Channel`] decides each send's
//!   [`ChunkFate`]. The attempt runs until the session completes or
//!   stalls ([`Stall`]) — a stalled session keeps its verified set, so
//!   the caller can retry later and resend only the missing chunks.
//!
//! Determinism: the engine is single-threaded, all fates come from the
//! caller's [`Channel`] (the service backs it with stateless
//! `mcs-faults` coins), and ties dispatch in insertion order — so a
//! transfer is bit-identical across runs and thread counts.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use mcs_sim::{CompId, Ctx, Handler, Simulation, Time, MS};
use serde::Serialize;

use crate::content::FileManifest;
use crate::md5::Digest;

/// Lifecycle of one chunk inside a [`TransferSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkState {
    /// Not yet sent (or skipped) in this session.
    Pending,
    /// Sent; awaiting ack or timeout.
    InFlight,
    /// Received and checksum-verified (terminal).
    Verified,
    /// A send timed out or failed verification; eligible for re-send.
    Failed,
}

impl fmt::Display for ChunkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Pending => "pending",
            Self::InFlight => "in-flight",
            Self::Verified => "verified",
            Self::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// Typed protocol violations and failures of a [`TransferSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// Chunk index beyond the manifest's chunk count.
    OutOfRange {
        /// The offending index.
        index: u64,
        /// Chunks in the manifest.
        chunks: u64,
    },
    /// The arrival window already holds `window` in-flight chunks.
    WindowFull {
        /// Configured window size.
        window: usize,
    },
    /// The chunk is not in a sendable state (already verified or already
    /// in flight).
    NotSendable {
        /// The offending index.
        index: u64,
        /// Its current state.
        state: ChunkState,
    },
    /// An ack/timeout arrived for a chunk that was never in flight.
    NotInFlight {
        /// The offending index.
        index: u64,
        /// Its current state.
        state: ChunkState,
    },
    /// The received chunk's MD5 digest does not match the manifest.
    ChecksumMismatch {
        /// The corrupted chunk.
        index: u64,
    },
    /// Finalize was requested before every chunk verified.
    Incomplete {
        /// Chunks verified so far.
        verified: u64,
        /// Chunks in the manifest.
        chunks: u64,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfRange { index, chunks } => {
                write!(f, "chunk {index} out of range (manifest has {chunks})")
            }
            Self::WindowFull { window } => {
                write!(f, "arrival window full ({window} chunks in flight)")
            }
            Self::NotSendable { index, state } => {
                write!(f, "chunk {index} is {state}, not sendable")
            }
            Self::NotInFlight { index, state } => {
                write!(f, "chunk {index} is {state}, not in flight")
            }
            Self::ChecksumMismatch { index } => {
                write!(f, "chunk {index} failed MD5 verification")
            }
            Self::Incomplete { verified, chunks } => {
                write!(
                    f,
                    "transfer incomplete: {verified}/{chunks} chunks verified"
                )
            }
        }
    }
}

impl Error for TransferError {}

/// Per-chunk transfer state machine over one [`FileManifest`].
///
/// The session never touches bytes: callers move chunk data, the session
/// tracks which chunks are proven present (digest match against the
/// manifest) and bounds concurrency with an arrival window. It survives
/// interruption — [`TransferSession::verified_set`] is the partial
/// manifest a resume needs, and [`TransferSession::resume`] rebuilds a
/// session around it.
#[derive(Debug, Clone)]
pub struct TransferSession {
    manifest: FileManifest,
    states: Vec<ChunkState>,
    /// Lifetime send count per chunk (across resumes of this session
    /// object); send ordinals key the channel's per-send fault coins.
    sends: Vec<u32>,
    window: usize,
    in_flight: usize,
    verified: u64,
    verified_bytes: u64,
}

impl TransferSession {
    /// A fresh session: every chunk pending, arrival window `window`
    /// (clamped to at least 1).
    pub fn new(manifest: FileManifest, window: usize) -> Self {
        let chunks = manifest.chunk_count() as usize;
        Self {
            manifest,
            states: vec![ChunkState::Pending; chunks],
            sends: vec![0; chunks],
            window: window.max(1),
            in_flight: 0,
            verified: 0,
            verified_bytes: 0,
        }
    }

    /// Rebuilds a session from a persisted partial transfer: every chunk
    /// index in `verified` (out-of-range entries are ignored) starts in
    /// `Verified`, the rest pending.
    pub fn resume(manifest: FileManifest, verified: &BTreeSet<u64>, window: usize) -> Self {
        let mut s = Self::new(manifest, window);
        for &i in verified {
            let _ = s.skip_verified(i);
        }
        s
    }

    /// The manifest this session transfers.
    pub fn manifest(&self) -> &FileManifest {
        &self.manifest
    }

    /// Chunks in the manifest.
    pub fn chunk_count(&self) -> u64 {
        self.manifest.chunk_count()
    }

    /// Configured arrival-window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The state of chunk `index`, if in range.
    pub fn state(&self, index: u64) -> Option<ChunkState> {
        self.states.get(index as usize).copied()
    }

    /// Chunks currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Can another chunk enter the arrival window?
    pub fn window_free(&self) -> bool {
        self.in_flight < self.window
    }

    /// Lowest-indexed chunk eligible for (re-)send, if any.
    pub fn next_pending(&self) -> Option<u64> {
        self.states
            .iter()
            .position(|s| matches!(s, ChunkState::Pending | ChunkState::Failed))
            .map(|i| i as u64)
    }

    /// Times chunk `index` has entered the channel over the session's
    /// lifetime.
    pub fn send_count(&self, index: u64) -> u32 {
        self.sends.get(index as usize).copied().unwrap_or(0)
    }

    /// Moves a pending/failed chunk into the arrival window and returns
    /// its lifetime send ordinal (1-based).
    pub fn begin(&mut self, index: u64) -> Result<u32, TransferError> {
        let chunks = self.chunk_count();
        let Some(state) = self.states.get_mut(index as usize) else {
            return Err(TransferError::OutOfRange { index, chunks });
        };
        match *state {
            ChunkState::Pending | ChunkState::Failed => {
                if self.in_flight >= self.window {
                    return Err(TransferError::WindowFull {
                        window: self.window,
                    });
                }
                *state = ChunkState::InFlight;
                self.in_flight += 1;
                let n = self.sends[index as usize].saturating_add(1);
                self.sends[index as usize] = n;
                Ok(n)
            }
            s => Err(TransferError::NotSendable { index, state: s }),
        }
    }

    /// Verifies an arrived chunk against the manifest digest. On match the
    /// chunk becomes `Verified` and the call reports whether it was the
    /// last one (`Ok(true)` = session complete). On mismatch the chunk
    /// becomes `Failed` (eligible for re-send) and the error is returned.
    pub fn verify(&mut self, index: u64, digest: Digest) -> Result<bool, TransferError> {
        let chunks = self.chunk_count();
        let Some(state) = self.states.get_mut(index as usize) else {
            return Err(TransferError::OutOfRange { index, chunks });
        };
        if *state != ChunkState::InFlight {
            return Err(TransferError::NotInFlight {
                index,
                state: *state,
            });
        }
        self.in_flight -= 1;
        if self.manifest.chunk_digests[index as usize] != digest {
            *state = ChunkState::Failed;
            return Err(TransferError::ChecksumMismatch { index });
        }
        *state = ChunkState::Verified;
        self.verified += 1;
        self.verified_bytes = self
            .verified_bytes
            .saturating_add(self.manifest.chunk_size(index));
        Ok(self.is_complete())
    }

    /// Marks an in-flight chunk failed (send timed out / connection lost).
    pub fn fail(&mut self, index: u64) -> Result<(), TransferError> {
        let chunks = self.chunk_count();
        let Some(state) = self.states.get_mut(index as usize) else {
            return Err(TransferError::OutOfRange { index, chunks });
        };
        if *state != ChunkState::InFlight {
            return Err(TransferError::NotInFlight {
                index,
                state: *state,
            });
        }
        *state = ChunkState::Failed;
        self.in_flight -= 1;
        Ok(())
    }

    /// Rolls back a reservation whose send never entered the channel
    /// (attempt tear-down after a stall): the chunk returns to `Pending`,
    /// its lifetime send ordinal is given back, and the window slot frees.
    pub fn cancel(&mut self, index: u64) -> Result<(), TransferError> {
        let chunks = self.chunk_count();
        let Some(state) = self.states.get_mut(index as usize) else {
            return Err(TransferError::OutOfRange { index, chunks });
        };
        if *state != ChunkState::InFlight {
            return Err(TransferError::NotInFlight {
                index,
                state: *state,
            });
        }
        *state = ChunkState::Pending;
        self.sends[index as usize] = self.sends[index as usize].saturating_sub(1);
        self.in_flight -= 1;
        Ok(())
    }

    /// Marks a pending/failed chunk verified *without* transferring it —
    /// the dedup path: the target already holds a checksummed copy (by
    /// chunk-index lookup), so sending it would be wasted bytes.
    pub fn skip_verified(&mut self, index: u64) -> Result<(), TransferError> {
        let chunks = self.chunk_count();
        let Some(state) = self.states.get_mut(index as usize) else {
            return Err(TransferError::OutOfRange { index, chunks });
        };
        match *state {
            ChunkState::Pending | ChunkState::Failed => {
                *state = ChunkState::Verified;
                self.verified += 1;
                self.verified_bytes = self
                    .verified_bytes
                    .saturating_add(self.manifest.chunk_size(index));
                Ok(())
            }
            s => Err(TransferError::NotSendable { index, state: s }),
        }
    }

    /// Fails every in-flight chunk (connection teardown on a stall) and
    /// returns how many were aborted. Verified chunks are untouched.
    pub fn abort_in_flight(&mut self) -> u64 {
        let mut aborted = 0;
        for state in &mut self.states {
            if *state == ChunkState::InFlight {
                *state = ChunkState::Failed;
                aborted += 1;
            }
        }
        self.in_flight = 0;
        aborted
    }

    /// Has every chunk verified?
    pub fn is_complete(&self) -> bool {
        self.verified == self.chunk_count()
    }

    /// Chunks verified so far.
    pub fn verified_count(&self) -> u64 {
        self.verified
    }

    /// Bytes covered by verified chunks.
    pub fn bytes_verified(&self) -> u64 {
        self.verified_bytes
    }

    /// Indices not yet verified, ascending — what a resume must move.
    pub fn missing(&self) -> Vec<u64> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != ChunkState::Verified)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// The persisted form of a partial transfer: indices verified so far.
    pub fn verified_set(&self) -> BTreeSet<u64> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ChunkState::Verified)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// The manifest, released only once every chunk has verified —
    /// finalize-on-last-verified-chunk.
    pub fn finalize(&self) -> Result<&FileManifest, TransferError> {
        if self.is_complete() {
            Ok(&self.manifest)
        } else {
            Err(TransferError::Incomplete {
                verified: self.verified,
                chunks: self.chunk_count(),
            })
        }
    }
}

/// What the channel did with one chunk send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChunkFate {
    /// Chunk arrives intact; the ack lands `ack_after_ms` later.
    Deliver {
        /// Round-trip delay until the sender sees the ack.
        ack_after_ms: u64,
    },
    /// Chunk (or its ack) is lost; the sender declares a timeout
    /// `detect_after_ms` later and may re-send.
    Timeout {
        /// Timeout-detection delay (the retransmission timer).
        detect_after_ms: u64,
    },
    /// The peer is unreachable: the whole attempt stalls immediately.
    Down,
}

/// Decides the fate of each chunk send. Implemented by the storage
/// service over its `mcs-faults` plan; closures work too, which keeps
/// scripted tests terse.
pub trait Channel {
    /// Fate of the `send`-th transmission (1-based, session lifetime) of
    /// `chunk` entering the channel at `now_ms`.
    fn send(&mut self, chunk: u64, send: u32, now_ms: u64) -> ChunkFate;
}

impl<F: FnMut(u64, u32, u64) -> ChunkFate> Channel for F {
    fn send(&mut self, chunk: u64, send: u32, now_ms: u64) -> ChunkFate {
        self(chunk, send, now_ms)
    }
}

/// Knobs of one transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferConfig {
    /// Arrival-window size: chunks allowed in flight at once.
    pub window: usize,
    /// Sends allowed per chunk within one attempt before the attempt
    /// stalls with [`Stall::ChunkBudget`].
    pub max_chunk_sends: u32,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            window: 8,
            max_chunk_sends: 4,
        }
    }
}

/// Why an attempt stopped short of completion.
///
/// A stall is not an instant teardown: sends whose fate the channel
/// already decided drain to their acks or timeout detections (verified
/// chunks count), while reservations that never entered the channel are
/// rolled back. Only *new* sends stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stall {
    /// The channel reported the peer down.
    FrontendDown {
        /// Timeline instant of the failed send.
        at_ms: u64,
    },
    /// One chunk exhausted its per-attempt send budget.
    ChunkBudget {
        /// The chunk that ran out of sends.
        chunk: u64,
        /// Its lifetime send count at the stall.
        sends: u32,
    },
}

/// Byte-accurate accounting of one [`run_transfer_attempt`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttemptReport {
    /// `(chunk, verified_at_ms)` in verification (ack) order — the order
    /// the target should apply chunk writes.
    pub verified: Vec<(u64, u64)>,
    /// Chunk sends that entered the channel.
    pub chunks_sent: u64,
    /// Sends of chunks already sent before (session lifetime) — the
    /// retry-inflated share of `chunks_sent`.
    pub chunks_resent: u64,
    /// Bytes across all sends.
    pub bytes_sent: u64,
    /// Bytes across re-sends only.
    pub bytes_resent: u64,
    /// Timeout detections.
    pub timeouts: u64,
    /// Acked chunks whose digest did not match the manifest.
    pub checksum_failures: u64,
    /// Timeline instant the attempt ended (completion or stall).
    pub end_ms: u64,
    /// Why the attempt stopped, if it did not complete the session.
    pub stall: Option<Stall>,
}

/// Events on the transfer timeline.
#[derive(Debug, Clone, Copy)]
enum TransferEvent {
    /// A chunk transmission enters the channel.
    Send { chunk: u64 },
    /// The sender sees the ack for a delivered chunk.
    Ack { chunk: u64 },
    /// The retransmission timer fires for a lost chunk.
    Timeout { chunk: u64 },
}

struct AttemptHandler<'a, C, D> {
    session: &'a mut TransferSession,
    channel: &'a mut C,
    digest_of: &'a D,
    cfg: &'a TransferConfig,
    report: AttemptReport,
    /// Sends per chunk within *this* attempt (the stall budget; resumes
    /// start fresh). Only sends that actually entered the channel count.
    attempt_sends: Vec<u32>,
    /// Set on the first stall: no new sends, pending fates drain, unsent
    /// reservations are rolled back as their events surface.
    stalled: bool,
    client: CompId,
    server: CompId,
}

impl<C: Channel, D: Fn(u64) -> Digest> AttemptHandler<'_, C, D> {
    /// Reserves a window slot for `chunk` and schedules its send at `at`.
    fn send_chunk(&mut self, ctx: &mut Ctx<'_, TransferEvent>, chunk: u64, at: Time) -> bool {
        match self.session.begin(chunk) {
            Ok(_) => {
                ctx.schedule(at, self.server, TransferEvent::Send { chunk });
                true
            }
            Err(_) => {
                debug_assert!(false, "scheduler offered an unsendable chunk {chunk}");
                false
            }
        }
    }

    /// Fills the arrival window with the lowest-indexed eligible chunks.
    fn pump(&mut self, ctx: &mut Ctx<'_, TransferEvent>, at: Time) {
        while self.session.window_free() {
            let Some(next) = self.session.next_pending() else {
                break;
            };
            if !self.send_chunk(ctx, next, at) {
                break;
            }
        }
    }

    /// Books one send that entered the channel.
    fn book_send(&mut self, chunk: u64, send: u32) {
        self.attempt_sends[chunk as usize] = self.attempt_sends[chunk as usize].saturating_add(1);
        let size = self.session.manifest().chunk_size(chunk);
        self.report.chunks_sent += 1;
        self.report.bytes_sent = self.report.bytes_sent.saturating_add(size);
        if send > 1 {
            self.report.chunks_resent += 1;
            self.report.bytes_resent = self.report.bytes_resent.saturating_add(size);
        }
    }

    /// Gives back a reservation whose send never entered the channel.
    fn roll_back(&mut self, chunk: u64) {
        let canceled = self.session.cancel(chunk);
        debug_assert!(canceled.is_ok(), "tear-down of a chunk not in flight");
    }

    /// Re-send within the per-attempt budget, else stall.
    fn resend_or_stall(&mut self, ctx: &mut Ctx<'_, TransferEvent>, chunk: u64) {
        if self.attempt_sends[chunk as usize] >= self.cfg.max_chunk_sends {
            self.stalled = true;
            self.report.stall = Some(Stall::ChunkBudget {
                chunk,
                sends: self.session.send_count(chunk),
            });
        } else {
            self.send_chunk(ctx, chunk, ctx.now());
        }
    }
}

impl<C: Channel, D: Fn(u64) -> Digest> Handler<TransferEvent> for AttemptHandler<'_, C, D> {
    fn handle(&mut self, ctx: &mut Ctx<'_, TransferEvent>, event: TransferEvent) {
        match event {
            TransferEvent::Send { chunk } => {
                if self.stalled {
                    self.roll_back(chunk);
                    return;
                }
                let send = self.session.send_count(chunk);
                match self.channel.send(chunk, send, ctx.now_ms()) {
                    ChunkFate::Deliver { ack_after_ms } => {
                        self.book_send(chunk, send);
                        let at = ctx.now().saturating_add(ack_after_ms.saturating_mul(MS));
                        ctx.schedule(at, self.client, TransferEvent::Ack { chunk });
                    }
                    ChunkFate::Timeout { detect_after_ms } => {
                        self.book_send(chunk, send);
                        let at = ctx.now().saturating_add(detect_after_ms.saturating_mul(MS));
                        ctx.schedule(at, self.client, TransferEvent::Timeout { chunk });
                    }
                    ChunkFate::Down => {
                        // Connection refused: no bytes moved. Drain what
                        // is already airborne, send nothing new.
                        self.stalled = true;
                        self.report.stall = Some(Stall::FrontendDown {
                            at_ms: ctx.now_ms(),
                        });
                        self.roll_back(chunk);
                    }
                }
            }
            TransferEvent::Timeout { chunk } => {
                self.report.timeouts += 1;
                let failed = self.session.fail(chunk);
                debug_assert!(failed.is_ok(), "timeout for a chunk not in flight");
                if !self.stalled {
                    self.resend_or_stall(ctx, chunk);
                }
            }
            TransferEvent::Ack { chunk } => {
                let digest = (self.digest_of)(chunk);
                match self.session.verify(chunk, digest) {
                    Ok(done) => {
                        self.report.verified.push((chunk, ctx.now_ms()));
                        if done {
                            ctx.halt();
                        } else if !self.stalled {
                            self.pump(ctx, ctx.now());
                        }
                    }
                    Err(_) => {
                        // verify() already moved the chunk to Failed; a
                        // corrupted arrival costs a re-send like a timeout.
                        self.report.checksum_failures += 1;
                        if !self.stalled {
                            self.resend_or_stall(ctx, chunk);
                        }
                    }
                }
            }
        }
    }
}

/// Runs one transfer attempt on a fresh `mcs-sim` timeline starting at
/// `start_ms`: window-bounded out-of-order sends, fates from `channel`,
/// per-chunk verification against `digest_of`. Returns when the session
/// completes or stalls; the session keeps its verified set either way, so
/// a later attempt resumes with only the missing chunks.
pub fn run_transfer_attempt<C: Channel, D: Fn(u64) -> Digest>(
    session: &mut TransferSession,
    channel: &mut C,
    digest_of: D,
    cfg: &TransferConfig,
    start_ms: u64,
) -> AttemptReport {
    let mut report = AttemptReport {
        end_ms: start_ms,
        ..AttemptReport::default()
    };
    if session.is_complete() {
        return report;
    }
    let mut sim = Simulation::new();
    let client = sim.add_component("transfer/client");
    let server = sim.add_component("transfer/server");
    let chunks = session.chunk_count() as usize;
    let mut handler = AttemptHandler {
        session,
        channel,
        digest_of: &digest_of,
        cfg,
        report,
        attempt_sends: vec![0; chunks],
        stalled: false,
        client,
        server,
    };
    let start_us = start_ms.saturating_mul(MS);
    {
        let mut ctx = sim.ctx(client);
        handler.pump(&mut ctx, start_us);
    }
    sim.run(&mut handler);
    report = handler.report;
    report.end_ms = report.end_ms.max(sim.now_ms());
    report
}

/// Mergeable roll-up of transfer activity: the materialised view the
/// service exposes over its `transfer.*` registry counters, and the
/// monoid shard reducers sum when fleet replays are split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TransferStats {
    /// Transfer sessions opened.
    pub sessions: u64,
    /// Attempts that began with partial progress already verified.
    pub resumed_sessions: u64,
    /// Chunk sends that entered a channel.
    pub chunks_sent: u64,
    /// Chunk re-sends (retry-inflated share of `chunks_sent`).
    pub chunks_resent: u64,
    /// Chunks skipped via the metadata chunk index (dedup).
    pub chunks_deduped: u64,
    /// Bytes resumes did not re-send that whole-file retries would have.
    pub resume_saved_bytes: u64,
}

impl TransferStats {
    /// Field-wise sum: `a.merge(b)` then `a.merge(c)` equals merging in
    /// any order (u64 counter monoid).
    pub fn merge(&mut self, other: &Self) {
        self.sessions += other.sessions;
        self.resumed_sessions += other.resumed_sessions;
        self.chunks_sent += other.chunks_sent;
        self.chunks_resent += other.chunks_resent;
        self.chunks_deduped += other.chunks_deduped;
        self.resume_saved_bytes += other.resume_saved_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{Content, CHUNK_SIZE};

    fn manifest(chunks: u64) -> FileManifest {
        // A synthetic file spanning `chunks` chunks, last one partial.
        let size = CHUNK_SIZE
            .saturating_mul(chunks.saturating_sub(1))
            .saturating_add(CHUNK_SIZE / 2)
            .max(1);
        FileManifest::build("xfer/test", &Content::Synthetic { seed: 9, size })
    }

    fn true_digests(m: &FileManifest) -> impl Fn(u64) -> Digest + '_ {
        move |i| m.chunk_digests[i as usize]
    }

    #[test]
    fn fair_channel_completes_in_order_at_start_time() {
        let m = manifest(5);
        let mut s = TransferSession::new(m.clone(), 3);
        let mut fair = |_c: u64, _s: u32, _t: u64| ChunkFate::Deliver { ack_after_ms: 0 };
        let r = run_transfer_attempt(
            &mut s,
            &mut fair,
            true_digests(&m),
            &TransferConfig::default(),
            42,
        );
        assert!(s.is_complete());
        assert!(r.stall.is_none());
        assert_eq!(r.chunks_sent, 5);
        assert_eq!(r.chunks_resent, 0);
        assert_eq!(r.bytes_sent, m.size);
        assert_eq!(r.end_ms, 42);
        // Zero-delay acks verify in index order at the start instant.
        let order: Vec<u64> = r.verified.iter().map(|&(c, _)| c).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(r.verified.iter().all(|&(_, at)| at == 42));
        assert_eq!(s.finalize().unwrap().file_digest, m.file_digest);
    }

    #[test]
    fn out_of_order_acks_still_finalize_on_last_verified_chunk() {
        let m = manifest(6);
        let mut s = TransferSession::new(m.clone(), 6);
        // Earlier chunks take longer: acks land in reverse index order.
        let mut skewed = |c: u64, _s: u32, _t: u64| ChunkFate::Deliver {
            ack_after_ms: 60 - c * 10,
        };
        let r = run_transfer_attempt(
            &mut s,
            &mut skewed,
            true_digests(&m),
            &TransferConfig::default(),
            0,
        );
        assert!(s.is_complete());
        let order: Vec<u64> = r.verified.iter().map(|&(c, _)| c).collect();
        assert_eq!(order, vec![5, 4, 3, 2, 1, 0], "arrival order is ack order");
        // The session finalized when chunk 0 (the *last* to verify) landed.
        assert_eq!(r.end_ms, 60);
    }

    #[test]
    fn lossy_channel_resends_within_budget() {
        let m = manifest(4);
        let mut s = TransferSession::new(m.clone(), 2);
        // First send of every chunk is lost; re-sends deliver.
        let mut lossy = |_c: u64, send: u32, _t: u64| {
            if send == 1 {
                ChunkFate::Timeout { detect_after_ms: 5 }
            } else {
                ChunkFate::Deliver { ack_after_ms: 0 }
            }
        };
        let r = run_transfer_attempt(
            &mut s,
            &mut lossy,
            true_digests(&m),
            &TransferConfig::default(),
            0,
        );
        assert!(s.is_complete());
        assert_eq!(r.timeouts, 4);
        assert_eq!(r.chunks_sent, 8);
        assert_eq!(r.chunks_resent, 4);
        assert_eq!(r.bytes_resent, m.size);
    }

    #[test]
    fn chunk_budget_exhaustion_stalls_with_partial_progress() {
        let m = manifest(3);
        let mut s = TransferSession::new(m.clone(), 1);
        // Chunk 1 never gets through; chunk 0 delivers first (window 1).
        let mut brown = |c: u64, _s: u32, _t: u64| {
            if c == 1 {
                ChunkFate::Timeout { detect_after_ms: 1 }
            } else {
                ChunkFate::Deliver { ack_after_ms: 0 }
            }
        };
        let cfg = TransferConfig {
            window: 1,
            max_chunk_sends: 3,
        };
        let r = run_transfer_attempt(&mut s, &mut brown, true_digests(&m), &cfg, 0);
        assert_eq!(r.stall, Some(Stall::ChunkBudget { chunk: 1, sends: 3 }));
        assert_eq!(r.timeouts, 3);
        assert_eq!(s.verified_set().into_iter().collect::<Vec<_>>(), vec![0]);
        assert!(s.finalize().is_err());
    }

    #[test]
    fn down_channel_stalls_and_resume_sends_only_missing_chunks() {
        let m = manifest(8);
        let mut s = TransferSession::new(m.clone(), 4);
        // The peer vanishes after three acks.
        let mut acked = 0u64;
        let mut flaky = |_c: u64, _s: u32, _t: u64| {
            if acked < 3 {
                acked += 1;
                ChunkFate::Deliver { ack_after_ms: 1 }
            } else {
                ChunkFate::Down
            }
        };
        let cfg = TransferConfig::default();
        let r1 = run_transfer_attempt(&mut s, &mut flaky, true_digests(&m), &cfg, 100);
        assert!(matches!(r1.stall, Some(Stall::FrontendDown { .. })));
        let done = s.verified_set();
        assert_eq!(done.len(), 3);
        assert!(s.in_flight() == 0, "stall must tear down the window");

        // Persist + resume: a brand-new session from the verified set.
        let mut resumed = TransferSession::resume(m.clone(), &done, 4);
        assert_eq!(resumed.bytes_verified(), s.bytes_verified());
        let mut fair = |_c: u64, _s: u32, _t: u64| ChunkFate::Deliver { ack_after_ms: 0 };
        let r2 = run_transfer_attempt(&mut resumed, &mut fair, true_digests(&m), &cfg, 500);
        assert!(resumed.is_complete());
        assert_eq!(
            r2.chunks_sent,
            8 - 3,
            "resume moves only the missing chunks"
        );
        let resent: BTreeSet<u64> = r2.verified.iter().map(|&(c, _)| c).collect();
        let missing: BTreeSet<u64> = (0..8).filter(|i| !done.contains(i)).collect();
        assert_eq!(resent, missing);
        assert_eq!(
            resumed.bytes_verified(),
            m.size,
            "resumed file covers every byte exactly once"
        );
    }

    #[test]
    fn interrupt_at_every_chunk_boundary_resumes_byte_identical() {
        // Exhaustive sweep (deterministic "proptest"): interrupt after k
        // acks for every k and several windows; the resumed session must
        // finish with the manifest's exact digest set and send each
        // missing chunk exactly once.
        let m = manifest(7);
        let cfg = TransferConfig::default();
        for window in [1usize, 3, 8] {
            for k in 0..=7u64 {
                let mut s = TransferSession::new(m.clone(), window);
                let mut acked = 0u64;
                let mut cut = |_c: u64, _s: u32, _t: u64| {
                    if acked < k {
                        acked += 1;
                        ChunkFate::Deliver { ack_after_ms: 0 }
                    } else {
                        ChunkFate::Down
                    }
                };
                let r1 = run_transfer_attempt(&mut s, &mut cut, true_digests(&m), &cfg, 0);
                if k >= 7 {
                    assert!(s.is_complete(), "k={k} w={window}");
                    continue;
                }
                assert!(matches!(r1.stall, Some(Stall::FrontendDown { .. })));
                assert_eq!(s.verified_count(), k, "k={k} w={window}");
                let mut resumed = TransferSession::resume(m.clone(), &s.verified_set(), window);
                let mut fair = |_c: u64, _s: u32, _t: u64| ChunkFate::Deliver { ack_after_ms: 0 };
                let r2 = run_transfer_attempt(&mut resumed, &mut fair, true_digests(&m), &cfg, 0);
                assert!(resumed.is_complete(), "k={k} w={window}");
                assert_eq!(r2.chunks_sent, 7 - k, "k={k} w={window}");
                assert_eq!(r2.chunks_resent, 0, "fresh session: no lifetime re-sends");
                assert_eq!(resumed.finalize().unwrap(), &m);
            }
        }
    }

    #[test]
    fn checksum_mismatch_marks_failed_and_resend_recovers() {
        let m = manifest(2);
        let mut s = TransferSession::new(m.clone(), 2);
        assert_eq!(s.begin(0), Ok(1));
        let bogus = Digest([0xAB; 16]);
        assert_eq!(
            s.verify(0, bogus),
            Err(TransferError::ChecksumMismatch { index: 0 })
        );
        assert_eq!(s.state(0), Some(ChunkState::Failed));
        // The corrupted chunk re-enters the window and verifies cleanly.
        assert_eq!(s.begin(0), Ok(2));
        assert_eq!(s.verify(0, m.chunk_digests[0]), Ok(false));
        assert_eq!(s.begin(1), Ok(1));
        assert_eq!(s.verify(1, m.chunk_digests[1]), Ok(true));
        assert!(s.is_complete());
    }

    #[test]
    fn engine_retries_corrupted_arrivals() {
        let m = manifest(3);
        let mut s = TransferSession::new(m.clone(), 3);
        let mut fair = |_c: u64, _s: u32, _t: u64| ChunkFate::Deliver { ack_after_ms: 0 };
        // First arrival of chunk 1 is corrupted on the wire (digest_of is
        // Fn, so the one-shot corruption lives in a Cell).
        let flipped = std::cell::Cell::new(false);
        let digest_of = |i: u64| {
            if i == 1 && !flipped.replace(true) {
                Digest([0u8; 16])
            } else {
                m.chunk_digests[i as usize]
            }
        };
        let r = run_transfer_attempt(&mut s, &mut fair, digest_of, &TransferConfig::default(), 0);
        assert!(s.is_complete());
        assert_eq!(r.checksum_failures, 1);
        assert_eq!(r.chunks_resent, 1, "the corrupted chunk went twice");
    }

    #[test]
    fn window_bounds_in_flight_and_protocol_errors_are_typed() {
        let m = manifest(4);
        let mut s = TransferSession::new(m.clone(), 2);
        assert_eq!(s.begin(0), Ok(1));
        assert_eq!(s.begin(1), Ok(1));
        assert_eq!(s.begin(2), Err(TransferError::WindowFull { window: 2 }));
        assert_eq!(
            s.begin(0),
            Err(TransferError::NotSendable {
                index: 0,
                state: ChunkState::InFlight
            })
        );
        assert_eq!(
            s.begin(99),
            Err(TransferError::OutOfRange {
                index: 99,
                chunks: 4
            })
        );
        assert_eq!(
            s.verify(2, m.chunk_digests[2]),
            Err(TransferError::NotInFlight {
                index: 2,
                state: ChunkState::Pending
            })
        );
        assert_eq!(
            s.finalize(),
            Err(TransferError::Incomplete {
                verified: 0,
                chunks: 4
            })
        );
        // Errors render for operators.
        assert!(TransferError::WindowFull { window: 2 }
            .to_string()
            .contains("window"));
    }

    #[test]
    fn dedup_skip_counts_bytes_once_and_rejects_in_flight() {
        let m = manifest(3);
        let mut s = TransferSession::new(m.clone(), 3);
        s.skip_verified(1).unwrap();
        assert_eq!(s.bytes_verified(), m.chunk_size(1));
        assert_eq!(
            s.skip_verified(1),
            Err(TransferError::NotSendable {
                index: 1,
                state: ChunkState::Verified
            })
        );
        assert_eq!(s.begin(0), Ok(1));
        assert_eq!(
            s.skip_verified(0),
            Err(TransferError::NotSendable {
                index: 0,
                state: ChunkState::InFlight
            })
        );
        assert_eq!(s.missing(), vec![0, 2]);
    }

    #[test]
    fn attempts_are_deterministic_across_runs() {
        let m = manifest(9);
        let cfg = TransferConfig::default();
        let run = || {
            let mut s = TransferSession::new(m.clone(), 4);
            // Deterministic mixed fates keyed only on (chunk, send).
            let mut chan = |c: u64, send: u32, _t: u64| {
                if (c + send as u64).is_multiple_of(3) {
                    ChunkFate::Timeout {
                        detect_after_ms: 7 + c,
                    }
                } else {
                    ChunkFate::Deliver {
                        ack_after_ms: c % 4,
                    }
                }
            };
            let r = run_transfer_attempt(&mut s, &mut chan, true_digests(&m), &cfg, 1000);
            (r, s.verified_set())
        };
        let (r1, v1) = run();
        let (r2, v2) = run();
        assert_eq!(r1, r2, "same channel, same timeline, same report");
        assert_eq!(v1, v2);
    }

    #[test]
    fn single_and_empty_chunk_files_transfer() {
        for size in [0u64, 1, CHUNK_SIZE] {
            let m = FileManifest::build("tiny", &Content::Synthetic { seed: 1, size });
            assert_eq!(m.chunk_count(), 1);
            let mut s = TransferSession::new(m.clone(), 8);
            let mut fair = |_c: u64, _s: u32, _t: u64| ChunkFate::Deliver { ack_after_ms: 0 };
            let r = run_transfer_attempt(
                &mut s,
                &mut fair,
                true_digests(&m),
                &TransferConfig::default(),
                0,
            );
            assert!(s.is_complete(), "size {size}");
            assert_eq!(r.chunks_sent, 1);
            assert_eq!(r.bytes_sent, m.size);
        }
    }

    #[test]
    fn transfer_stats_merge_law_is_field_wise_sum() {
        // Merge law for the TransferStats shard monoid: order-free,
        // identity-preserving.
        let a = TransferStats {
            sessions: 3,
            resumed_sessions: 1,
            chunks_sent: 40,
            chunks_resent: 5,
            chunks_deduped: 2,
            resume_saved_bytes: 1 << 20,
        };
        let b = TransferStats {
            sessions: 2,
            resumed_sessions: 2,
            chunks_sent: 10,
            chunks_resent: 1,
            chunks_deduped: 0,
            resume_saved_bytes: 512,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab.chunks_sent, 50);
        let mut id = a;
        id.merge(&TransferStats::default());
        assert_eq!(id, a, "default is the identity");
    }
}
