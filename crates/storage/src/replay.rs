//! Replay a synthetic trace through the storage service.
//!
//! Bridges `mcs-trace` and the service substrate: every planned store
//! becomes a real `store()` (with content identity, so duplicates
//! deduplicate), every planned retrieval a real `retrieve()`. This is how
//! the workload-level findings (§2.4 load, §3.2 usage) exercise the §2.1
//! system end to end.

use rand::RngExt;
use serde::Serialize;

use mcs_stats::rng::stream_rng;
use mcs_trace::{Direction, TraceGenerator};

use crate::content::Content;
use crate::service::StorageService;

/// Knobs for the replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReplayConfig {
    /// Number of front-end servers.
    pub frontends: usize,
    /// Probability that an upload is a duplicate of shared popular content
    /// (the same video forwarded around — what makes the §2.1 dedup pay).
    pub duplicate_prob: f64,
    /// Size of the popular-content pool duplicates are drawn from.
    pub popular_pool: u64,
    /// RNG seed for duplicate selection.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            frontends: 8,
            duplicate_prob: 0.03,
            popular_pool: 64,
            seed: 7,
        }
    }
}

/// Replay outcome summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ReplayStats {
    /// Files stored.
    pub stores: u64,
    /// Files retrieved.
    pub retrieves: u64,
    /// Bytes actually uploaded (after dedup).
    pub bytes_uploaded: u64,
    /// Bytes the dedup avoided uploading.
    pub bytes_deduplicated: u64,
    /// Bytes served on retrievals.
    pub bytes_downloaded: u64,
    /// Retrievals that failed to resolve (should be zero).
    pub retrieve_misses: u64,
}

/// Deterministic size of a popular-pool object (photo- to clip-sized).
fn popular_size(seed: u64) -> u64 {
    1_000_000 + seed * 450_000
}

/// Replays every planned session of `gen` into a fresh service.
pub fn replay_trace(gen: &TraceGenerator, cfg: &ReplayConfig) -> (StorageService, ReplayStats) {
    let horizon_hours = (gen.config().horizon_ms() / 3_600_000) as usize;
    let mut svc = StorageService::new(cfg.frontends, horizon_hours);
    let mut stats = ReplayStats::default();
    let mut rng = stream_rng(cfg.seed, 0x5EB1A4);
    let mut file_seq: u64 = 0;

    for user in gen.users() {
        let mut owned: Vec<String> = Vec::new();
        for session in gen.user_sessions(user) {
            for f in &session.files {
                match f.direction {
                    Direction::Store => {
                        file_seq += 1;
                        let name = format!("u{}/f{file_seq}", user.user_id);
                        let content = if rng.random::<f64>() < cfg.duplicate_prob {
                            // Popular content has a fixed identity: the
                            // same seed always means the same bytes (and
                            // size), otherwise nothing would ever dedup.
                            let seed = rng.random_range(0..cfg.popular_pool);
                            Content::Synthetic {
                                seed,
                                size: popular_size(seed),
                            }
                        } else {
                            Content::Synthetic {
                                seed: 1_000_000 + file_seq,
                                size: f.size.max(1),
                            }
                        };
                        let out = svc.store(user.user_id, &name, &content, session.start_ms);
                        stats.stores += 1;
                        stats.bytes_uploaded += out.bytes_uploaded;
                        if out.deduplicated {
                            stats.bytes_deduplicated += content.size();
                        }
                        owned.push(name);
                    }
                    Direction::Retrieve => {
                        stats.retrieves += 1;
                        match owned.last() {
                            Some(name) => {
                                match svc.retrieve(user.user_id, name, session.start_ms) {
                                    Some(got) => stats.bytes_downloaded += got.bytes_downloaded,
                                    None => stats.retrieve_misses += 1,
                                }
                            }
                            // Download-only users fetch shared content by
                            // URL in reality; model as popular-pool reads.
                            None => {
                                let seed = rng.random_range(0..cfg.popular_pool);
                                let content = Content::Synthetic {
                                    seed,
                                    size: popular_size(seed),
                                };
                                // Ensure the shared object exists (first
                                // toucher uploads it), then serve it.
                                let name = format!("shared/{seed}");
                                let owner = u64::MAX - seed;
                                if svc.retrieve(owner, &name, session.start_ms).is_none() {
                                    svc.store(owner, &name, &content, session.start_ms);
                                }
                                match svc.retrieve(owner, &name, session.start_ms) {
                                    Some(got) => stats.bytes_downloaded += got.bytes_downloaded,
                                    None => stats.retrieve_misses += 1,
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (svc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_trace::TraceConfig;

    fn small_gen(seed: u64) -> TraceGenerator {
        TraceGenerator::new(TraceConfig {
            seed,
            mobile_users: 250,
            pc_only_users: 60,
            ..TraceConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn replay_preserves_service_invariants() {
        let gen = small_gen(41);
        let (svc, stats) = replay_trace(&gen, &ReplayConfig::default());
        assert!(stats.stores > 300, "stores {}", stats.stores);
        assert!(stats.retrieves > 30, "retrieves {}", stats.retrieves);
        assert_eq!(stats.retrieve_misses, 0);
        assert!(stats.bytes_deduplicated > 0, "popular dupes must dedup");
        assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
        // Metadata sees every user store plus the first-touch uploads of
        // shared popular objects.
        assert!(svc.metadata().stats.store_ops >= stats.stores);
    }

    #[test]
    fn replay_deterministic() {
        let gen = small_gen(43);
        let (_, a) = replay_trace(&gen, &ReplayConfig::default());
        let (_, b) = replay_trace(&gen, &ReplayConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn higher_duplicate_rate_saves_more() {
        let gen = small_gen(47);
        let low = replay_trace(
            &gen,
            &ReplayConfig {
                duplicate_prob: 0.01,
                ..ReplayConfig::default()
            },
        )
        .1;
        let high = replay_trace(
            &gen,
            &ReplayConfig {
                duplicate_prob: 0.25,
                ..ReplayConfig::default()
            },
        )
        .1;
        assert!(
            high.bytes_deduplicated > low.bytes_deduplicated,
            "high {} vs low {}",
            high.bytes_deduplicated,
            low.bytes_deduplicated
        );
    }
}
