//! Replay a synthetic trace through the storage service.
//!
//! Bridges `mcs-trace` and the service substrate: every planned store
//! becomes a real `store()` (with content identity, so duplicates
//! deduplicate), every planned retrieval a real `retrieve()`. This is how
//! the workload-level findings (§2.4 load, §3.2 usage) exercise the §2.1
//! system end to end.
//!
//! [`replay_trace_faulted`] runs the same workload under an injected
//! [`FaultPlan`]: operations retry, fail over and sometimes fail, and the
//! [`ReplayStats`] grow degraded-mode accounting (failed ops, retries,
//! failovers, retry-inflated bytes, availability). Both entry points share
//! one loop, so a replay under [`FaultPlan::none`] is *bit-identical* to a
//! fair-weather replay.

use rand::RngExt;
use serde::Serialize;

use mcs_faults::{ConfigError, FaultPlan, RetryPolicy};
use mcs_stats::rng::stream_rng;
use mcs_trace::{Direction, TraceGenerator};

use crate::content::Content;
use crate::error::ServiceError;
use crate::service::StorageService;

/// Knobs for the replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReplayConfig {
    /// Number of front-end servers.
    pub frontends: usize,
    /// Probability that an upload is a duplicate of shared popular content
    /// (the same video forwarded around — what makes the §2.1 dedup pay).
    pub duplicate_prob: f64,
    /// Size of the popular-content pool duplicates are drawn from.
    pub popular_pool: u64,
    /// RNG seed for duplicate selection.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            frontends: 8,
            duplicate_prob: 0.03,
            popular_pool: 64,
            seed: 7,
        }
    }
}

/// Replay outcome summary.
///
/// The fault fields stay zero on fair-weather replays, so existing
/// consumers see unchanged numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ReplayStats {
    /// Files stored successfully.
    pub stores: u64,
    /// Files retrievals attempted.
    pub retrieves: u64,
    /// Bytes actually uploaded (after dedup).
    pub bytes_uploaded: u64,
    /// Bytes the dedup avoided uploading.
    pub bytes_deduplicated: u64,
    /// Bytes served on retrievals.
    pub bytes_downloaded: u64,
    /// Retrievals that failed to resolve (should be zero fair-weather).
    pub retrieve_misses: u64,
    /// Stores that exhausted their retry budget under faults.
    pub failed_stores: u64,
    /// Retrievals that exhausted their retry budget under faults.
    pub failed_retrieves: u64,
    /// Backoff-and-retry rounds the service issued.
    pub retries: u64,
    /// Uploads redirected past a down front-end.
    pub failovers: u64,
    /// Chunk transfers that timed out during brownouts.
    pub chunk_timeouts: u64,
    /// Bytes moved by attempts that did not complete (retry inflation).
    pub retry_bytes: u64,
}

impl ReplayStats {
    /// Fraction of workload operations that completed despite faults:
    /// `ok / (stores + failed_stores + retrieves)` where `ok` counts
    /// successful stores plus retrievals that were not fault-defeated
    /// (a clean "not found" is not an availability event). `1.0` for an
    /// empty replay.
    pub fn availability(&self) -> f64 {
        let total = self.stores + self.failed_stores + self.retrieves;
        if total == 0 {
            return 1.0;
        }
        let ok = self.stores + self.retrieves - self.failed_retrieves;
        ok as f64 / total as f64
    }
}

/// Deterministic size of a popular-pool object (photo- to clip-sized).
fn popular_size(seed: u64) -> u64 {
    1_000_000 + seed * 450_000
}

/// Replays every planned session of `gen` into a fresh service.
///
/// Fails only on invalid configuration (zero front-ends); the replay
/// itself cannot fault without a plan.
pub fn replay_trace(
    gen: &TraceGenerator,
    cfg: &ReplayConfig,
) -> Result<(StorageService, ReplayStats), ConfigError> {
    replay_inner(gen, cfg, None)
}

/// Replays the same workload as [`replay_trace`] under an injected fault
/// plan: the service backs off through metadata outages, fails uploads
/// over past down front-ends, re-sends timed-out chunk transfers, and
/// gives up (degrading, never panicking) when `retry` allows no more.
///
/// Deterministic in `(gen, cfg, plan, retry)` — per-operation fault coins
/// are stateless hashes, so the stats are bit-identical across runs and
/// thread counts.
pub fn replay_trace_faulted(
    gen: &TraceGenerator,
    cfg: &ReplayConfig,
    plan: &FaultPlan,
    retry: RetryPolicy,
) -> Result<(StorageService, ReplayStats), ConfigError> {
    replay_inner(gen, cfg, Some((plan.clone(), retry)))
}

fn replay_inner(
    gen: &TraceGenerator,
    cfg: &ReplayConfig,
    faults: Option<(FaultPlan, RetryPolicy)>,
) -> Result<(StorageService, ReplayStats), ConfigError> {
    let horizon_hours = (gen.config().horizon_ms() / 3_600_000) as usize;
    let mut svc = StorageService::new(cfg.frontends, horizon_hours)?;
    if let Some((plan, retry)) = faults {
        svc.set_fault_plan(plan, retry)?;
    }
    let mut stats = ReplayStats::default();
    let mut rng = stream_rng(cfg.seed, 0x5EB1A4);
    let mut file_seq: u64 = 0;

    for user in gen.users() {
        let mut owned: Vec<String> = Vec::new();
        for session in gen.user_sessions(user) {
            for f in &session.files {
                match f.direction {
                    Direction::Store => {
                        file_seq += 1;
                        let name = format!("u{}/f{file_seq}", user.user_id);
                        let content = if rng.random::<f64>() < cfg.duplicate_prob {
                            // Popular content has a fixed identity: the
                            // same seed always means the same bytes (and
                            // size), otherwise nothing would ever dedup.
                            let seed = rng.random_range(0..cfg.popular_pool);
                            Content::Synthetic {
                                seed,
                                size: popular_size(seed),
                            }
                        } else {
                            Content::Synthetic {
                                seed: 1_000_000 + file_seq,
                                size: f.size.max(1),
                            }
                        };
                        match svc.try_store(user.user_id, &name, &content, session.start_ms) {
                            Ok(out) => {
                                stats.stores += 1;
                                stats.bytes_uploaded += out.bytes_uploaded;
                                if out.deduplicated {
                                    stats.bytes_deduplicated += content.size();
                                }
                                owned.push(name);
                            }
                            // The budget ran out; the file never made it
                            // into the namespace, so it is not `owned`.
                            Err(_) => stats.failed_stores += 1,
                        }
                    }
                    Direction::Retrieve => {
                        stats.retrieves += 1;
                        match owned.last() {
                            Some(name) => {
                                match svc.try_retrieve(user.user_id, name, session.start_ms) {
                                    Ok(got) => stats.bytes_downloaded += got.bytes_downloaded,
                                    Err(ServiceError::NotFound) => stats.retrieve_misses += 1,
                                    Err(_) => stats.failed_retrieves += 1,
                                }
                            }
                            // Download-only users fetch shared content by
                            // URL in reality; model as popular-pool reads.
                            None => {
                                let seed = rng.random_range(0..cfg.popular_pool);
                                let content = Content::Synthetic {
                                    seed,
                                    size: popular_size(seed),
                                };
                                // Ensure the shared object exists (first
                                // toucher uploads it), then serve it. A
                                // fault anywhere defeats the user-visible
                                // *retrieve*, so that is what it charges.
                                let name = format!("shared/{seed}");
                                let owner = u64::MAX - seed;
                                match svc.try_retrieve(owner, &name, session.start_ms) {
                                    Ok(_) => {} // exists; the counted retrieve follows
                                    Err(ServiceError::NotFound) => {
                                        if svc
                                            .try_store(owner, &name, &content, session.start_ms)
                                            .is_err()
                                        {
                                            stats.failed_retrieves += 1;
                                            continue;
                                        }
                                    }
                                    Err(_) => {
                                        stats.failed_retrieves += 1;
                                        continue;
                                    }
                                }
                                match svc.try_retrieve(owner, &name, session.start_ms) {
                                    Ok(got) => stats.bytes_downloaded += got.bytes_downloaded,
                                    Err(ServiceError::NotFound) => stats.retrieve_misses += 1,
                                    Err(_) => stats.failed_retrieves += 1,
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let t = svc.telemetry();
    stats.retries = t.retries;
    stats.failovers = t.failovers;
    stats.chunk_timeouts = t.chunk_timeouts;
    stats.retry_bytes = t.retry_bytes;
    Ok((svc, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_faults::FaultPlanConfig;
    use mcs_trace::TraceConfig;

    fn small_gen(seed: u64) -> TraceGenerator {
        TraceGenerator::new(TraceConfig {
            seed,
            mobile_users: 250,
            pc_only_users: 60,
            ..TraceConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn replay_preserves_service_invariants() {
        let gen = small_gen(41);
        let (svc, stats) = replay_trace(&gen, &ReplayConfig::default()).unwrap();
        assert!(stats.stores > 300, "stores {}", stats.stores);
        assert!(stats.retrieves > 30, "retrieves {}", stats.retrieves);
        assert_eq!(stats.retrieve_misses, 0);
        assert!(stats.bytes_deduplicated > 0, "popular dupes must dedup");
        assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
        // Metadata sees every user store plus the first-touch uploads of
        // shared popular objects.
        assert!(svc.metadata().stats.store_ops >= stats.stores);
        // Fair weather: no degraded-mode activity, full availability.
        assert_eq!(stats.failed_stores, 0);
        assert_eq!(stats.failed_retrieves, 0);
        assert_eq!(stats.retries, 0);
        assert!((stats.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replay_deterministic() {
        let gen = small_gen(43);
        let (_, a) = replay_trace(&gen, &ReplayConfig::default()).unwrap();
        let (_, b) = replay_trace(&gen, &ReplayConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn higher_duplicate_rate_saves_more() {
        let gen = small_gen(47);
        let low = replay_trace(
            &gen,
            &ReplayConfig {
                duplicate_prob: 0.01,
                ..ReplayConfig::default()
            },
        )
        .unwrap()
        .1;
        let high = replay_trace(
            &gen,
            &ReplayConfig {
                duplicate_prob: 0.25,
                ..ReplayConfig::default()
            },
        )
        .unwrap()
        .1;
        assert!(
            high.bytes_deduplicated > low.bytes_deduplicated,
            "high {} vs low {}",
            high.bytes_deduplicated,
            low.bytes_deduplicated
        );
    }

    #[test]
    fn zero_frontends_is_a_config_error() {
        let gen = small_gen(48);
        let cfg = ReplayConfig {
            frontends: 0,
            ..ReplayConfig::default()
        };
        assert!(replay_trace(&gen, &cfg).is_err());
    }

    #[test]
    fn empty_replay_has_full_availability() {
        // Zero operations must read as a fully available service, not 0/0.
        let stats = ReplayStats::default();
        assert_eq!(stats.availability(), 1.0);
    }

    #[test]
    fn none_plan_replay_matches_fair_weather_bit_for_bit() {
        let gen = small_gen(51);
        let cfg = ReplayConfig::default();
        let (_, clean) = replay_trace(&gen, &cfg).unwrap();
        let plan = FaultPlan::none(cfg.frontends);
        let (_, faulted) = replay_trace_faulted(&gen, &cfg, &plan, RetryPolicy::default()).unwrap();
        assert_eq!(clean, faulted);
    }

    #[test]
    fn faulted_replay_is_deterministic() {
        let gen = small_gen(53);
        let cfg = ReplayConfig::default();
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: 9,
            horizon_ms: gen.config().horizon_ms(),
            n_frontends: cfg.frontends,
            ..FaultPlanConfig::default()
        })
        .unwrap();
        let retry = RetryPolicy::default();
        let (_, a) = replay_trace_faulted(&gen, &cfg, &plan, retry).unwrap();
        let (_, b) = replay_trace_faulted(&gen, &cfg, &plan, retry).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn aggressive_plan_degrades_gracefully() {
        let gen = small_gen(57);
        let cfg = ReplayConfig::default();
        // Heavy, long outages: plenty of fault activity, no panics.
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: 3,
            horizon_ms: gen.config().horizon_ms(),
            n_frontends: cfg.frontends,
            frontend_outages_per_day: 24.0,
            frontend_outage_mean_ms: 1_800_000.0,
            frontend_brownouts_per_day: 24.0,
            frontend_brownout_mean_ms: 3_600_000.0,
            chunk_timeout_prob: 0.9,
            metadata_outages_per_day: 12.0,
            metadata_outage_mean_ms: 600_000.0,
            ..FaultPlanConfig::default()
        })
        .unwrap();
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let (_, stats) = replay_trace_faulted(&gen, &cfg, &plan, retry).unwrap();
        let avail = stats.availability();
        assert!(avail < 1.0, "faults must cost availability: {avail}");
        assert!(avail > 0.1, "service must not collapse entirely: {avail}");
        assert!(stats.retries > 0);
        assert!(stats.failed_stores + stats.failed_retrieves > 0);
        assert!(stats.chunk_timeouts > 0);
        assert!(stats.retry_bytes > 0, "timeouts inflate traffic");
    }
}
