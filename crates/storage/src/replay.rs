//! Replay a synthetic trace through the storage service.
//!
//! Bridges `mcs-trace` and the service substrate: every planned store
//! becomes a real `store()` (with content identity, so duplicates
//! deduplicate), every planned retrieval a real `retrieve()`. This is how
//! the workload-level findings (§2.4 load, §3.2 usage) exercise the §2.1
//! system end to end.
//!
//! [`replay_trace_faulted`] runs the same workload under an injected
//! [`FaultPlan`]: operations retry, fail over and sometimes fail, and the
//! [`ReplayStats`] grow degraded-mode accounting (failed ops, retries,
//! failovers, retry-inflated bytes, availability). Both entry points share
//! one loop, so a replay under [`FaultPlan::none`] is *bit-identical* to a
//! fair-weather replay.
//!
//! With [`ReplayConfig::resumable`] (the default) faulted operations move
//! through the resumable chunk-transfer protocol ([`crate::transfer`]):
//! an interrupted transfer keeps its verified chunks, retries move only
//! what is missing, and the stats grow resume accounting
//! (`resumed_transfers`, `resume_saved_bytes`). Setting it to `false`
//! retries whole files — the baseline the §3.3 sync-efficiency
//! comparison measures against.
//!
//! The replay runs on the shared `mcs-sim` timeline (DESIGN.md §10) in two
//! phases: a *plan* phase walks the trace in its original per-user order
//! (so every RNG draw replays the pre-timeline sequence bit for bit) and
//! fixes each operation's content and fallbacks, then an *execute* phase
//! dispatches the planned operations through a [`mcs_sim::Simulation`],
//! one component per front-end, so the per-front-end `sim.events.*`
//! counters land in the observed snapshot.
//!
//! The two modes put different things on the clock. The *faulted* timeline
//! runs in global trace-time order (`at_ms * MS`) because fault windows are
//! time-gated and every front-end must agree about "now" (an *empty* plan
//! gates nothing and keeps the fair-weather timeline — that is how the
//! [`FaultPlan::none`] promise above holds). The
//! *fair-weather* timeline ticks once per planned operation, in plan order:
//! nothing in fair weather is gated on cross-user time order, but dedup
//! attribution (first store of a chunk uploads, later ones dedup) *is*
//! order-dependent, so replaying the pre-timeline total order is exactly
//! what keeps the output bit-identical to the old single loop.

use std::collections::BTreeMap;

use rand::RngExt;
use serde::Serialize;

use mcs_faults::{ConfigError, FaultPlan, RetryPolicy};
use mcs_net::profile::{access_cap_bps, simulate_fair_share, FairFlowSpec, ProfileMix};
use mcs_obs::{CounterId, HistId, Registry, Snapshot};
use mcs_sim::{CompId, Ctx, Handler, Simulation, MS};
use mcs_stats::rng::stream_rng;
use mcs_trace::{Direction, TraceGenerator};

use crate::content::Content;
use crate::error::ServiceError;
use crate::service::StorageService;

/// Knobs for the replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReplayConfig {
    /// Number of front-end servers.
    pub frontends: usize,
    /// Probability that an upload is a duplicate of shared popular content
    /// (the same video forwarded around — what makes the §2.1 dedup pay).
    pub duplicate_prob: f64,
    /// Size of the popular-content pool duplicates are drawn from.
    pub popular_pool: u64,
    /// RNG seed for duplicate selection.
    pub seed: u64,
    /// Drive faulted operations through the resumable chunk-transfer
    /// protocol (`try_store_resumable`/`try_retrieve_resumable`): an
    /// interrupted transfer keeps its verified chunks and a retry moves
    /// only the missing ones. `false` falls back to whole-file retry —
    /// the comparison baseline for the §3.3 sync-efficiency question.
    /// Fair-weather replays are bit-identical either way.
    pub resumable: bool,
    /// Radio-access population for the network model: when set, every
    /// user draws a [`mcs_net::LinkProfile`] from this seeded mix, the
    /// bytes each operation actually moved become flows on their
    /// front-end's shared link, and [`simulate_fair_share`] turns them
    /// into the `net.profile.*` metric families. `None` (the default)
    /// skips the network pass entirely, keeping snapshots bit-identical
    /// to pre-profile replays.
    pub profiles: Option<ProfileMix>,
    /// Shared front-end link rate the per-front-end flows split
    /// max-min-fairly, bits per second. Only read when `profiles` is set.
    pub frontend_link_bps: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            frontends: 8,
            duplicate_prob: 0.03,
            popular_pool: 64,
            seed: 7,
            resumable: true,
            profiles: None,
            frontend_link_bps: 10_000_000_000,
        }
    }
}

/// Replay outcome summary.
///
/// The fault fields stay zero on fair-weather replays, so existing
/// consumers see unchanged numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ReplayStats {
    /// Files stored successfully.
    pub stores: u64,
    /// Files retrievals attempted.
    pub retrieves: u64,
    /// Bytes actually uploaded (after dedup).
    pub bytes_uploaded: u64,
    /// Bytes the dedup avoided uploading.
    pub bytes_deduplicated: u64,
    /// Bytes served on retrievals.
    pub bytes_downloaded: u64,
    /// Retrievals that failed to resolve (should be zero fair-weather).
    pub retrieve_misses: u64,
    /// Stores that exhausted their retry budget under faults.
    pub failed_stores: u64,
    /// Retrievals defeated by faults. This counts *user-visible* retrieve
    /// defeats: when a shared-pool read must first seed the popular object
    /// and that internal store fails, the defeat is charged here (the user
    /// asked to retrieve), not to `failed_stores` (which counts only the
    /// workload's own planned stores).
    pub failed_retrieves: u64,
    /// Backoff-and-retry rounds the service issued.
    pub retries: u64,
    /// Uploads redirected past a down front-end.
    pub failovers: u64,
    /// Chunk transfers that timed out during brownouts.
    pub chunk_timeouts: u64,
    /// Bytes moved by attempts that did not complete (retry inflation).
    pub retry_bytes: u64,
    /// Transfer attempts that started with partial progress already
    /// verified (resumable protocol only).
    pub resumed_transfers: u64,
    /// Bytes resumes did not re-move that whole-file retries would have.
    pub resume_saved_bytes: u64,
}

impl ReplayStats {
    /// Fraction of workload operations that completed despite faults:
    /// `ok / (stores + failed_stores + retrieves)` where `ok` counts
    /// successful stores plus retrievals that were not fault-defeated
    /// (a clean "not found" is not an availability event). Both sides
    /// count *user-visible* operations — a shared-pool retrieve defeated
    /// by its internal seeding store is one failed retrieve, never a
    /// phantom store attempt. `1.0` for an empty replay.
    pub fn availability(&self) -> f64 {
        let total = self.stores + self.failed_stores + self.retrieves;
        if total == 0 {
            return 1.0;
        }
        let ok = self.stores + self.retrieves - self.failed_retrieves;
        ok as f64 / total as f64
    }
}

/// Deterministic size of a popular-pool object (photo- to clip-sized).
fn popular_size(seed: u64) -> u64 {
    1_000_000 + seed * 450_000
}

/// Replays every planned session of `gen` into a fresh service.
///
/// Fails only on invalid configuration (zero front-ends); the replay
/// itself cannot fault without a plan.
pub fn replay_trace(
    gen: &TraceGenerator,
    cfg: &ReplayConfig,
) -> Result<(StorageService, ReplayStats), ConfigError> {
    let (svc, stats, _) = replay_inner(gen, cfg, None)?;
    Ok((svc, stats))
}

/// [`replay_trace`] plus a stable-ordered metric [`Snapshot`]: the
/// `replay.*` counters and size histograms merged with the service's own
/// `storage.*` degraded-mode counters.
pub fn replay_trace_observed(
    gen: &TraceGenerator,
    cfg: &ReplayConfig,
) -> Result<(StorageService, ReplayStats, Snapshot), ConfigError> {
    replay_inner(gen, cfg, None)
}

/// Replays the same workload as [`replay_trace`] under an injected fault
/// plan: the service backs off through metadata outages, fails uploads
/// over past down front-ends, re-sends timed-out chunk transfers, and
/// gives up (degrading, never panicking) when `retry` allows no more.
///
/// Deterministic in `(gen, cfg, plan, retry)` — per-operation fault coins
/// are stateless hashes and operations execute in global timeline order
/// (not per-user plan order), so the stats are bit-identical across runs
/// and thread counts.
pub fn replay_trace_faulted(
    gen: &TraceGenerator,
    cfg: &ReplayConfig,
    plan: &FaultPlan,
    retry: RetryPolicy,
) -> Result<(StorageService, ReplayStats), ConfigError> {
    let (svc, stats, _) = replay_inner(gen, cfg, Some((plan.clone(), retry)))?;
    Ok((svc, stats))
}

/// [`replay_trace_faulted`] plus a stable-ordered metric [`Snapshot`]
/// (see [`replay_trace_observed`]).
pub fn replay_trace_faulted_observed(
    gen: &TraceGenerator,
    cfg: &ReplayConfig,
    plan: &FaultPlan,
    retry: RetryPolicy,
) -> Result<(StorageService, ReplayStats, Snapshot), ConfigError> {
    replay_inner(gen, cfg, Some((plan.clone(), retry)))
}

/// Handles into the replay's metric registry. [`ReplayStats`] is
/// materialised from these counters at the end of the run, so the struct
/// consumers destructure and the exported snapshot can never disagree.
struct ReplayIds {
    stores: CounterId,
    retrieves: CounterId,
    bytes_uploaded: CounterId,
    bytes_deduplicated: CounterId,
    bytes_downloaded: CounterId,
    retrieve_misses: CounterId,
    failed_stores: CounterId,
    failed_retrieves: CounterId,
    store_bytes: HistId,
    retrieve_bytes: HistId,
}

impl ReplayIds {
    fn register(obs: &mut Registry) -> Self {
        Self {
            stores: obs.counter("replay.stores"),
            retrieves: obs.counter("replay.retrieves"),
            bytes_uploaded: obs.counter("replay.bytes_uploaded"),
            bytes_deduplicated: obs.counter("replay.bytes_deduplicated"),
            bytes_downloaded: obs.counter("replay.bytes_downloaded"),
            retrieve_misses: obs.counter("replay.retrieve_misses"),
            failed_stores: obs.counter("replay.failed_stores"),
            failed_retrieves: obs.counter("replay.failed_retrieves"),
            store_bytes: obs.histogram("replay.store_bytes"),
            retrieve_bytes: obs.histogram("replay.retrieve_bytes"),
        }
    }
}

/// One planned service call. The plan fixes everything random *before*
/// execution, so the faulted timeline may dispatch operations in global
/// time order while every RNG draw replays the original per-user plan
/// order.
#[derive(Debug, Clone)]
enum PlannedKind {
    Store { name: String, content: Content },
    Retrieve { fallback_seed: u64 },
}

#[derive(Debug, Clone)]
struct PlannedOp {
    user: u64,
    at_ms: u64,
    kind: PlannedKind,
}

/// Plan phase: walk the trace exactly like the pre-timeline replay loop
/// did — user by user, sessions chronological within each user — and draw
/// from the same RNG stream at the same points, so the planned workload is
/// bit-identical to what the old single loop executed.
/// Absolute µs deadline for a trace op stamped at `at_ms`. Saturates at
/// the end of time: the bare `* 1000` it replaces wrapped for
/// `at_ms > u64::MAX / 1000`, scheduling the op in the *past* and
/// silently reordering the faulted timeline.
fn op_deadline_us(at_ms: u64) -> u64 {
    at_ms.saturating_mul(MS)
}

fn plan_ops(gen: &TraceGenerator, cfg: &ReplayConfig) -> Vec<PlannedOp> {
    let mut rng = stream_rng(cfg.seed, 0x5EB1A4);
    // Disjoint stream for the shared-pool fallback of users who *do* own
    // files. That branch is reachable only when their stores failed under
    // faults; drawing it from stream A would shift every later fair-weather
    // draw, so it gets its own stream.
    let mut fallback_rng = stream_rng(cfg.seed, 0x5EB1A5);
    let mut ops = Vec::new();
    let mut file_seq: u64 = 0;
    for user in gen.users() {
        let mut has_store = false;
        for session in gen.user_sessions(user) {
            for f in &session.files {
                match f.direction {
                    Direction::Store => {
                        file_seq += 1;
                        let name = format!("u{}/f{file_seq}", user.user_id);
                        let content = if rng.random::<f64>() < cfg.duplicate_prob {
                            // Popular content has a fixed identity: the
                            // same seed always means the same bytes (and
                            // size), otherwise nothing would ever dedup.
                            let seed = rng.random_range(0..cfg.popular_pool);
                            Content::Synthetic {
                                seed,
                                size: popular_size(seed),
                            }
                        } else {
                            Content::Synthetic {
                                seed: 1_000_000 + file_seq,
                                size: f.size.max(1),
                            }
                        };
                        has_store = true;
                        ops.push(PlannedOp {
                            user: user.user_id,
                            at_ms: session.start_ms,
                            kind: PlannedKind::Store { name, content },
                        });
                    }
                    Direction::Retrieve => {
                        // Download-only users fetch shared content by URL
                        // in reality; model as popular-pool reads. Fair
                        // weather uses the fallback only when the user has
                        // no planned store, which is exactly when the old
                        // loop drew it from stream A.
                        let fallback_seed = if has_store {
                            fallback_rng.random_range(0..cfg.popular_pool)
                        } else {
                            rng.random_range(0..cfg.popular_pool)
                        };
                        ops.push(PlannedOp {
                            user: user.user_id,
                            at_ms: session.start_ms,
                            kind: PlannedKind::Retrieve { fallback_seed },
                        });
                    }
                }
            }
        }
    }
    ops
}

/// Execute phase: a [`Handler`] dispatching planned operations into the
/// service as their events pop off the shared timeline. The service never
/// keeps its own clock: "now" is the operation's trace timestamp, which on
/// the faulted timeline is exactly the simulation clock (events are
/// scheduled at `at_ms * MS`) and on the fair-weather timeline rides on
/// the op while the clock ticks in plan order.
struct ReplayEngine {
    svc: StorageService,
    obs: Registry,
    ids: ReplayIds,
    ops: Vec<PlannedOp>,
    /// Files each user successfully stored, in execution order (per-user
    /// execution order equals plan order on both timelines: sessions are
    /// chronologically sorted and the queue breaks time ties by insertion).
    owned: BTreeMap<u64, Vec<String>>,
    /// Dispatch faulted ops through the resumable chunk-transfer paths
    /// ([`ReplayConfig::resumable`]).
    resumable: bool,
    /// Bytes each planned op actually moved over the network (post-dedup
    /// uploads, served downloads; 0 for metadata-only or failed ops).
    /// Input to the fair-share network pass when
    /// [`ReplayConfig::profiles`] is set.
    op_bytes: Vec<u64>,
}

impl ReplayEngine {
    /// `try_store` or `try_store_resumable`, per the config. Free of
    /// `&mut self` so `handle` can keep borrowing the planned op.
    fn do_store(
        svc: &mut StorageService,
        resumable: bool,
        user: u64,
        name: &str,
        content: &Content,
        now_ms: u64,
    ) -> Result<crate::service::StoreOutcome, ServiceError> {
        if resumable {
            svc.try_store_resumable(user, name, content, now_ms)
        } else {
            svc.try_store(user, name, content, now_ms)
        }
    }

    /// `try_retrieve` or `try_retrieve_resumable`, per the config.
    fn do_retrieve(
        svc: &mut StorageService,
        resumable: bool,
        user: u64,
        path: &str,
        now_ms: u64,
    ) -> Result<crate::service::RetrieveOutcome, ServiceError> {
        if resumable {
            svc.try_retrieve_resumable(user, path, now_ms)
        } else {
            svc.try_retrieve(user, path, now_ms)
        }
    }
}

impl Handler<usize> for ReplayEngine {
    fn handle(&mut self, _ctx: &mut Ctx<'_, usize>, op: usize) {
        // On the faulted timeline this equals the simulation clock (events
        // are scheduled at `at_ms * MS`); on the fair-weather timeline the
        // clock counts plan ticks, so the trace timestamp travels with the
        // op (module docs explain why).
        let now_ms = self.ops[op].at_ms;
        let user = self.ops[op].user;
        match &self.ops[op].kind {
            PlannedKind::Store { name, content } => {
                match Self::do_store(&mut self.svc, self.resumable, user, name, content, now_ms) {
                    Ok(out) => {
                        self.obs.inc(self.ids.stores);
                        self.obs.add(self.ids.bytes_uploaded, out.bytes_uploaded);
                        self.op_bytes[op] = out.bytes_uploaded;
                        self.obs.observe(self.ids.store_bytes, content.size());
                        if out.deduplicated {
                            self.obs.add(self.ids.bytes_deduplicated, content.size());
                        }
                        self.owned.entry(user).or_default().push(name.clone());
                    }
                    // The budget ran out; the file never made it into the
                    // namespace, so it is not `owned`.
                    Err(_) => self.obs.inc(self.ids.failed_stores),
                }
            }
            PlannedKind::Retrieve { fallback_seed } => {
                self.obs.inc(self.ids.retrieves);
                let owned_name = self.owned.get(&user).and_then(|v| v.last()).cloned();
                match owned_name {
                    Some(name) => {
                        match Self::do_retrieve(&mut self.svc, self.resumable, user, &name, now_ms)
                        {
                            Ok(got) => {
                                self.obs
                                    .add(self.ids.bytes_downloaded, got.bytes_downloaded);
                                self.obs
                                    .observe(self.ids.retrieve_bytes, got.bytes_downloaded);
                                self.op_bytes[op] = got.bytes_downloaded;
                            }
                            Err(ServiceError::NotFound) => self.obs.inc(self.ids.retrieve_misses),
                            Err(_) => self.obs.inc(self.ids.failed_retrieves),
                        }
                    }
                    None => {
                        let seed = *fallback_seed;
                        let content = Content::Synthetic {
                            seed,
                            size: popular_size(seed),
                        };
                        // Ensure the shared object exists (first toucher
                        // uploads it), then serve it. A fault anywhere —
                        // including the internal seeding store — defeats
                        // the user-visible *retrieve*, so that is what it
                        // charges (see `ReplayStats::failed_retrieves`).
                        let name = format!("shared/{seed}");
                        let owner = u64::MAX - seed;
                        match Self::do_retrieve(&mut self.svc, self.resumable, owner, &name, now_ms)
                        {
                            Ok(_) => {} // exists; the counted retrieve follows
                            Err(ServiceError::NotFound) => {
                                if Self::do_store(
                                    &mut self.svc,
                                    self.resumable,
                                    owner,
                                    &name,
                                    &content,
                                    now_ms,
                                )
                                .is_err()
                                {
                                    self.obs.inc(self.ids.failed_retrieves);
                                    return;
                                }
                            }
                            Err(_) => {
                                self.obs.inc(self.ids.failed_retrieves);
                                return;
                            }
                        }
                        match Self::do_retrieve(&mut self.svc, self.resumable, owner, &name, now_ms)
                        {
                            Ok(got) => {
                                self.obs
                                    .add(self.ids.bytes_downloaded, got.bytes_downloaded);
                                self.obs
                                    .observe(self.ids.retrieve_bytes, got.bytes_downloaded);
                                self.op_bytes[op] = got.bytes_downloaded;
                            }
                            Err(ServiceError::NotFound) => self.obs.inc(self.ids.retrieve_misses),
                            Err(_) => self.obs.inc(self.ids.failed_retrieves),
                        }
                    }
                }
            }
        }
    }
}

/// The fleet network pass (see [`ReplayConfig::profiles`]): every byte-
/// moving operation becomes one flow on its front-end's shared link, its
/// fair share capped by the user's own radio-access link (drawn per user
/// from the seeded mix), and the fluid fair-share model prices the
/// contention. Books the `net.profile.*` metric families:
/// flow counts and bytes per profile, transfer-time histograms per
/// profile, allocation recomputes, and per-front-end peak concurrency.
///
/// Runs after the service replay and reads only planned ops and their
/// realised byte counts, so it never perturbs the service-layer numbers;
/// iteration is in front-end then op order, so the booked metrics are
/// deterministic across runs and thread counts.
fn book_profile_flows(
    eng: &mut ReplayEngine,
    cfg: &ReplayConfig,
    mix: &ProfileMix,
) -> Result<(), ConfigError> {
    // Mobile clients scale their receive window (2–4 MB); the deployed
    // upload path is clamped at the unscaled 64 KB (§4.1).
    const UPLOAD_RWND: u64 = 65_535;
    const DOWNLOAD_RWND: u64 = 2 * 1024 * 1024;
    let mut per_fe: Vec<Vec<FairFlowSpec>> = vec![Vec::new(); cfg.frontends];
    let mut names: Vec<Vec<&'static str>> = vec![Vec::new(); cfg.frontends];
    for (i, op) in eng.ops.iter().enumerate() {
        let bytes = eng.op_bytes[i];
        if bytes == 0 {
            // Metadata-only (deduplicated store), failed or empty op:
            // nothing crossed the network.
            continue;
        }
        let profile = mix.draw(cfg.seed, op.user);
        let link = profile.user_link(cfg.seed, op.user);
        let rwnd = match op.kind {
            PlannedKind::Store { .. } => UPLOAD_RWND,
            PlannedKind::Retrieve { .. } => DOWNLOAD_RWND,
        };
        let fe = eng.svc.metadata().closest_frontend(op.user);
        per_fe[fe].push(FairFlowSpec {
            arrival: op_deadline_us(op.at_ms),
            bytes,
            rate_cap_bps: access_cap_bps(&link, rwnd),
        });
        names[fe].push(profile.name);
    }
    let recomputes = eng.obs.counter("net.profile.recomputes");
    let peak = eng.obs.histogram("net.profile.peak_active");
    let mut ids: BTreeMap<&'static str, (CounterId, CounterId, HistId)> = BTreeMap::new();
    for (flows, flow_names) in per_fe.iter().zip(&names) {
        if flows.is_empty() {
            continue;
        }
        let out = simulate_fair_share(cfg.frontend_link_bps, flows)?;
        eng.obs.add(recomputes, out.recomputes);
        eng.obs.observe(peak, out.peak_active);
        for (k, spec) in flows.iter().enumerate() {
            let name = flow_names[k];
            let (flows_id, bytes_id, time_id) = *ids.entry(name).or_insert_with(|| {
                (
                    eng.obs.counter(&format!("net.profile.flows.{name}")),
                    eng.obs.counter(&format!("net.profile.bytes.{name}")),
                    eng.obs
                        .histogram(&format!("net.profile.transfer_us.{name}")),
                )
            });
            eng.obs.inc(flows_id);
            eng.obs.add(bytes_id, spec.bytes);
            eng.obs.observe(time_id, out.durations[k]);
        }
    }
    Ok(())
}

fn replay_inner(
    gen: &TraceGenerator,
    cfg: &ReplayConfig,
    faults: Option<(FaultPlan, RetryPolicy)>,
) -> Result<(StorageService, ReplayStats, Snapshot), ConfigError> {
    if let Some(mix) = &cfg.profiles {
        mix.validate()?;
        if cfg.frontend_link_bps == 0 {
            return Err(ConfigError::OutOfRange {
                what: "front-end link rate",
                requirement: "must be positive",
            });
        }
    }
    let horizon_hours = (gen.config().horizon_ms() / 3_600_000) as usize;
    let mut svc = StorageService::new(cfg.frontends, horizon_hours)?;
    // Only a plan that can actually fire gates anything on time; an empty
    // plan (including `FaultPlan::none`) keeps the plan-order timeline so
    // its replay stays bit-identical to fair weather.
    let time_gated = faults.as_ref().is_some_and(|(plan, _)| !plan.is_empty());
    if let Some((plan, retry)) = faults {
        svc.set_fault_plan(plan, retry)?;
    }
    let mut obs = Registry::new();
    let ids = ReplayIds::register(&mut obs);

    let mut sim: Simulation<usize> = Simulation::new();
    let comps: Vec<CompId> = (0..cfg.frontends)
        .map(|fe| sim.add_component(format!("frontend/{fe}")))
        .collect();
    let mut eng = ReplayEngine {
        svc,
        obs,
        ids,
        ops: plan_ops(gen, cfg),
        owned: BTreeMap::new(),
        resumable: cfg.resumable,
        op_bytes: Vec::new(),
    };
    eng.op_bytes = vec![0; eng.ops.len()];
    // Each planned operation becomes one event on its front-end's
    // component. The faulted timeline runs in global trace-time order
    // (windows are time-gated; insertion order breaks same-millisecond
    // ties, so each user's operations still execute chronologically). The
    // fair-weather timeline ticks once per op in plan order — the
    // pre-timeline total order — which is what keeps order-dependent dedup
    // attribution bit-identical to the old loop (module docs).
    for (i, op) in eng.ops.iter().enumerate() {
        let fe = eng.svc.metadata().closest_frontend(op.user);
        let at = if time_gated {
            op_deadline_us(op.at_ms)
        } else {
            i as u64
        };
        sim.schedule(at, comps[fe], i);
    }
    sim.run(&mut eng);

    if let Some(mix) = &cfg.profiles {
        book_profile_flows(&mut eng, cfg, mix)?;
    }

    let ReplayEngine {
        svc, mut obs, ids, ..
    } = eng;
    let t = svc.telemetry();
    let stats = ReplayStats {
        stores: obs.counter_value(ids.stores),
        retrieves: obs.counter_value(ids.retrieves),
        bytes_uploaded: obs.counter_value(ids.bytes_uploaded),
        bytes_deduplicated: obs.counter_value(ids.bytes_deduplicated),
        bytes_downloaded: obs.counter_value(ids.bytes_downloaded),
        retrieve_misses: obs.counter_value(ids.retrieve_misses),
        failed_stores: obs.counter_value(ids.failed_stores),
        failed_retrieves: obs.counter_value(ids.failed_retrieves),
        retries: t.retries,
        failovers: t.failovers,
        chunk_timeouts: t.chunk_timeouts,
        retry_bytes: t.retry_bytes,
        resumed_transfers: t.resumed_transfers,
        resume_saved_bytes: t.resume_saved_bytes,
    };
    // One snapshot carries all three layers: replay.*, storage.* and the
    // timeline's own sim.* per-component event counts.
    obs.merge(svc.metrics());
    sim.export_metrics(&mut obs);
    let snapshot = obs.snapshot();
    Ok((svc, stats, snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_faults::FaultPlanConfig;
    use mcs_trace::TraceConfig;

    fn small_gen(seed: u64) -> TraceGenerator {
        TraceGenerator::new(TraceConfig {
            seed,
            mobile_users: 250,
            pc_only_users: 60,
            ..TraceConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn op_deadline_saturates_instead_of_wrapping() {
        // Regression: the time-gated schedule loop converted trace
        // milliseconds to simulator microseconds with a bare `* 1000`;
        // any op stamped past `u64::MAX / 1000` ms wrapped to a *small*
        // deadline and replayed out of order.
        assert_eq!(op_deadline_us(5), 5 * MS);
        assert_eq!(op_deadline_us(u64::MAX / MS), u64::MAX / MS * MS);
        assert_eq!(op_deadline_us(u64::MAX / MS + 1), u64::MAX);
        assert_eq!(op_deadline_us(u64::MAX), u64::MAX);
    }

    #[test]
    fn replay_preserves_service_invariants() {
        let gen = small_gen(41);
        let (svc, stats) = replay_trace(&gen, &ReplayConfig::default()).unwrap();
        assert!(stats.stores > 300, "stores {}", stats.stores);
        assert!(stats.retrieves > 30, "retrieves {}", stats.retrieves);
        assert_eq!(stats.retrieve_misses, 0);
        assert!(stats.bytes_deduplicated > 0, "popular dupes must dedup");
        assert!(svc.frontends().iter().all(|f| f.missing_gets == 0));
        // Metadata sees every user store plus the first-touch uploads of
        // shared popular objects.
        assert!(svc.metadata().stats.store_ops >= stats.stores);
        // Fair weather: no degraded-mode activity, full availability.
        assert_eq!(stats.failed_stores, 0);
        assert_eq!(stats.failed_retrieves, 0);
        assert_eq!(stats.retries, 0);
        assert!((stats.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replay_deterministic() {
        let gen = small_gen(43);
        let (_, a) = replay_trace(&gen, &ReplayConfig::default()).unwrap();
        let (_, b) = replay_trace(&gen, &ReplayConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn profile_mix_books_network_metrics_without_touching_service_stats() {
        let gen = small_gen(43);
        let base_cfg = ReplayConfig::default();
        let (_, base_stats, base_snap) = replay_trace_observed(&gen, &base_cfg).unwrap();
        let cfg = ReplayConfig {
            profiles: Some(ProfileMix::mobile()),
            frontend_link_bps: 100_000_000,
            ..base_cfg
        };
        let (_, stats, snap) = replay_trace_observed(&gen, &cfg).unwrap();
        // The network pass prices contention; it must not perturb the
        // service layer.
        assert_eq!(stats, base_stats);
        // Every byte-moving op became exactly one priced flow.
        let flows: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("net.profile.flows."))
            .map(|(_, v)| v)
            .sum();
        assert!(flows > 0);
        let priced_bytes: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("net.profile.bytes."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(
            priced_bytes,
            stats.bytes_uploaded + stats.bytes_downloaded,
            "priced bytes must equal the bytes the service actually moved"
        );
        assert!(snap
            .counters
            .iter()
            .any(|(n, _)| n == "net.profile.recomputes"));
        // Deterministic, and absent without a mix.
        let (_, _, snap2) = replay_trace_observed(&gen, &cfg).unwrap();
        assert_eq!(snap, snap2);
        assert!(!base_snap
            .counters
            .iter()
            .any(|(n, _)| n.starts_with("net.profile.")));
    }

    #[test]
    fn higher_duplicate_rate_saves_more() {
        let gen = small_gen(47);
        let low = replay_trace(
            &gen,
            &ReplayConfig {
                duplicate_prob: 0.01,
                ..ReplayConfig::default()
            },
        )
        .unwrap()
        .1;
        let high = replay_trace(
            &gen,
            &ReplayConfig {
                duplicate_prob: 0.25,
                ..ReplayConfig::default()
            },
        )
        .unwrap()
        .1;
        assert!(
            high.bytes_deduplicated > low.bytes_deduplicated,
            "high {} vs low {}",
            high.bytes_deduplicated,
            low.bytes_deduplicated
        );
    }

    #[test]
    fn zero_frontends_is_a_config_error() {
        let gen = small_gen(48);
        let cfg = ReplayConfig {
            frontends: 0,
            ..ReplayConfig::default()
        };
        assert!(replay_trace(&gen, &cfg).is_err());
    }

    #[test]
    fn empty_replay_has_full_availability() {
        // Zero operations must read as a fully available service, not 0/0.
        let stats = ReplayStats::default();
        assert_eq!(stats.availability(), 1.0);
    }

    #[test]
    fn none_plan_replay_matches_fair_weather_bit_for_bit() {
        let gen = small_gen(51);
        let cfg = ReplayConfig::default();
        let (_, clean) = replay_trace(&gen, &cfg).unwrap();
        let plan = FaultPlan::none(cfg.frontends);
        let (_, faulted) = replay_trace_faulted(&gen, &cfg, &plan, RetryPolicy::default()).unwrap();
        assert_eq!(clean, faulted);
    }

    #[test]
    fn faulted_replay_is_deterministic() {
        let gen = small_gen(53);
        let cfg = ReplayConfig::default();
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: 9,
            horizon_ms: gen.config().horizon_ms(),
            n_frontends: cfg.frontends,
            ..FaultPlanConfig::default()
        })
        .unwrap();
        let retry = RetryPolicy::default();
        let (_, a) = replay_trace_faulted(&gen, &cfg, &plan, retry).unwrap();
        let (_, b) = replay_trace_faulted(&gen, &cfg, &plan, retry).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_outage_charges_shared_pool_seeding_to_retrieves() {
        // Every front-end is down for the whole horizon (metadata stays
        // up). All workload stores fail; no user ever owns a file, so
        // every retrieve goes down the shared-pool path, where the
        // seeding store fails too. The accounting contract under test:
        // each defeat is exactly one `failed_retrieves` (the user asked
        // to retrieve), `failed_stores` counts only the workload's own
        // planned stores, and no phantom store attempts appear anywhere —
        // so availability reads exactly zero.
        let gen = small_gen(61);
        let cfg = ReplayConfig::default();
        let mut plan = FaultPlan::none(cfg.frontends);
        for w in &mut plan.frontend_outages {
            *w = mcs_faults::Windows::new(vec![(0, u64::MAX)]);
        }
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let (_, stats) = replay_trace_faulted(&gen, &cfg, &plan, retry).unwrap();
        assert!(stats.failed_stores > 0);
        assert!(stats.retrieves > 0);
        assert_eq!(stats.stores, 0);
        assert_eq!(stats.failed_retrieves, stats.retrieves);
        assert_eq!(stats.retrieve_misses, 0);
        assert_eq!(stats.bytes_downloaded, 0);
        assert_eq!(stats.availability(), 0.0);
    }

    #[test]
    fn observed_replay_matches_plain_and_snapshot_is_stable() {
        let gen = small_gen(43);
        let cfg = ReplayConfig::default();
        let (_, plain) = replay_trace(&gen, &cfg).unwrap();
        let (_, stats, snap) = replay_trace_observed(&gen, &cfg).unwrap();
        // The observed run is the same replay, and the snapshot can never
        // disagree with the struct it was materialised from.
        assert_eq!(plain, stats);
        assert_eq!(snap.counters["replay.stores"], stats.stores);
        assert_eq!(snap.counters["replay.bytes_uploaded"], stats.bytes_uploaded);
        assert_eq!(snap.counters["storage.retries"], stats.retries);
        assert_eq!(snap.histograms["replay.store_bytes"].count, stats.stores);
        // Byte-identical export across runs.
        let (_, _, again) = replay_trace_observed(&gen, &cfg).unwrap();
        assert_eq!(snap.to_json(), again.to_json());
    }

    #[test]
    fn snapshot_counts_one_sim_event_per_operation() {
        // Every planned operation is exactly one event on its front-end's
        // timeline component, so the sim.* counters must tie out against
        // the replay's own operation counts.
        let gen = small_gen(43);
        let cfg = ReplayConfig::default();
        let (_, stats, snap) = replay_trace_observed(&gen, &cfg).unwrap();
        assert_eq!(
            snap.counters["sim.steps"],
            stats.stores + stats.failed_stores + stats.retrieves
        );
        let per_fe: u64 = (0..cfg.frontends)
            .map(|fe| snap.counters[&format!("sim.events.frontend/{fe}")])
            .sum();
        assert_eq!(per_fe, snap.counters["sim.steps"]);
        // More than one front-end actually sees traffic.
        let busy = (0..cfg.frontends)
            .filter(|fe| snap.counters[&format!("sim.events.frontend/{fe}")] > 0)
            .count();
        assert!(busy > 1, "only {busy} of {} front-ends busy", cfg.frontends);
    }

    #[test]
    fn resumable_replay_saves_bytes_over_whole_file_retry() {
        let gen = small_gen(57);
        let cfg = ReplayConfig::default();
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: 3,
            horizon_ms: gen.config().horizon_ms(),
            n_frontends: cfg.frontends,
            frontend_outages_per_day: 24.0,
            frontend_outage_mean_ms: 1_800_000.0,
            frontend_brownouts_per_day: 24.0,
            frontend_brownout_mean_ms: 3_600_000.0,
            chunk_timeout_prob: 0.9,
            metadata_outages_per_day: 12.0,
            metadata_outage_mean_ms: 600_000.0,
            ..FaultPlanConfig::default()
        })
        .unwrap();
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let whole = replay_trace_faulted(
            &gen,
            &ReplayConfig {
                resumable: false,
                ..cfg
            },
            &plan,
            retry,
        )
        .unwrap()
        .1;
        let resume = replay_trace_faulted(&gen, &cfg, &plan, retry).unwrap().1;
        // Whole-file retry never resumes, by definition.
        assert_eq!(whole.resumed_transfers, 0);
        assert_eq!(whole.resume_saved_bytes, 0);
        // The resumable protocol does, and the savings are real bytes.
        assert!(resume.resumed_transfers > 0, "{resume:?}");
        assert!(resume.resume_saved_bytes > 0, "{resume:?}");
    }

    #[test]
    fn aggressive_plan_degrades_gracefully() {
        let gen = small_gen(57);
        let cfg = ReplayConfig::default();
        // Heavy, long outages: plenty of fault activity, no panics.
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: 3,
            horizon_ms: gen.config().horizon_ms(),
            n_frontends: cfg.frontends,
            frontend_outages_per_day: 24.0,
            frontend_outage_mean_ms: 1_800_000.0,
            frontend_brownouts_per_day: 24.0,
            frontend_brownout_mean_ms: 3_600_000.0,
            chunk_timeout_prob: 0.9,
            metadata_outages_per_day: 12.0,
            metadata_outage_mean_ms: 600_000.0,
            ..FaultPlanConfig::default()
        })
        .unwrap();
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let (_, stats) = replay_trace_faulted(&gen, &cfg, &plan, retry).unwrap();
        let avail = stats.availability();
        assert!(avail < 1.0, "faults must cost availability: {avail}");
        assert!(avail > 0.1, "service must not collapse entirely: {avail}");
        assert!(stats.retries > 0);
        assert!(stats.failed_stores + stats.failed_retrieves > 0);
        assert!(stats.chunk_timeouts > 0);
        assert!(stats.retry_bytes > 0, "timeouts inflate traffic");
    }
}
