//! Hot/warm storage tiering with an f4-style cost model (Table 4
//! implication: "the cold/warm storage solution (e.g. f4) can cut the cost
//! down significantly").
//!
//! Facebook's f4 keeps *warm* blobs at an effective replication factor of
//! 2.1 (Reed–Solomon across cells) against 3.6 for hot Haystack storage;
//! we use 3.0 vs 2.1 as round numbers. Since most uploads in the examined
//! service are never read back within a week, migrating them to the warm
//! tier quickly saves a large share of raw storage.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Which tier an object currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Replicated hot storage (fast reads).
    Hot,
    /// Erasure-coded warm storage (cheaper, slower reads).
    Warm,
}

/// Tiering policy and cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierPolicy {
    /// Days without access after which an object migrates to warm.
    pub warm_after_days: f64,
    /// Effective replication factor of the hot tier.
    pub hot_replication: f64,
    /// Effective replication factor of the warm tier (f4: 2.1).
    pub warm_replication: f64,
    /// Whether a warm read promotes the object back to hot.
    pub promote_on_read: bool,
}

impl Default for TierPolicy {
    fn default() -> Self {
        Self {
            warm_after_days: 3.0,
            hot_replication: 3.0,
            warm_replication: 2.1,
            promote_on_read: true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Object {
    bytes: u64,
    last_access_ms: u64,
    tier: Tier,
}

/// Tiering statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TierStats {
    /// Objects migrated hot → warm.
    pub demotions: u64,
    /// Objects promoted warm → hot.
    pub promotions: u64,
    /// Reads served from the hot tier.
    pub hot_reads: u64,
    /// Reads served from the warm tier (slower; §3.1.4 resilience note).
    pub warm_reads: u64,
}

/// A tiered object store driven by access timestamps.
///
/// Objects live in a `BTreeMap` so bulk passes like
/// [`demote_all_eligible`](Self::demote_all_eligible) visit them in id
/// order — stat counters then accumulate identically run-to-run.
#[derive(Debug)]
pub struct TieredStore {
    policy: TierPolicy,
    objects: BTreeMap<u64, Object>,
    /// Counters.
    pub stats: TierStats,
}

impl TieredStore {
    /// Creates an empty store.
    pub fn new(policy: TierPolicy) -> Self {
        Self {
            policy,
            objects: BTreeMap::new(),
            stats: TierStats::default(),
        }
    }

    /// Ingests an object (uploads land hot).
    pub fn put(&mut self, id: u64, bytes: u64, now_ms: u64) {
        self.objects.insert(
            id,
            Object {
                bytes,
                last_access_ms: now_ms,
                tier: Tier::Hot,
            },
        );
    }

    /// Reads an object, returning its current tier (after any promotion).
    pub fn read(&mut self, id: u64, now_ms: u64) -> Option<Tier> {
        // Lazy demotion before the read (migration daemons run continuously
        // in real systems; lazy evaluation is equivalent for accounting).
        self.maybe_demote(id, now_ms);
        let policy = self.policy;
        let obj = self.objects.get_mut(&id)?;
        let served_from = obj.tier;
        match served_from {
            Tier::Hot => self.stats.hot_reads += 1,
            Tier::Warm => {
                self.stats.warm_reads += 1;
                if policy.promote_on_read {
                    obj.tier = Tier::Hot;
                    self.stats.promotions += 1;
                }
            }
        }
        obj.last_access_ms = now_ms;
        Some(served_from)
    }

    fn maybe_demote(&mut self, id: u64, now_ms: u64) {
        let threshold_ms = (self.policy.warm_after_days * 86_400_000.0) as u64;
        if let Some(obj) = self.objects.get_mut(&id) {
            if obj.tier == Tier::Hot && now_ms.saturating_sub(obj.last_access_ms) > threshold_ms {
                obj.tier = Tier::Warm;
                self.stats.demotions += 1;
            }
        }
    }

    /// Runs demotion across every object (end-of-trace accounting).
    pub fn demote_all_eligible(&mut self, now_ms: u64) {
        let ids: Vec<u64> = self.objects.keys().copied().collect();
        for id in ids {
            self.maybe_demote(id, now_ms);
        }
    }

    /// Raw bytes weighted by replication factor — the capacity the cluster
    /// must own.
    pub fn provisioned_bytes(&self) -> f64 {
        self.objects
            .values()
            .map(|o| {
                o.bytes as f64
                    * match o.tier {
                        Tier::Hot => self.policy.hot_replication,
                        Tier::Warm => self.policy.warm_replication,
                    }
            })
            .sum()
    }

    /// Capacity if everything stayed hot (the no-tiering baseline).
    pub fn provisioned_bytes_all_hot(&self) -> f64 {
        self.objects
            .values()
            .map(|o| o.bytes as f64 * self.policy.hot_replication)
            .sum()
    }

    /// Relative capacity saving vs the all-hot baseline.
    pub fn capacity_saving(&self) -> f64 {
        let base = self.provisioned_bytes_all_hot();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.provisioned_bytes() / base
        }
    }

    /// Objects currently warm.
    pub fn warm_fraction(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        let warm = self
            .objects
            .values()
            .filter(|o| o.tier == Tier::Warm)
            .count();
        warm as f64 / self.objects.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400_000;

    #[test]
    fn uploads_land_hot() {
        let mut st = TieredStore::new(TierPolicy::default());
        st.put(1, 1000, 0);
        assert_eq!(st.read(1, 1000), Some(Tier::Hot));
        assert_eq!(st.stats.hot_reads, 1);
        assert_eq!(st.warm_fraction(), 0.0);
    }

    #[test]
    fn idle_objects_demote() {
        let mut st = TieredStore::new(TierPolicy::default());
        st.put(1, 1000, 0);
        st.demote_all_eligible(4 * DAY);
        assert_eq!(st.stats.demotions, 1);
        assert_eq!(st.warm_fraction(), 1.0);
    }

    #[test]
    fn warm_read_promotes() {
        let mut st = TieredStore::new(TierPolicy::default());
        st.put(1, 1000, 0);
        // Read after 5 idle days: served warm, promoted back.
        assert_eq!(st.read(1, 5 * DAY), Some(Tier::Warm));
        assert_eq!(st.stats.warm_reads, 1);
        assert_eq!(st.stats.promotions, 1);
        // Immediately after: hot again.
        assert_eq!(st.read(1, 5 * DAY + 1000), Some(Tier::Hot));
    }

    #[test]
    fn promotion_can_be_disabled() {
        let mut st = TieredStore::new(TierPolicy {
            promote_on_read: false,
            ..TierPolicy::default()
        });
        st.put(1, 1000, 0);
        assert_eq!(st.read(1, 5 * DAY), Some(Tier::Warm));
        assert_eq!(st.read(1, 5 * DAY + 1), Some(Tier::Warm));
        assert_eq!(st.stats.promotions, 0);
    }

    #[test]
    fn cost_saving_matches_f4_arithmetic() {
        let mut st = TieredStore::new(TierPolicy::default());
        for id in 0..10 {
            st.put(id, 1_000_000, 0);
        }
        // Nothing accessed for a week: all demote.
        st.demote_all_eligible(7 * DAY);
        // Saving = 1 − 2.1/3.0 = 0.30.
        assert!((st.capacity_saving() - 0.30).abs() < 1e-9);
        // Mixed case: half stay hot.
        let mut st2 = TieredStore::new(TierPolicy::default());
        for id in 0..10 {
            st2.put(id, 1_000_000, 0);
        }
        for id in 0..5 {
            let _ = st2.read(id, 6 * DAY); // warm read promotes to hot
        }
        st2.demote_all_eligible(7 * DAY);
        assert!(st2.capacity_saving() > 0.10 && st2.capacity_saving() < 0.30);
    }

    #[test]
    fn missing_object_read_none() {
        let mut st = TieredStore::new(TierPolicy::default());
        assert_eq!(st.read(404, 0), None);
    }
}
