//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! The examined service identifies every file and every 512 KB chunk by its
//! MD5 hash (§2.1); the metadata server's deduplication hinges on it. MD5
//! is used here strictly as a *content identifier*, exactly as the service
//! used it — it is not fit for any security purpose.

/// A 16-byte MD5 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// Lowercase hexadecimal rendering (the form log files carry).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            // mcs-lint: allow(panic, nibbles are < 16, always valid hex digits)
            s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        s
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `K[i] = floor(2^32 · |sin(i + 1)|)`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Padding: 0x80 then zeros to 56 mod 64, then the length.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Careful: the two updates above also bump length_bytes, but the
        // length field must be the original message length (captured
        // before padding).
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block.clone());
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            // mcs-lint: allow(panic, chunks_exact(4) guarantees 4-byte slices)
            m[i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot digest of a byte slice.
pub fn md5(data: &[u8]) -> Digest {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(md5(input).to_hex(), expect, "input {input:?}");
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let oneshot = md5(&data);
        for split in [0usize, 1, 63, 64, 65, 128, 1000, data.len()] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths straddling the 55/56/64-byte padding boundaries.
        for len in 50..70usize {
            let data = vec![0xabu8; len];
            let d1 = md5(&data);
            // Byte-at-a-time must agree.
            let mut h = Md5::new();
            for &b in &data {
                h.update(&[b]);
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn display_is_hex() {
        let d = md5(b"abc");
        assert_eq!(format!("{d}"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(d.to_hex().len(), 32);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Not a collision test — just sanity that content changes digests.
        let a = md5(b"file-content-1");
        let b = md5(b"file-content-2");
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn prop_incremental_any_split(
            data in proptest::collection::vec(any::<u8>(), 0..300),
            split in 0usize..300,
        ) {
            let split = split.min(data.len());
            let oneshot = md5(&data);
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), oneshot);
        }

        #[test]
        fn prop_deterministic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            prop_assert_eq!(md5(&data), md5(&data));
        }
    }
}
