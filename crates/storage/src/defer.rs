//! "Smart" auto backup: deferred uploads (§3.2.2 implication).
//!
//! The paper observes that over 80 % of mobile users never retrieve their
//! uploads within the following week, so most uploads could be deferred
//! from the 9–11 PM peak into the early-morning trough — cutting the peak
//! load the service must provision for. The risk is QoE: a user (or their
//! PC) syncing soon after the upload would find the file still pending.
//!
//! [`DeferPolicy`] implements the scheduler; [`evaluate_deferral`] replays
//! an upload workload with and without it and reports the peak-load
//! reduction and the QoE-violation rate.

use serde::{Deserialize, Serialize};

/// Deferral policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeferPolicy {
    /// Hours of day treated as peak (inclusive range, e.g. 19..=23).
    pub peak_start_hour: u32,
    /// Last peak hour (inclusive).
    pub peak_end_hour: u32,
    /// First hour of day deferred uploads run (the early-morning trough).
    pub run_hour: u32,
    /// Width of the trough window: deferred jobs are spread
    /// deterministically across `[run_hour, run_hour + spread_hours)` so
    /// the deferred mass flattens instead of forming a new peak.
    pub spread_hours: u32,
    /// Maximum hours an upload may wait before it is forced through.
    pub max_defer_hours: u32,
}

impl Default for DeferPolicy {
    fn default() -> Self {
        Self {
            peak_start_hour: 19,
            peak_end_hour: 23,
            run_hour: 2,
            spread_hours: 5,
            max_defer_hours: 12,
        }
    }
}

impl DeferPolicy {
    /// Whether `hour` (of day) is in the peak window.
    pub fn is_peak_hour(&self, hour: u32) -> bool {
        let h = hour % 24;
        if self.peak_start_hour <= self.peak_end_hour {
            (self.peak_start_hour..=self.peak_end_hour).contains(&h)
        } else {
            h >= self.peak_start_hour || h <= self.peak_end_hour
        }
    }

    /// When an upload submitted at `now_ms` actually executes. Peak-hour
    /// submissions are deferred to the next `run_hour`, bounded by
    /// `max_defer_hours`; off-peak submissions run immediately.
    ///
    /// When the trough slot is out of reach of the cap, the job runs at
    /// the earliest off-peak instant within the cap — or immediately if
    /// even that cannot escape the peak window. A deferred job therefore
    /// *never* executes inside the peak (the whole point of deferring).
    pub fn execute_at_ms(&self, now_ms: u64) -> u64 {
        let hour_of_day = ((now_ms / 3_600_000) % 24) as u32;
        if !self.is_peak_hour(hour_of_day) {
            return now_ms;
        }
        // Deterministic slot within the trough window (SplitMix-style hash
        // of the submission time keeps the spread uniform and replayable).
        let mut h = now_ms.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 31;
        let slot_ms = h % (self.spread_hours.max(1) as u64 * 3_600_000);
        let day_start = now_ms - (now_ms % 86_400_000); // mcs-lint: allow(time-arith, x - (x % d) cannot underflow)
        let today_run = day_start
            .saturating_add(self.run_hour as u64 * 3_600_000)
            .saturating_add(slot_ms);
        let target = if today_run > now_ms {
            today_run
        } else {
            today_run.saturating_add(86_400_000)
        };
        let cap = now_ms.saturating_add(self.max_defer_hours as u64 * 3_600_000);
        if target <= cap {
            return target;
        }
        // The trough is unreachable. An earlier revision clamped `target`
        // straight to `cap`, which can land *inside* the very peak the job
        // was fleeing (peak 19-23, 2 h cap, 19:30 submission → "deferred"
        // to 21:30). Walk to the first off-peak hour boundary instead.
        let mut hour = now_ms / 3_600_000 + 1;
        let peak_exit = loop {
            if !self.is_peak_hour((hour % 24) as u32) {
                break hour.saturating_mul(3_600_000);
            }
            hour = hour.saturating_add(1);
            if hour > now_ms / 3_600_000 + 25 {
                return now_ms; // every hour is peak: nothing to escape to
            }
        };
        if peak_exit <= cap {
            peak_exit
        } else {
            now_ms // deferring within the cap cannot leave the peak
        }
    }
}

/// One upload job for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UploadJob {
    /// Submission time, ms since trace start.
    pub submitted_ms: u64,
    /// Bytes.
    pub bytes: u64,
    /// Time of the owner's first retrieval attempt of this content after
    /// upload, if any (for QoE accounting).
    pub first_retrieval_ms: Option<u64>,
}

/// Result of replaying a workload through a deferral policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeferralReport {
    /// Hourly upload bytes without deferral.
    pub immediate_hourly: Vec<f64>,
    /// Hourly upload bytes with deferral.
    pub deferred_hourly: Vec<f64>,
    /// Jobs deferred.
    pub deferred_jobs: u64,
    /// Total jobs.
    pub total_jobs: u64,
    /// Jobs whose owner tried to retrieve before the deferred upload ran
    /// (the QoE risk the paper flags).
    pub qoe_violations: u64,
}

impl DeferralReport {
    /// Peak hourly load without deferral, bytes.
    pub fn peak_immediate(&self) -> f64 {
        self.immediate_hourly.iter().copied().fold(0.0, f64::max)
    }

    /// Peak hourly load with deferral, bytes.
    pub fn peak_deferred(&self) -> f64 {
        self.deferred_hourly.iter().copied().fold(0.0, f64::max)
    }

    /// Relative peak reduction (0.3 = 30 % lower peak).
    pub fn peak_reduction(&self) -> f64 {
        let p = self.peak_immediate();
        if p == 0.0 {
            0.0
        } else {
            1.0 - self.peak_deferred() / p
        }
    }

    /// Mean of the `k` highest-load hours — the capacity-planning view of
    /// "peak". The absolute hourly maximum is set by single monster
    /// sessions that no hour-shifting policy can flatten; provisioning
    /// targets a high percentile instead.
    pub fn top_k_mean(hourly: &[f64], k: usize) -> f64 {
        let mut v = hourly.to_vec();
        v.sort_by(|a, b| f64::total_cmp(b, a));
        let k = k.max(1).min(v.len());
        v[..k].iter().sum::<f64>() / k as f64
    }

    /// Relative reduction of the top-`k`-hour mean load.
    pub fn top_k_peak_reduction(&self, k: usize) -> f64 {
        let p = Self::top_k_mean(&self.immediate_hourly, k);
        if p == 0.0 {
            0.0
        } else {
            1.0 - Self::top_k_mean(&self.deferred_hourly, k) / p
        }
    }

    /// Volume landing inside a peak hour-of-day window, for one series.
    pub fn window_volume(hourly: &[f64], policy: &DeferPolicy) -> f64 {
        hourly
            .iter()
            .enumerate()
            .filter(|(h, _)| policy.is_peak_hour((h % 24) as u32))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Fraction of peak-window load the policy moved out of the window —
    /// the §3.2.2 mechanism itself, independent of how outlier-heavy the
    /// hourly maxima are at a given population scale.
    pub fn peak_window_reduction(&self, policy: &DeferPolicy) -> f64 {
        let before = Self::window_volume(&self.immediate_hourly, policy);
        if before == 0.0 {
            0.0
        } else {
            1.0 - Self::window_volume(&self.deferred_hourly, policy) / before
        }
    }

    /// QoE violation rate among all jobs.
    pub fn qoe_violation_rate(&self) -> f64 {
        self.qoe_violations as f64 / self.total_jobs.max(1) as f64
    }
}

/// Replays `jobs` through `policy` over a `horizon_hours` trace.
pub fn evaluate_deferral(
    jobs: &[UploadJob],
    policy: &DeferPolicy,
    horizon_hours: usize,
) -> DeferralReport {
    // One extra day so the final day's deferrals land in their real slots
    // instead of clamping into the trace's last hour.
    let hours = horizon_hours.max(1) + 24;
    let mut immediate = vec![0.0f64; hours];
    let mut deferred = vec![0.0f64; hours];
    let clamp = |ms: u64| ((ms / 3_600_000) as usize).min(hours - 1);
    let mut deferred_jobs = 0;
    let mut violations = 0;
    for job in jobs {
        immediate[clamp(job.submitted_ms)] += job.bytes as f64;
        let run_at = policy.execute_at_ms(job.submitted_ms);
        if run_at > job.submitted_ms {
            deferred_jobs += 1;
            // The backup agent paces a deferred batch across the whole
            // trough window rather than blasting it at the window start —
            // otherwise heavy-tailed upload batches simply rebuild the
            // peak a few hours later.
            let window_start = run_at - (run_at % 86_400_000) + policy.run_hour as u64 * 3_600_000;
            let window_start = if window_start > run_at {
                window_start - 86_400_000
            } else {
                window_start
            };
            let window_ms = policy.spread_hours.max(1) as u64 * 3_600_000;
            if run_at < window_start.saturating_add(window_ms) {
                let slices = policy.spread_hours.max(1) as u64;
                for j in 0..slices {
                    deferred[clamp(window_start + j * 3_600_000)] +=
                        job.bytes as f64 / slices as f64;
                }
            } else {
                // Cap-bounded jobs run outside the trough window, as one
                // batch at their scheduled hour. An earlier revision paced
                // them from the *window start of run_at's day*, charging
                // hours that precede the submission itself — load
                // travelling backwards on the timeline.
                deferred[clamp(run_at)] += job.bytes as f64;
            }
            if let Some(r) = job.first_retrieval_ms {
                if r < run_at {
                    violations += 1;
                }
            }
        } else {
            deferred[clamp(run_at)] += job.bytes as f64;
        }
    }
    DeferralReport {
        immediate_hourly: immediate,
        deferred_hourly: deferred,
        deferred_jobs,
        total_jobs: jobs.len() as u64,
        qoe_violations: violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: u64 = 3_600_000;

    #[test]
    fn execute_at_near_end_of_time_does_not_wrap() {
        // Regression: the defer cap was computed with a bare
        // `now_ms + max_defer_hours * H`. For submissions near
        // `u64::MAX` the cap wrapped to a tiny value, so every deferral
        // target compared "over cap" and the walk to the next off-peak
        // hour overflowed too (debug panic / release wrap-around into the
        // past). The policy must stay total over the whole u64 domain.
        let p = DeferPolicy::default();
        // A peak-hour submission close enough to the end of time that
        // both the cap and the trough target overflow a bare add.
        let day = 86_400_000u64;
        // Start of the last *full* day before the end of time (the final
        // partial day is too short to ever reach hour 20).
        let day_start = u64::MAX - (u64::MAX % day) - day;
        let now_ms = day_start + 20 * H; // hour 20: peak
        assert!(p.is_peak_hour(((now_ms / H) % 24) as u32));
        let at = p.execute_at_ms(now_ms);
        assert!(at >= now_ms, "deferral must never travel back in time");
    }

    #[test]
    fn peak_hours_detected() {
        let p = DeferPolicy::default();
        assert!(p.is_peak_hour(19));
        assert!(p.is_peak_hour(23));
        assert!(!p.is_peak_hour(18));
        assert!(!p.is_peak_hour(0));
        // Wrapping window.
        let wrap = DeferPolicy {
            peak_start_hour: 22,
            peak_end_hour: 1,
            ..p
        };
        assert!(wrap.is_peak_hour(23));
        assert!(wrap.is_peak_hour(0));
        assert!(!wrap.is_peak_hour(12));
    }

    #[test]
    fn off_peak_runs_immediately() {
        let p = DeferPolicy::default();
        let t = 10 * H; // 10 AM
        assert_eq!(p.execute_at_ms(t), t);
    }

    #[test]
    fn peak_defers_to_next_morning_trough() {
        let p = DeferPolicy::default();
        let t = 21 * H; // 9 PM day 0
        let run = p.execute_at_ms(t);
        // Somewhere in [2 AM, 7 AM) the next day.
        assert!(run >= 24 * H + 2 * H, "run {run}");
        assert!(run < 24 * H + 7 * H, "run {run}");
        // Deterministic.
        assert_eq!(run, p.execute_at_ms(t));
    }

    #[test]
    fn defer_capped_by_max_hours() {
        let p = DeferPolicy {
            max_defer_hours: 3,
            ..DeferPolicy::default()
        };
        let t = 21 * H;
        // Hour 24 is midnight — the peak exit, which here coincides with
        // the cap.
        assert_eq!(p.execute_at_ms(t), t + 3 * H);
    }

    #[test]
    fn capped_defer_never_lands_back_in_peak() {
        // Regression (fails on the pre-fix code): with peak 19-23 and a
        // 2 h cap, a 19:30 submission used to be "deferred" to 21:30 —
        // deeper into the very peak it was fleeing, because the trough
        // target was clamped straight to the cap. A submission that cannot
        // escape its peak window within the cap is now not deferred at all.
        let p = DeferPolicy {
            max_defer_hours: 2,
            ..DeferPolicy::default()
        };
        let t = 19 * H + H / 2;
        assert_eq!(p.execute_at_ms(t), t);
    }

    #[test]
    fn capped_defer_runs_at_peak_exit_not_at_cap() {
        // Regression (fails on the pre-fix code): a 9 PM submission with a
        // 4 h cap used to run at the cap (1 AM) even though the peak ends
        // at midnight; the earliest off-peak instant inside the cap wins.
        let p = DeferPolicy {
            max_defer_hours: 4,
            ..DeferPolicy::default()
        };
        let t = 21 * H;
        assert_eq!(p.execute_at_ms(t), 24 * H);
    }

    #[test]
    fn capped_jobs_never_charge_hours_before_submission() {
        // Regression (fails on the pre-fix code): a cap-bounded job
        // running at midnight was paced across [2 AM, 7 AM) *of the same
        // day* — hours long past by the 9 PM submission. Deferred load
        // must only ever land at or after the submission hour.
        let jobs = vec![UploadJob {
            submitted_ms: 21 * H,
            bytes: 5_000_000,
            first_retrieval_ms: None,
        }];
        let p = DeferPolicy {
            max_defer_hours: 4,
            ..DeferPolicy::default()
        };
        let report = evaluate_deferral(&jobs, &p, 48);
        assert_eq!(report.deferred_jobs, 1);
        for (hour, &load) in report.deferred_hourly.iter().enumerate() {
            if load > 0.0 {
                assert!(hour >= 21, "load {load} charged to hour {hour}");
            }
        }
        // Volume conserved.
        let total: f64 = report.deferred_hourly.iter().sum();
        assert!((total - 5_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn evaluation_reduces_peak() {
        // 100 jobs at 9 PM (peak), 10 at noon.
        let mut jobs = Vec::new();
        for i in 0..100 {
            jobs.push(UploadJob {
                submitted_ms: 21 * H + i,
                bytes: 1_500_000,
                first_retrieval_ms: None,
            });
        }
        for i in 0..10 {
            jobs.push(UploadJob {
                submitted_ms: 12 * H + i,
                bytes: 1_500_000,
                first_retrieval_ms: None,
            });
        }
        let report = evaluate_deferral(&jobs, &DeferPolicy::default(), 48);
        assert_eq!(report.deferred_jobs, 100);
        assert!(report.peak_reduction() > 0.7, "{}", report.peak_reduction());
        assert_eq!(report.qoe_violations, 0);
        // Total volume conserved.
        let a: f64 = report.immediate_hourly.iter().sum();
        let b: f64 = report.deferred_hourly.iter().sum();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn qoe_violations_counted() {
        let jobs = vec![
            // Uploaded 9 PM, user syncs PC at 11 PM — before the 4 AM run.
            UploadJob {
                submitted_ms: 21 * H,
                bytes: 1000,
                first_retrieval_ms: Some(23 * H),
            },
            // Uploaded 9 PM, retrieved 3 days later — fine.
            UploadJob {
                submitted_ms: 21 * H,
                bytes: 1000,
                first_retrieval_ms: Some(3 * 24 * H),
            },
            // Never retrieved (the 80 % case).
            UploadJob {
                submitted_ms: 21 * H,
                bytes: 1000,
                first_retrieval_ms: None,
            },
        ];
        let report = evaluate_deferral(&jobs, &DeferPolicy::default(), 7 * 24);
        assert_eq!(report.qoe_violations, 1);
        assert!((report.qoe_violation_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const H: u64 = 3_600_000;

    /// Policies whose trough window is disjoint from the peak: an evening
    /// peak (possibly wrapping past midnight into 0-2) and an early-
    /// morning trough inside [4, 13).
    fn arb_policy() -> impl Strategy<Value = DeferPolicy> {
        (19u32..24, 0u32..4, 4u32..9, 1u32..6, 1u32..25).prop_map(
            |(peak_start, end_sel, run_hour, spread_hours, max_defer_hours)| DeferPolicy {
                peak_start_hour: peak_start,
                peak_end_hour: if end_sel == 3 { 23 } else { end_sel },
                run_hour,
                spread_hours,
                max_defer_hours,
            },
        )
    }

    proptest! {
        // The wrap-around branch of `is_peak_hour` against an independent
        // model: membership in start..=end on a 24 h ring is
        // `(h - start) mod 24 <= (end - start) mod 24`.
        #[test]
        fn peak_membership_matches_rotated_model(
            start in 0u32..24,
            end in 0u32..24,
            hour in 0u32..48,
        ) {
            let p = DeferPolicy {
                peak_start_hour: start,
                peak_end_hour: end,
                ..DeferPolicy::default()
            };
            let h = hour % 24;
            let model = (h + 24 - start) % 24 <= (end + 24 - start) % 24;
            prop_assert_eq!(p.is_peak_hour(hour), model);
        }

        // Off-peak submissions are the identity: no hash, no clamp, no
        // drift.
        #[test]
        fn off_peak_submissions_run_immediately(
            policy in arb_policy(),
            t in 0u64..(14 * 24 * H),
        ) {
            let hour = ((t / H) % 24) as u32;
            prop_assume!(!policy.is_peak_hour(hour));
            prop_assert_eq!(policy.execute_at_ms(t), t);
        }

        // The scheduling contract: never early, never past the cap, and a
        // *deferred* job never executes inside the peak window (this last
        // clause is the regression the old cap-clamp violated).
        #[test]
        fn deferral_bounded_and_lands_off_peak(
            policy in arb_policy(),
            t in 0u64..(14 * 24 * H),
        ) {
            let run = policy.execute_at_ms(t);
            let cap = t + policy.max_defer_hours as u64 * H;
            prop_assert!(run >= t, "run {run} before submission {t}");
            prop_assert!(run <= cap, "run {run} past cap {cap}");
            if run > t {
                let hour = ((run / H) % 24) as u32;
                prop_assert!(
                    !policy.is_peak_hour(hour),
                    "deferred into peak hour {hour}"
                );
            }
        }
    }
}
