//! Operation-level failures of the fault-aware service paths.
//!
//! [`crate::service::StorageService::try_store`] and
//! [`crate::service::StorageService::try_retrieve`] return these instead of
//! panicking or silently succeeding: under an injected
//! [`mcs_faults::FaultPlan`], an operation that exhausts its retry budget
//! surfaces *which* component defeated it, so the replay layer can account
//! degraded-mode behaviour per failure class.

use std::fmt;

/// Why a fault-aware operation ultimately failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The metadata server was unavailable for every attempt.
    MetadataUnavailable {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Every front-end was in an outage window on every attempt.
    AllFrontendsDown {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The one front-end holding the content stayed down (retrievals
    /// cannot fail over: the content has a single home).
    FrontendUnavailable {
        /// The unavailable front-end.
        frontend: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Chunk transfers kept timing out on a browned-out front-end.
    ChunkTimeout {
        /// The front-end the transfers targeted.
        frontend: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The path (or URL) does not resolve — not a fault, just absent.
    NotFound,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::MetadataUnavailable { attempts } => {
                write!(f, "metadata server unavailable after {attempts} attempt(s)")
            }
            ServiceError::AllFrontendsDown { attempts } => {
                write!(f, "all front-ends down after {attempts} attempt(s)")
            }
            ServiceError::FrontendUnavailable { frontend, attempts } => {
                write!(
                    f,
                    "front-end {frontend} unavailable after {attempts} attempt(s)"
                )
            }
            ServiceError::ChunkTimeout { frontend, attempts } => {
                write!(
                    f,
                    "chunk transfer to front-end {frontend} timed out after {attempts} attempt(s)"
                )
            }
            ServiceError::NotFound => write!(f, "path not found"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    /// True when the failure was fault-induced (as opposed to the path
    /// simply not existing) — the replay layer's availability accounting
    /// only counts these against the service.
    pub fn is_fault(&self) -> bool {
        !matches!(self, ServiceError::NotFound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_component_and_attempts() {
        let e = ServiceError::MetadataUnavailable { attempts: 4 };
        assert_eq!(
            e.to_string(),
            "metadata server unavailable after 4 attempt(s)"
        );
        let e = ServiceError::FrontendUnavailable {
            frontend: 2,
            attempts: 3,
        };
        assert!(e.to_string().contains("front-end 2"));
        assert!(e.is_fault());
        assert!(!ServiceError::NotFound.is_fault());
        assert_eq!(ServiceError::NotFound.to_string(), "path not found");
    }
}
