//! The logical simulation clock.
//!
//! A [`SimClock`] is the *only* notion of "now" in a simulation. It is
//! monotone by construction: [`SimClock::advance_to`] refuses to move
//! backwards with a typed [`TimelineError`] instead of silently reordering
//! causality. The event queue owns one and advances it as events pop;
//! components read it through their [`crate::engine::Ctx`] and never write
//! it — see DESIGN.md §10 for the full contract.

use crate::queue::{Time, TimelineError, MS};

/// A monotone logical clock in microsecond [`Time`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now: Time,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// Current logical time, µs.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current logical time on the service layer's millisecond clock.
    pub fn now_ms(&self) -> u64 {
        self.now / MS
    }

    /// Advances the clock to `at` and returns the new time. Moving
    /// backwards is a causality violation and yields a typed error; the
    /// clock is left unchanged.
    pub fn advance_to(&mut self, at: Time) -> Result<Time, TimelineError> {
        if at < self.now {
            return Err(TimelineError::PastEvent { at, now: self.now });
        }
        self.now = at;
        Ok(self.now)
    }

    /// Advances the clock by a relative delay (always legal) and returns
    /// the new time. Saturates at the end of time: a wrapping add would
    /// silently move the clock *backwards*, breaking the monotonicity
    /// invariant every downstream measurement rests on.
    pub fn advance_by(&mut self, delay: Time) -> Time {
        self.now = self.now.saturating_add(delay);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance_to(5 * MS), Ok(5 * MS));
        assert_eq!(c.now(), 5 * MS);
        assert_eq!(c.now_ms(), 5);
        assert_eq!(c.advance_by(MS), 6 * MS);
    }

    #[test]
    fn advancing_to_now_is_legal() {
        let mut c = SimClock::new();
        c.advance_to(100).unwrap();
        assert_eq!(c.advance_to(100), Ok(100));
    }

    #[test]
    fn advance_by_saturates_instead_of_wrapping() {
        // Regression: `advance_by` used a bare `+=`, which near the end of
        // time panicked in debug builds and wrapped the clock *backwards*
        // in release builds — silently breaking monotonicity.
        let mut c = SimClock::new();
        c.advance_to(Time::MAX - 5).unwrap();
        assert_eq!(c.advance_by(100), Time::MAX);
        assert_eq!(c.now(), Time::MAX, "clock must never move backwards");
    }

    #[test]
    fn moving_backwards_is_a_typed_error() {
        let mut c = SimClock::new();
        c.advance_to(100).unwrap();
        let err = c.advance_to(99).unwrap_err();
        assert_eq!(err, TimelineError::PastEvent { at: 99, now: 100 });
        assert_eq!(c.now(), 100, "a rejected advance must not move time");
        assert!(err.to_string().contains("past"));
    }
}
