//! Component-handler engine over the shared event queue.
//!
//! The shape follows dslab-core's simulation/component split: a
//! [`Simulation`] owns the timeline (queue + clock) and a roster of named
//! components; user code implements [`Handler`] and receives each event
//! with a [`Ctx`] through which it may read the clock and schedule
//! follow-up events — never advance time directly. Per-component event
//! counts accumulate as the run proceeds and can be flowed into an
//! `mcs-obs` registry with [`Simulation::export_metrics`], giving every
//! layer the same `sim.*` observability surface.

use mcs_obs::Registry;

use crate::queue::{EventQueue, Time, TimelineError};

/// Identifier of a registered component (dense, assigned in registration
/// order, so iterating components is deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(usize);

impl CompId {
    /// The dense index of this component (its registration ordinal).
    pub fn index(self) -> usize {
        self.0
    }
}

/// The per-event view a [`Handler`] gets: read the clock, know which
/// component the event addressed, schedule follow-ups, or halt the run.
pub struct Ctx<'a, E> {
    q: &'a mut EventQueue<(CompId, E)>,
    comp: CompId,
    steps: u64,
    halt: bool,
}

impl<E> Ctx<'_, E> {
    /// Current simulation time, µs.
    pub fn now(&self) -> Time {
        self.q.now()
    }

    /// Current simulation time on the millisecond service clock.
    pub fn now_ms(&self) -> u64 {
        self.q.now_ms()
    }

    /// The component the event being handled was addressed to.
    pub fn component(&self) -> CompId {
        self.comp
    }

    /// Events dispatched so far, including the one being handled.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Schedules `event` for `comp` at absolute time `at`; panics on past
    /// timestamps (see [`EventQueue::schedule`]).
    pub fn schedule(&mut self, at: Time, comp: CompId, event: E) {
        self.q.schedule(at, (comp, event));
    }

    /// Fallible form of [`Ctx::schedule`].
    pub fn try_schedule(&mut self, at: Time, comp: CompId, event: E) -> Result<(), TimelineError> {
        self.q.try_schedule(at, (comp, event))
    }

    /// Schedules `event` for `comp` after a relative delay.
    pub fn schedule_in(&mut self, delay: Time, comp: CompId, event: E) {
        self.q.schedule_in(delay, (comp, event));
    }

    /// Stops the run after this event: remaining queued events are left
    /// unprocessed (used by engines with an event budget).
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

/// A component event handler. One implementor typically owns the state of
/// *all* components (the dslab "simulation component" pattern flattened):
/// `ctx.component()` or the event payload selects the per-component slice.
pub trait Handler<E> {
    /// Handles one event addressed to `ctx.component()` at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Ctx<'_, E>, event: E);
}

/// A discrete-event simulation: one timeline, named components, per-
/// component event accounting.
#[derive(Debug)]
pub struct Simulation<E> {
    q: EventQueue<(CompId, E)>,
    names: Vec<String>,
    counts: Vec<u64>,
    steps: u64,
    halted: bool,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// An empty simulation at time zero.
    pub fn new() -> Self {
        Self {
            q: EventQueue::new(),
            names: Vec::new(),
            counts: Vec::new(),
            steps: 0,
            halted: false,
        }
    }

    /// Registers a component and returns its id. Names become metric
    /// labels (`sim.events.<name>`), so keep them stable and readable.
    pub fn add_component(&mut self, name: impl Into<String>) -> CompId {
        self.names.push(name.into());
        self.counts.push(0);
        CompId(self.names.len() - 1)
    }

    /// Number of registered components.
    pub fn components(&self) -> usize {
        self.names.len()
    }

    /// The name `comp` was registered with.
    pub fn component_name(&self, comp: CompId) -> &str {
        &self.names[comp.0]
    }

    /// Events dispatched to `comp` so far.
    pub fn event_count(&self, comp: CompId) -> u64 {
        self.counts[comp.0]
    }

    /// Current simulation time, µs.
    pub fn now(&self) -> Time {
        self.q.now()
    }

    /// Current simulation time on the millisecond service clock.
    pub fn now_ms(&self) -> u64 {
        self.q.now_ms()
    }

    /// Total events dispatched so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether the last [`Simulation::run`] was stopped by [`Ctx::halt`].
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.q.len()
    }

    /// Schedules `event` for `comp` at absolute time `at` (setup-time
    /// scheduling; handlers use their [`Ctx`]).
    pub fn schedule(&mut self, at: Time, comp: CompId, event: E) {
        self.q.schedule(at, (comp, event));
    }

    /// Schedules `event` for `comp` after a relative delay.
    pub fn schedule_in(&mut self, delay: Time, comp: CompId, event: E) {
        self.q.schedule_in(delay, (comp, event));
    }

    /// A scheduling context outside the run loop, e.g. for initial events
    /// that reuse handler helper methods. `comp` is only what
    /// [`Ctx::component`] reports; it does not constrain scheduling.
    pub fn ctx(&mut self, comp: CompId) -> Ctx<'_, E> {
        Ctx {
            q: &mut self.q,
            comp,
            steps: self.steps,
            halt: false,
        }
    }

    /// Dispatches events in (time, insertion) order until the queue drains
    /// or the handler halts. Each dispatch advances the clock to the
    /// event's timestamp and charges the event to its component.
    pub fn run(&mut self, handler: &mut impl Handler<E>) {
        self.halted = false;
        while let Some((_, (comp, event))) = self.q.pop() {
            self.steps += 1;
            self.counts[comp.0] += 1;
            let mut ctx = Ctx {
                q: &mut self.q,
                comp,
                steps: self.steps,
                halt: false,
            };
            handler.handle(&mut ctx, event);
            if ctx.halt {
                self.halted = true;
                break;
            }
        }
    }

    /// Per-component event counts in registration order.
    pub fn event_counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.counts.iter().copied())
    }

    /// Flows the run's accounting into an observability registry:
    /// `sim.steps` (total dispatches) and one `sim.events.<component>`
    /// counter per registered component. Deterministic: counters appear in
    /// registration order and snapshots render them name-ordered.
    pub fn export_metrics(&self, reg: &mut Registry) {
        let steps = reg.counter("sim.steps");
        reg.add(steps, self.steps);
        for (name, count) in self.event_counts() {
            let id = reg.counter(&format!("sim.events.{name}"));
            reg.add(id, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong: every event re-schedules for the *other* component a
    /// fixed delay later, until a hop budget runs out.
    struct PingPong {
        comps: [CompId; 2],
        hops_left: u32,
        log: Vec<(Time, usize)>,
    }

    impl Handler<&'static str> for PingPong {
        fn handle(&mut self, ctx: &mut Ctx<'_, &'static str>, _event: &'static str) {
            self.log.push((ctx.now(), ctx.component().index()));
            if self.hops_left == 0 {
                return;
            }
            self.hops_left -= 1;
            let next = self.comps[1 - ctx.component().index()];
            ctx.schedule_in(10, next, "hop");
        }
    }

    #[test]
    fn components_alternate_and_counts_add_up() {
        let mut sim = Simulation::new();
        let a = sim.add_component("a");
        let b = sim.add_component("b");
        let mut h = PingPong {
            comps: [a, b],
            hops_left: 5,
            log: Vec::new(),
        };
        sim.schedule(0, a, "start");
        sim.run(&mut h);
        assert_eq!(
            h.log,
            vec![(0, 0), (10, 1), (20, 0), (30, 1), (40, 0), (50, 1)]
        );
        assert_eq!(sim.steps(), 6);
        assert_eq!(sim.event_count(a), 3);
        assert_eq!(sim.event_count(b), 3);
        assert_eq!(sim.now(), 50);
        assert!(!sim.halted());
        assert_eq!(sim.component_name(a), "a");
    }

    struct HaltAfter(u64);

    impl Handler<u32> for HaltAfter {
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, _event: u32) {
            if ctx.steps() >= self.0 {
                ctx.halt();
            }
        }
    }

    #[test]
    fn halt_leaves_remaining_events_pending() {
        let mut sim = Simulation::new();
        let c = sim.add_component("only");
        for i in 0..10 {
            sim.schedule(i, c, i as u32);
        }
        sim.run(&mut HaltAfter(3));
        assert!(sim.halted());
        assert_eq!(sim.steps(), 3);
        assert_eq!(sim.pending(), 7);
        assert_eq!(sim.now(), 2, "clock stops at the halting event");
    }

    #[test]
    fn ties_dispatch_in_schedule_order_across_components() {
        struct Log(Vec<usize>);
        impl Handler<()> for Log {
            fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _event: ()) {
                self.0.push(ctx.component().index());
            }
        }
        let mut sim = Simulation::new();
        let a = sim.add_component("a");
        let b = sim.add_component("b");
        sim.schedule(5, b, ());
        sim.schedule(5, a, ());
        sim.schedule(5, b, ());
        let mut h = Log(Vec::new());
        sim.run(&mut h);
        assert_eq!(h.0, vec![b.index(), a.index(), b.index()]);
    }

    #[test]
    fn export_metrics_flows_per_component_counts() {
        let mut sim = Simulation::new();
        let a = sim.add_component("frontend/0");
        let b = sim.add_component("frontend/1");
        sim.schedule(1, a, 0u32);
        sim.schedule(2, b, 0);
        sim.schedule(3, a, 0);
        struct Nop;
        impl Handler<u32> for Nop {
            fn handle(&mut self, _ctx: &mut Ctx<'_, u32>, _event: u32) {}
        }
        sim.run(&mut Nop);
        let mut reg = Registry::new();
        sim.export_metrics(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.steps"], 3);
        assert_eq!(snap.counters["sim.events.frontend/0"], 2);
        assert_eq!(snap.counters["sim.events.frontend/1"], 1);
    }

    #[test]
    fn setup_ctx_schedules_like_the_run_loop() {
        let mut sim: Simulation<u8> = Simulation::new();
        let c = sim.add_component("c");
        let mut ctx = sim.ctx(c);
        assert_eq!(ctx.component(), c);
        ctx.schedule(7, c, 1);
        assert_eq!(ctx.try_schedule(4, c, 2), Ok(()));
        assert_eq!(sim.pending(), 2);
        struct Log(Vec<(Time, u8)>);
        impl Handler<u8> for Log {
            fn handle(&mut self, ctx: &mut Ctx<'_, u8>, event: u8) {
                self.0.push((ctx.now(), event));
            }
        }
        let mut h = Log(Vec::new());
        sim.run(&mut h);
        assert_eq!(h.0, vec![(4, 2), (7, 1)]);
    }
}
