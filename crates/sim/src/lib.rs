//! `mcs-sim` — the one timeline every layer of the reproduction shares.
//!
//! The paper's headline numbers come from a single coherent week — 349 M
//! HTTP records from 1.15 M users on one wall clock — yet early versions
//! of this repository advanced time in three uncoordinated places: the
//! packet simulator's event queue, the storage replay's per-record
//! `now_ms` loop, and the fault plans' millisecond windows. This crate
//! extracts the discrete-event core so all of them run on one clock
//! (DESIGN.md §10):
//!
//! * [`queue`] — [`EventQueue`]: a deterministic min-priority queue over
//!   microsecond [`Time`], ties broken by insertion order. Scheduling into
//!   the past is a causality bug and is rejected identically in debug and
//!   release builds ([`EventQueue::try_schedule`] returns a typed
//!   [`TimelineError`]; [`EventQueue::schedule`] panics).
//! * [`clock`] — [`SimClock`]: the logical clock an event queue advances.
//!   Only popping an event moves time forward; nothing else may.
//! * [`engine`] — [`Simulation`]: named components ([`CompId`]), a
//!   [`Handler`] trait in the dslab-core shape (one `handle` callback per
//!   event, a [`Ctx`] for scheduling follow-ups), and per-component event
//!   counts that [`Simulation::export_metrics`] flows into an
//!   `mcs-obs` registry as `sim.steps` / `sim.events.<component>`.
//!
//! No wall clock, no threads, no RNG: everything downstream of a seed is
//! a pure function of the schedule order, so two runs — at any trace
//! generation thread count — pop bit-identical event sequences.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod queue;

pub use clock::SimClock;
pub use engine::{CompId, Ctx, Handler, Simulation};
pub use queue::{EventQueue, Time, TimelineError, MS, SEC};
