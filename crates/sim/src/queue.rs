//! Deterministic event queue over a microsecond clock.
//!
//! Extracted from `mcs-net`'s private simulation core so the packet
//! layer, the storage replay and the fault windows share one timeline —
//! in the spirit of smoltcp's explicit event-driven design: no threads,
//! no async runtime, every state transition happens at an explicit
//! timestamp.
//!
//! The queue enforces its causality invariants **identically in debug and
//! release builds**. An earlier revision guarded pop-side monotonicity
//! with `debug_assert!` only, which meant release binaries would silently
//! accept a corrupted timeline that debug binaries rejected.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::clock::SimClock;

/// Simulation time in microseconds.
pub type Time = u64;

/// One microsecond per millisecond.
pub const MS: Time = 1_000;
/// Microseconds per second.
pub const SEC: Time = 1_000_000;

/// A causality violation on the simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineError {
    /// An event was scheduled (or the clock asked to move) before `now`.
    PastEvent {
        /// The offending timestamp.
        at: Time,
        /// The clock's current time.
        now: Time,
    },
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::PastEvent { at, now } => {
                write!(f, "scheduling into the past: {at} < {now}")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// An event scheduled at a time; insertion order breaks ties so the queue
/// is fully deterministic.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, insertion seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic min-priority event queue advancing a [`SimClock`].
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    clock: SimClock,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            clock: SimClock::new(),
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Current simulation time on the millisecond service clock.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Schedules `event` at absolute time `at`, rejecting past timestamps
    /// with a typed [`TimelineError`] instead of a panic.
    pub fn try_schedule(&mut self, at: Time, event: E) -> Result<(), TimelineError> {
        if at < self.clock.now() {
            return Err(TimelineError::PastEvent {
                at,
                now: self.clock.now(),
            });
        }
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
        Ok(())
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics (it would silently reorder causality); use
    /// [`EventQueue::try_schedule`] to handle the violation as a value.
    pub fn schedule(&mut self, at: Time, event: E) {
        if let Err(e) = self.try_schedule(at, event) {
            // mcs-lint: allow(panic, scheduling into the past is a causality bug; fallible path is try_schedule)
            panic!("{e}");
        }
    }

    /// Schedules `event` after a relative delay. The deadline saturates
    /// at the end of time: a wrapping add would compute a *past* deadline
    /// and panic in [`EventQueue::schedule`] (debug) or corrupt event
    /// order (release, before the monotonicity guard caught it).
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule(self.now().saturating_add(delay), event);
    }

    /// Pops the earliest event, advancing the clock to it. The
    /// monotonicity invariant holds in release builds too: a pre-`now`
    /// heap entry means the timeline is already corrupt, and carrying on
    /// would corrupt every downstream measurement.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let s = self.heap.pop()?;
        // mcs-lint: allow(panic, a pre-`now` heap entry means causality is already corrupt)
        let at = self.clock.advance_to(s.at).expect("time went backwards");
        Some((at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        q.schedule_in(50, ());
        assert_eq!(q.pop(), Some((150, ())));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    // Regression test for the build-profile divergence bug: the pre-split
    // `crates/net/src/sim.rs` queue had no fallible scheduling path at all
    // (this test does not compile against it) and guarded pop-side
    // monotonicity with `debug_assert!` only, so release builds enforced
    // weaker invariants than debug builds.
    #[test]
    fn past_scheduling_is_a_typed_error_in_every_profile() {
        let mut q = EventQueue::new();
        q.schedule(100, "late");
        assert_eq!(q.pop(), Some((100, "late")));
        let err = q.try_schedule(50, "early").unwrap_err();
        assert_eq!(err, TimelineError::PastEvent { at: 50, now: 100 });
        assert!(q.is_empty(), "the rejected event must not be enqueued");
        // The same check guards release builds: no `debug_assert!` is
        // involved anywhere on the schedule or pop path.
        assert!(q.try_schedule(100, "on-time").is_ok());
        assert_eq!(q.pop(), Some((100, "on-time")));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, 0);
        q.schedule(2, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn schedule_in_saturates_near_the_end_of_time() {
        // Regression: `schedule_in` computed `now() + delay` with a bare
        // add; once the clock sat near `Time::MAX` the deadline wrapped
        // into the past, panicking in `schedule` (debug) or corrupting
        // event order before the monotonicity guard fired (release).
        let mut q = EventQueue::new();
        q.schedule(Time::MAX - 10, "late");
        assert_eq!(q.pop(), Some((Time::MAX - 10, "late")));
        q.schedule_in(100, "clamped");
        assert_eq!(q.pop(), Some((Time::MAX, "clamped")));
    }

    #[test]
    fn interleaved_schedule_pop_deterministic() {
        let run = || {
            let mut q = EventQueue::new();
            let mut order = Vec::new();
            q.schedule(10, 0u32);
            q.schedule(5, 1);
            while let Some((t, e)) = q.pop() {
                order.push((t, e));
                if e == 1 {
                    q.schedule_in(3, 2);
                    q.schedule_in(3, 3);
                }
            }
            order
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![(5, 1), (8, 2), (8, 3), (10, 0)]);
    }
}
