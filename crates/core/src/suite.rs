//! The experiment suite: lazily generates the trace, runs the analysis
//! pipeline once, and regenerates any table/figure on demand.

use mcs_analysis::{par_analyze, FullAnalysis};
use mcs_trace::TraceGenerator;

use crate::config::ReproConfig;
use crate::report::{ExperimentId, Report};

/// Shared state for all experiments of one configuration.
pub struct ExperimentSuite {
    cfg: ReproConfig,
    generator: Option<TraceGenerator>,
    analysis: Option<FullAnalysis>,
}

impl ExperimentSuite {
    /// Creates the suite (nothing is computed yet).
    pub fn new(cfg: ReproConfig) -> Self {
        Self {
            cfg,
            generator: None,
            analysis: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ReproConfig {
        &self.cfg
    }

    /// The trace generator (built on first use).
    pub fn generator(&mut self) -> &TraceGenerator {
        if self.generator.is_none() {
            let gen = TraceGenerator::new(self.cfg.trace.clone())
                // mcs-lint: allow(panic, ReproConfig is validated at construction)
                .expect("ReproConfig always yields a valid TraceConfig");
            self.generator = Some(gen);
        }
        // mcs-lint: allow(panic, populated by the branch above)
        self.generator.as_ref().expect("just built")
    }

    /// The full analysis (trace generated and analysed on first use).
    pub fn analysis(&mut self) -> &FullAnalysis {
        if self.analysis.is_none() {
            let pipeline = self.cfg.pipeline;
            let gen = self.generator();
            // Sharded over `pipeline.threads` workers; bit-identical to the
            // sequential pipeline for any thread count.
            let analysis = par_analyze(gen, &pipeline);
            self.analysis = Some(analysis);
        }
        // mcs-lint: allow(panic, populated by the branch above)
        self.analysis.as_ref().expect("just built")
    }

    /// Runs one experiment.
    pub fn run(&mut self, id: ExperimentId) -> Report {
        use ExperimentId::*;
        match id {
            T1 => self.exp_t1(),
            F1 => self.exp_f1(),
            F3 => self.exp_f3(),
            F4 => self.exp_f4(),
            F5 => self.exp_f5(),
            F6T2 => self.exp_f6_t2(),
            F7 => self.exp_f7(),
            T3 => self.exp_t3(),
            F8 => self.exp_f8(),
            F9 => self.exp_f9(),
            F10 => self.exp_f10(),
            F12 => self.exp_f12(),
            F13 => self.exp_f13(),
            F14 => self.exp_f14(),
            F15 => self.exp_f15(),
            F16 => self.exp_f16(),
            A1 => self.exp_a1(),
            A2 => self.exp_a2(),
            A3 => self.exp_a3(),
            A4 => self.exp_a4(),
            A5 => self.exp_a5(),
            A6 => self.exp_a6(),
            A7 => self.exp_a7(),
        }
    }

    /// Runs every experiment in paper order.
    pub fn run_all(&mut self) -> Vec<Report> {
        ExperimentId::all().iter().map(|&id| self.run(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReproConfig;

    #[test]
    fn lazy_analysis_computed_once() {
        let mut suite = ExperimentSuite::new(ReproConfig::small(3));
        let records_a = suite.analysis().total_records;
        let records_b = suite.analysis().total_records;
        assert_eq!(records_a, records_b);
        assert!(records_a > 1000);
    }

    #[test]
    fn every_experiment_runs_on_small_config() {
        let mut suite = ExperimentSuite::new(ReproConfig::small(7));
        for &id in ExperimentId::all() {
            let report = suite.run(id);
            assert_eq!(report.id, id);
            assert!(!report.title.is_empty(), "{id}: empty title");
            assert!(!report.render().is_empty());
        }
    }

    /// One shared suite, targeted content assertions per report — each
    /// regenerated artifact must actually contain its figure's series.
    #[test]
    fn report_bodies_contain_their_figures() {
        let mut suite = ExperimentSuite::new(ReproConfig::small(11));
        let mut body = |id: &str| suite.run(id.parse().unwrap()).body;

        // T1: sample rows with the Table 1 columns.
        let t1 = body("t1");
        assert!(t1.contains("timestamp_ms") && t1.contains("proxied"));

        // F1: both volume series and the hour-of-day profile.
        let f1 = body("f1");
        assert!(f1.contains("stored GB per hour"));
        assert!(f1.contains("retrieved GB per hour"));
        assert!(f1.contains("Hour-of-day"));

        // F3: histogram + the fitted mixture table.
        let f3 = body("f3");
        assert!(f3.contains("Histogram of inter-operation time"));
        assert!(f3.contains("Gaussian mixture"));

        // F5: CDFs for both session kinds + both volume tables.
        let f5 = body("f5");
        assert!(f5.contains("store-only session"));
        assert!(f5.contains("retrieve-only session"));
        assert!(f5.contains("Fig. 5b") && f5.contains("Fig. 5c"));

        // F6: Table 2 blocks for both directions + model CCDFs.
        let f6 = body("f6");
        assert!(f6.contains("Table 2 (store-only)"));
        assert!(f6.contains("Table 2 (retrieve-only)"));
        assert!(f6.contains("chi-square"));

        // T3: all three client groups and all four classes.
        let t3 = body("t3");
        for needle in [
            "mobile only",
            "mobile & PC",
            "PC only",
            "upload-only",
            "occasional",
        ] {
            assert!(t3.contains(needle), "t3 missing {needle}");
        }

        // F8/F9: all four engagement groups.
        let f8 = body("f8");
        let f9 = body("f9");
        for needle in [
            "1 mobile dev",
            ">1 mobile dev",
            ">2 mobile dev",
            "mobile & PC",
        ] {
            assert!(f8.contains(needle), "f8 missing {needle}");
            assert!(f9.contains(needle), "f9 missing {needle}");
        }

        // F12: log-side CDFs and the simulated campaign table.
        let f12 = body("f12");
        assert!(f12.contains("log side"));
        assert!(f12.contains("Simulated §4 campaign"));

        // F13: both sub-figures for both devices.
        let f13 = body("f13");
        assert!(f13.contains("Fig. 13a") && f13.contains("Fig. 13b"));
        assert!(f13.contains("android") && f13.contains("ios"));

        // F16: the idle table and the idle/RTO CDFs.
        let f16 = body("f16");
        assert!(f16.contains("idle"));
        assert!(f16.contains("Fig. 16c"));

        // Ablations: each has its sweep table.
        assert!(body("a1").contains("chunk size"));
        assert!(body("a2").contains("SSAI off"));
        assert!(body("a4").contains("deferred"));
        assert!(body("a6").contains("connections"));
        assert!(body("a7").contains("failure point"));
    }
}
