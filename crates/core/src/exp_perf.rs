//! Performance experiments: Figs. 12–16 and the §4 ablations A1–A3.
//!
//! Figures 12, 14 and 15 have two sources, as in the paper: the HTTP log
//! side (from the analysed trace) and the packet-level side (from the
//! `mcs-net` simulator standing in for the paper's active measurements).

use mcs_net::chunkflow::FlowConfig;
use mcs_net::device::{DeviceProfile, Direction as NetDirection};
use mcs_net::experiments::{
    run_campaign, run_fig13, run_mitigations, run_parallel_upload, run_resume_ablation,
};
use mcs_net::sim::SEC;
use mcs_net::simulate_flow;

use crate::render::{pct, series, sig, table, thin};
use crate::report::{ExperimentId, Metric, Report};
use crate::suite::ExperimentSuite;

impl ExperimentSuite {
    /// Fig. 12 — per-chunk transfer time by device type and direction.
    pub(crate) fn exp_f12(&mut self) -> Report {
        let flows = self.config().scale.flows_per_size();
        let seed = self.config().seed;
        let a = self.analysis();
        let mut body = String::new();
        let mut metrics = Vec::new();

        // Log side (what §4.1 computes from the access logs).
        let log_ratio = a.perf.upload_median_ratio();
        for (label, e) in [
            ("upload android", &a.perf.upload_android),
            ("upload ios", &a.perf.upload_ios),
            ("download android", &a.perf.download_android),
            ("download ios", &a.perf.download_ios),
        ] {
            if let Some(e) = e {
                let pts = e.cdf_series_log(12);
                body.push_str(&series(
                    &format!("Fig. 12 (log side) — chunk time CDF, {label} (s)"),
                    "seconds",
                    "CDF",
                    &pts,
                ));
                body.push('\n');
            }
        }

        // Simulator side (the paper's active experiments).
        let au = run_campaign(DeviceProfile::android(), NetDirection::Upload, flows, seed);
        let iu = run_campaign(DeviceProfile::ios(), NetDirection::Upload, flows, seed + 1);
        let ad = run_campaign(
            DeviceProfile::android(),
            NetDirection::Download,
            flows,
            seed + 2,
        );
        let id_ = run_campaign(
            DeviceProfile::ios(),
            NetDirection::Download,
            flows,
            seed + 3,
        );
        let rows: Vec<Vec<String>> = [&au, &iu, &ad, &id_]
            .iter()
            .map(|c| {
                // mcs-lint: allow(panic, campaign flows always transfer >= 1 chunk)
                let e = c.chunk_time_ecdf().expect("chunks");
                vec![
                    c.device.to_string(),
                    format!("{:?}", c.direction),
                    sig(e.median()),
                    sig(e.quantile(0.9)),
                    crate::render::bytes(c.mean_goodput) + "/s",
                ]
            })
            .collect();
        body.push_str("Simulated §4 campaign (per-chunk seconds):\n");
        body.push_str(&table(
            &["device", "direction", "median", "p90", "goodput"],
            &rows,
        ));

        // mcs-lint: allow(panic, campaign flows always transfer >= 1 chunk)
        let sim_ratio = au.chunk_time_ecdf().expect("chunks").median()
            / iu.chunk_time_ecdf().expect("chunks").median();
        // Bootstrap the simulated median ratio so the figure carries an
        // uncertainty statement, not just a point estimate.
        let ratio_ci = mcs_stats::bootstrap::median_ratio_ci(
            &au.chunk_times_s,
            &iu.chunk_times_s,
            400,
            0.95,
            seed,
        );
        // mcs-lint: allow(panic, campaign flows always transfer >= 1 chunk)
        let sim_dl_ratio = ad.chunk_time_ecdf().expect("chunks").median()
            / id_.chunk_time_ecdf().expect("chunks").median();
        metrics.push(Metric::checked(
            "upload median ratio android/ios (log side)",
            "4.1 s / 1.6 s ≈ 2.6",
            log_ratio.map(sig).unwrap_or_else(|| "n/a".into()),
            // At medium scale this sits at 1.9–2.1 (see the sensitivity
            // sweep); small traces wobble lower, so the gate only asserts
            // a material gap in the right direction.
            log_ratio.map(|r| r > 1.35).unwrap_or(false),
        ));
        metrics.push(Metric::checked(
            "upload median ratio android/ios (simulated)",
            "≈ 2.6",
            sig(sim_ratio),
            sim_ratio > 1.8,
        ));
        metrics.push(Metric::checked(
            "simulated ratio 95% bootstrap CI",
            "excludes 1 (the gap is not noise)",
            format!("[{}, {}]", sig(ratio_ci.lo), sig(ratio_ci.hi)),
            ratio_ci.excludes(1.0) && ratio_ci.lo > 1.5,
        ));
        metrics.push(Metric::checked(
            "download median ratio android/ios (simulated)",
            "android markedly slower",
            sig(sim_dl_ratio),
            sim_dl_ratio > 1.3,
        ));
        Report {
            id: ExperimentId::F12,
            title: "Fig. 12 — time to upload/download a chunk".into(),
            body,
            metrics,
        }
    }

    /// Fig. 13 — sequence number and in-flight size over time.
    pub(crate) fn exp_f13(&mut self) -> Report {
        let seed = self.config().seed;
        let (android, ios) = run_fig13(seed);
        let mut body = String::new();
        let window_s = 10.0;
        for (label, t) in [("android", &android), ("ios", &ios)] {
            let seq: Vec<(f64, f64)> = t
                .seq_samples
                .iter()
                .filter(|&&(at, _)| (at as f64) < window_s * SEC as f64)
                .map(|&(at, s)| (at as f64 / SEC as f64, s as f64 / 1e6))
                .collect();
            body.push_str(&series(
                &format!("Fig. 13a — sequence number (MB) over first 10 s, {label}"),
                "seconds",
                "MB",
                &thin(&seq, 16),
            ));
            body.push('\n');
            let inflight: Vec<(f64, f64)> = t
                .inflight_samples
                .iter()
                .filter(|&&(at, _)| (at as f64) < window_s * SEC as f64)
                .map(|&(at, s)| (at as f64 / SEC as f64, s as f64 / 1e3))
                .collect();
            body.push_str(&series(
                &format!("Fig. 13b — in-flight size (KB) over first 10 s, {label}"),
                "seconds",
                "KB",
                &thin(&inflight, 16),
            ));
            body.push('\n');
        }
        let mean_inflight = |t: &mcs_net::FlowTrace| {
            t.inflight_samples
                .iter()
                .map(|&(_, f)| f as f64)
                .sum::<f64>()
                / t.inflight_samples.len().max(1) as f64
        };
        Report {
            id: ExperimentId::F13,
            title: "Fig. 13 — storage-flow dynamics at the client".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "iOS sustains a higher sending window",
                    "iPad restarts each chunk near 64 KB; Android collapses",
                    format!(
                        "mean inflight: ios {} vs android {}",
                        crate::render::bytes(mean_inflight(&ios)),
                        crate::render::bytes(mean_inflight(&android))
                    ),
                    mean_inflight(&ios) > mean_inflight(&android),
                ),
                Metric::checked(
                    "iOS uploads the same file faster",
                    "higher throughput (Fig. 13a slope)",
                    format!(
                        "durations: ios {} vs android {}",
                        crate::render::secs(ios.duration as f64 / SEC as f64),
                        crate::render::secs(android.duration as f64 / SEC as f64)
                    ),
                    ios.duration < android.duration,
                ),
                Metric::checked(
                    "Android flows restart slow start between chunks",
                    "long idle gaps reset the window",
                    format!("{} restarts", android.idle_restarts),
                    android.idle_restarts > 0,
                ),
            ],
        }
    }

    /// Fig. 14 — RTT distribution.
    pub(crate) fn exp_f14(&mut self) -> Report {
        let a = self.analysis();
        let mut body = String::new();
        let mut median = f64::NAN;
        if let Some(e) = &a.perf.rtt {
            median = e.median();
            let pts = e.cdf_series_log(14);
            body.push_str(&series(
                "Fig. 14 — CDF of per-chunk connection RTT (ms)",
                "RTT (ms)",
                "CDF",
                &pts,
            ));
        }
        Report {
            id: ExperimentId::F14,
            title: "Fig. 14 — RTT measured on chunk transmissions".into(),
            body,
            metrics: vec![Metric::checked(
                "median RTT",
                "~100 ms",
                format!("{} ms", sig(median)),
                (50.0..=200.0).contains(&median),
            )],
        }
    }

    /// Fig. 15 — estimated sending window.
    pub(crate) fn exp_f15(&mut self) -> Report {
        let a = self.analysis();
        let hist = &a.perf.swnd_hist;
        let total: u64 = hist.counts().iter().sum();
        let pts: Vec<(f64, f64)> = (0..hist.bins())
            .map(|i| {
                (
                    hist.bin_center(i) / 1024.0,
                    hist.counts()[i] as f64 / total.max(1) as f64,
                )
            })
            .collect();
        let body = series(
            "Fig. 15 — probability distribution of estimated swnd (KB)",
            "swnd (KB)",
            "probability",
            &thin(&pts, 32),
        );
        let mode = a.perf.swnd_mode_bytes();
        let p95 = a
            .perf
            .swnd
            .as_ref()
            .map(|e| e.quantile(0.95))
            .unwrap_or(f64::NAN);
        Report {
            id: ExperimentId::F15,
            title: "Fig. 15 — estimated sending window of storage flows".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "modal swnd estimate",
                    "concentrated at 64 KB (no window scaling)",
                    crate::render::bytes(mode),
                    (30_000.0..=80_000.0).contains(&mode),
                ),
                Metric::checked(
                    "95th percentile swnd",
                    "bounded near 64 KB",
                    crate::render::bytes(p95),
                    p95 < 120_000.0,
                ),
            ],
        }
    }

    /// Fig. 16 — idle-time dissection.
    pub(crate) fn exp_f16(&mut self) -> Report {
        let flows = self.config().scale.flows_per_size();
        let seed = self.config().seed;
        let au = run_campaign(
            DeviceProfile::android(),
            NetDirection::Upload,
            flows,
            seed + 10,
        );
        let iu = run_campaign(DeviceProfile::ios(), NetDirection::Upload, flows, seed + 11);
        let ad = run_campaign(
            DeviceProfile::android(),
            NetDirection::Download,
            flows,
            seed + 12,
        );
        let id_ = run_campaign(
            DeviceProfile::ios(),
            NetDirection::Download,
            flows,
            seed + 13,
        );

        let mut body = String::new();
        // Fig. 16a/b distributions (T_clt/T_srv are model inputs; the
        // observed sender idles are emergent).
        fn median_p90(xs: &[f64]) -> (f64, f64) {
            if xs.is_empty() {
                return (f64::NAN, f64::NAN);
            }
            let mut v = xs.to_vec();
            v.sort_by(f64::total_cmp);
            (v[v.len() / 2], v[v.len() * 9 / 10])
        }
        let rows: Vec<Vec<String>> = [&au, &iu, &ad, &id_]
            .iter()
            .map(|c| {
                let (med, p90) = median_p90(&c.idle_times_s);
                vec![
                    c.device.to_string(),
                    format!("{:?}", c.direction),
                    sig(med),
                    sig(p90),
                    pct(c.over_rto_frac),
                    pct(c.restart_frac),
                ]
            })
            .collect();
        body.push_str("Observed sender idle gaps and restart accounting:\n");
        body.push_str(&table(
            &[
                "device",
                "direction",
                "median idle (s)",
                "p90 idle (s)",
                "idle>RTO (paper defn)",
                "restart frac (RFC 5681)",
            ],
            &rows,
        ));
        body.push('\n');
        for c in [&au, &iu] {
            if let Some(e) = c.idle_over_rto_ecdf() {
                let pts: Vec<(f64, f64)> = (0..=10)
                    .map(|i| {
                        let x = i as f64 * 0.5;
                        (x, e.cdf(x))
                    })
                    .collect();
                body.push_str(&series(
                    &format!("Fig. 16c — CDF of idle/RTO, {} storage", c.device),
                    "idle/RTO",
                    "CDF",
                    &pts,
                ));
                body.push('\n');
            }
        }

        Report {
            id: ExperimentId::F16,
            title: "Fig. 16 — dissecting the idle time between chunks".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "android upload idles exceeding RTO",
                    "~60%",
                    pct(au.over_rto_frac),
                    (0.35..=0.8).contains(&au.over_rto_frac),
                ),
                Metric::checked(
                    "ios upload idles exceeding RTO",
                    "~18%",
                    pct(iu.over_rto_frac),
                    (0.05..=0.4).contains(&iu.over_rto_frac),
                ),
                Metric::checked(
                    "retrieval flows show the same gap",
                    "android > ios",
                    format!("{} vs {}", pct(ad.over_rto_frac), pct(id_.over_rto_frac)),
                    ad.over_rto_frac >= id_.over_rto_frac,
                ),
            ],
        }
    }

    /// Ablation A1 — chunk-size sweep (§4.3: "a larger chunk size can be
    /// used … increasing from 512 KB to 1.5–2 MB is reasonable").
    pub(crate) fn exp_a1(&mut self) -> Report {
        let seed = self.config().seed + 100;
        let file = 16u64 << 20;
        let mut rows = Vec::new();
        let mut goodputs = Vec::new();
        for chunk_kb in [512u64, 1024, 1536, 2048, 4096] {
            let mut g_a = 0.0;
            let mut g_i = 0.0;
            let mut restarts = 0u64;
            const FLOWS: u32 = 3;
            for f in 0..FLOWS {
                let s = seed + f as u64 * 31;
                let a = simulate_flow(&FlowConfig {
                    chunk_size: chunk_kb * 1024,
                    ..FlowConfig::upload(DeviceProfile::android(), file, s)
                });
                let i = simulate_flow(&FlowConfig {
                    chunk_size: chunk_kb * 1024,
                    ..FlowConfig::upload(DeviceProfile::ios(), file, s + 7)
                });
                g_a += a.goodput_bps() / FLOWS as f64;
                g_i += i.goodput_bps() / FLOWS as f64;
                restarts += a.idle_restarts;
            }
            goodputs.push((chunk_kb, g_a, g_i));
            rows.push(vec![
                format!("{chunk_kb} KB"),
                crate::render::bytes(g_a) + "/s",
                crate::render::bytes(g_i) + "/s",
                format!("{:.1}", restarts as f64 / FLOWS as f64),
            ]);
        }
        let body = table(
            &[
                "chunk size",
                "android goodput",
                "ios goodput",
                "android restarts/flow",
            ],
            &rows,
        );
        let base_a = goodputs[0].1;
        let two_mb_a = goodputs[3].1;
        let base_i = goodputs[0].2;
        let two_mb_i = goodputs[3].2;
        Report {
            id: ExperimentId::A1,
            title: "A1 — §4.3 mitigation: larger chunks".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "2 MB chunks improve android uploads",
                    "fewer idle gaps → fewer restarts",
                    format!(
                        "{}/s → {}/s",
                        crate::render::bytes(base_a),
                        crate::render::bytes(two_mb_a)
                    ),
                    two_mb_a > base_a,
                ),
                Metric::checked(
                    "2 MB chunks improve ios uploads",
                    "same direction",
                    format!(
                        "{}/s → {}/s",
                        crate::render::bytes(base_i),
                        crate::render::bytes(two_mb_i)
                    ),
                    two_mb_i > base_i,
                ),
            ],
        }
    }

    /// Ablation A2 — SSAI off and paced restart (§4.3).
    pub(crate) fn exp_a2(&mut self) -> Report {
        let seed = self.config().seed + 200;
        let rows_data = run_mitigations(16 << 20, 3, seed);
        let rows: Vec<Vec<String>> = rows_data
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    crate::render::bytes(r.goodput_android) + "/s",
                    crate::render::bytes(r.goodput_ios) + "/s",
                    format!("{:.1}", r.restarts_android),
                    format!("{:.1}", r.drops_android),
                ]
            })
            .collect();
        let body = table(
            &[
                "configuration",
                "android goodput",
                "ios goodput",
                "restarts/flow",
                "drops/flow",
            ],
            &rows,
        );
        let base = &rows_data[0];
        let ssai_off = &rows_data[3];
        let paced = &rows_data[4];
        Report {
            id: ExperimentId::A2,
            title: "A2 — §4.3 mitigations: SSAI off / paced restart".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "disabling SSAI removes restarts",
                    "0 restarts",
                    format!("{:.1}", ssai_off.restarts_android),
                    ssai_off.restarts_android == 0.0,
                ),
                Metric::checked(
                    "paced restart helps the window-bound profile",
                    "throughput up without burst loss",
                    format!(
                        "ios {}/s → {}/s",
                        crate::render::bytes(base.goodput_ios),
                        crate::render::bytes(paced.goodput_ios)
                    ),
                    paced.goodput_ios > base.goodput_ios,
                ),
            ],
        }
    }

    /// Ablation A3 — server window scaling (§4.1/§4.3).
    pub(crate) fn exp_a3(&mut self) -> Report {
        let seed = self.config().seed + 300;
        let file = 16u64 << 20;
        let mut rows = Vec::new();
        let mut results = Vec::new();
        for (label, scaling) in [("64 KB (deployed)", false), ("window scaling on", true)] {
            let mut g_i = 0.0;
            const FLOWS: u32 = 3;
            for f in 0..FLOWS {
                let t = simulate_flow(&FlowConfig {
                    server_window_scaling: scaling,
                    batch_chunks: 8, // isolate the window effect from idles
                    ..FlowConfig::upload(DeviceProfile::ios(), file, seed + f as u64)
                });
                g_i += t.goodput_bps() / FLOWS as f64;
            }
            results.push(g_i);
            rows.push(vec![label.to_string(), crate::render::bytes(g_i) + "/s"]);
        }
        let body = table(&["server receive window", "ios upload goodput"], &rows);
        Report {
            id: ExperimentId::A3,
            title: "A3 — §4.1 bottleneck: server receive window".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "window scaling lifts upload throughput",
                    "64 KB clamp is the §4.1 bottleneck",
                    format!(
                        "{}/s → {}/s",
                        crate::render::bytes(results[0]),
                        crate::render::bytes(results[1])
                    ),
                    results[1] > results[0] * 1.3,
                ),
                // §4.3's caveat: scaling costs server memory if socket
                // buffers are preallocated for millions of flows.
                Metric::info(
                    "server buffer memory per 1M concurrent uploads",
                    format!(
                        "{} (64 KB) vs {} (2 MB scaled)",
                        crate::render::bytes(65_535.0 * 1e6),
                        crate::render::bytes(2.0 * 1024.0 * 1024.0 * 1e6)
                    ),
                ),
            ],
        }
    }

    /// Ablation A6 — parallel TCP connections (§3.1.3: the service uses
    /// several connections to accelerate transfers; §4.1 explains why —
    /// each upload connection is clamped at 64 KB).
    pub(crate) fn exp_a6(&mut self) -> Report {
        let seed = self.config().seed + 400;
        let file = 16u64 << 20;
        let mut rows = Vec::new();
        let mut ios_results = Vec::new();
        for k in [1u32, 2, 4, 8] {
            let i = run_parallel_upload(DeviceProfile::ios(), file, k, seed);
            let a = run_parallel_upload(DeviceProfile::android(), file, k, seed + 50);
            ios_results.push(i.goodput);
            rows.push(vec![
                k.to_string(),
                crate::render::bytes(i.goodput) + "/s",
                crate::render::bytes(a.goodput) + "/s",
            ]);
        }
        let body = table(
            &[
                "connections",
                "ios upload goodput",
                "android upload goodput",
            ],
            &rows,
        );
        Report {
            id: ExperimentId::A6,
            title: "A6 — §3.1.3 acceleration: parallel TCP connections".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "4 connections beat 1 (window-bound ios uploads)",
                    "aggregate window scales with connections",
                    format!(
                        "{}/s → {}/s",
                        crate::render::bytes(ios_results[0]),
                        crate::render::bytes(ios_results[2])
                    ),
                    ios_results[2] > 2.0 * ios_results[0],
                ),
                Metric::checked(
                    "returns diminish beyond a few connections",
                    "mobile constraints cap useful parallelism (§3.1.3)",
                    format!(
                        "x4 {}/s vs x8 {}/s",
                        crate::render::bytes(ios_results[2]),
                        crate::render::bytes(ios_results[3])
                    ),
                    ios_results[3] < 2.0 * ios_results[2],
                ),
            ],
        }
    }

    /// Ablation A7 — resumable downloads (§3.1.4: large shared files over
    /// flaky mobile networks need "support for resuming a failed
    /// download"; the 512 KB-chunk + per-chunk-MD5 design makes resume
    /// natural).
    pub(crate) fn exp_a7(&mut self) -> Report {
        let seed = self.config().seed + 500;
        let file = 150u64 << 20; // the Table 2 µ3 object: a ~150 MB video
        let mut rows = Vec::new();
        let mut savings = Vec::new();
        for frac in [0.2, 0.5, 0.8] {
            let r = run_resume_ablation(DeviceProfile::android(), file, frac, seed);
            savings.push(r.saving());
            rows.push(vec![
                format!("{:.0}%", frac * 100.0),
                crate::render::secs(r.restart_total as f64 / 1e6),
                crate::render::secs(r.resume_total as f64 / 1e6),
                crate::render::pct(r.saving()),
            ]);
        }
        let body = table(
            &["failure point", "restart total", "resume total", "saving"],
            &rows,
        );
        Report {
            id: ExperimentId::A7,
            title: "A7 — §3.1.4 implication: resumable downloads".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "resume beats restart at every failure point",
                    "rework proportional to lost progress",
                    format!(
                        "savings {} / {} / {}",
                        crate::render::pct(savings[0]),
                        crate::render::pct(savings[1]),
                        crate::render::pct(savings[2])
                    ),
                    savings.iter().all(|&s| s > 0.0),
                ),
                Metric::checked(
                    "late failures hurt most without resume",
                    "saving grows with progress lost",
                    format!(
                        "{} @80% vs {} @20%",
                        crate::render::pct(savings[2]),
                        crate::render::pct(savings[0])
                    ),
                    savings[2] > savings[0],
                ),
            ],
        }
    }
}
