//! Seed-sensitivity analysis: how stable are the reproduced shapes?
//!
//! The paper worked from one fixed trace; this reproduction can regenerate
//! the world under any seed. Running the headline metrics across seeds
//! turns "the shape holds" into a distributional statement — and flags any
//! metric whose verdict is a seed lottery.

use serde::Serialize;

use mcs_analysis::engagement::EngagementGroup;

use crate::config::{ReproConfig, Scale};
use crate::render::{sig, table};
use crate::suite::ExperimentSuite;

/// One headline metric measured across seeds.
#[derive(Debug, Clone, Serialize)]
pub struct MetricSpread {
    /// Metric name.
    pub name: &'static str,
    /// The paper's reference value (rendering only).
    pub paper: &'static str,
    /// Per-seed values.
    pub values: Vec<f64>,
}

impl MetricSpread {
    /// Mean across seeds.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len().max(1) as f64
    }

    /// Minimum.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64).sqrt()
    }
}

/// Result of a sensitivity sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SensitivityReport {
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// Metric spreads.
    pub metrics: Vec<MetricSpread>,
}

impl SensitivityReport {
    /// Renders the sweep as an aligned table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .metrics
            .iter()
            .map(|m| {
                vec![
                    m.name.to_string(),
                    m.paper.to_string(),
                    sig(m.mean()),
                    sig(m.std_dev()),
                    format!("{} .. {}", sig(m.min()), sig(m.max())),
                ]
            })
            .collect();
        format!(
            "Headline metrics across {} seeds ({:?}):\n{}",
            self.seeds.len(),
            self.seeds,
            table(&["metric", "paper", "mean", "sd", "range"], &rows)
        )
    }
}

/// Runs the headline-metric sweep over `seeds` at `scale`.
pub fn run_sensitivity(scale: Scale, seeds: &[u64]) -> SensitivityReport {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut metrics: Vec<MetricSpread> = vec![
        MetricSpread {
            name: "store-only session fraction",
            paper: "0.682",
            values: vec![],
        },
        MetricSpread {
            name: "mixed session fraction",
            paper: "0.02",
            values: vec![],
        },
        MetricSpread {
            name: "tau (minutes)",
            paper: "60 (any inter-mode value)",
            values: vec![],
        },
        MetricSpread {
            name: "store MB per file (Fig 5b slope)",
            paper: "1.5",
            values: vec![],
        },
        MetricSpread {
            name: "store mixture mu1 (MB)",
            paper: "1.5",
            values: vec![],
        },
        MetricSpread {
            name: "retrieve/store volume ratio",
            paper: "> 1",
            values: vec![],
        },
        MetricSpread {
            name: "upload-only users, mobile-only",
            paper: "0.515",
            values: vec![],
        },
        MetricSpread {
            name: "1-dev never-retrieve fraction",
            paper: "> 0.8",
            values: vec![],
        },
        MetricSpread {
            name: "upload chunk median ratio (log side)",
            paper: "2.6",
            values: vec![],
        },
        MetricSpread {
            name: "SE stretch factor c (store)",
            paper: "0.2",
            values: vec![],
        },
    ];
    for &seed in seeds {
        let mut suite = ExperimentSuite::new(ReproConfig::new(scale, seed));
        let a = suite.analysis();
        let vals = [
            a.sessions.store_only_frac(),
            a.sessions.mixed_frac(),
            a.tau.tau_s / 60.0,
            a.sessions.store_mb_per_file,
            a.filesize_store
                .as_ref()
                .and_then(|f| f.mixture.as_ref())
                .map(|m| m.components[0].mean)
                .unwrap_or(f64::NAN),
            a.workload.retrieve_to_store_volume_ratio(),
            a.usage.mobile_only.user_fracs()[0],
            a.engagement
                .retrieval_after_upload(EngagementGroup::OneMobileDev)
                .frac_never(),
            a.perf.upload_median_ratio().unwrap_or(f64::NAN),
            a.activity
                .store
                .as_ref()
                .map(|f| f.se.c)
                .unwrap_or(f64::NAN),
        ];
        for (m, v) in metrics.iter_mut().zip(vals) {
            m.values.push(v);
        }
    }
    SensitivityReport {
        seeds: seeds.to_vec(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_shapes_stable_across_seeds() {
        let report = run_sensitivity(Scale::Small, &[1, 2, 3]);
        assert_eq!(report.seeds.len(), 3);
        assert_eq!(report.metrics[0].values.len(), 3);
        // The write-dominated shape must hold for every seed.
        let store_only = &report.metrics[0];
        assert!(store_only.min() > 0.5, "{:?}", store_only.values);
        // Mixed sessions stay rare for every seed.
        assert!(report.metrics[1].max() < 0.1);
        // Rendering includes every metric row.
        let text = report.render();
        for m in &report.metrics {
            assert!(text.contains(m.name), "missing {}", m.name);
        }
    }

    #[test]
    fn spread_statistics() {
        let m = MetricSpread {
            name: "x",
            paper: "-",
            values: vec![1.0, 2.0, 3.0],
        };
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
        assert!((m.std_dev() - 1.0).abs() < 1e-12);
    }
}
