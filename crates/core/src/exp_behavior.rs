//! User-behaviour experiments: Table 1, Figs. 1–10, Tables 2–3 (§2.4, §3).

use mcs_analysis::concentration::ConcentrationProfile;
use mcs_analysis::engagement::EngagementGroup;
use mcs_stats::Ecdf;

use crate::render::{pct, series, sig, table, thin};
use crate::report::{ExperimentId, Metric, Report};
use crate::suite::ExperimentSuite;

impl ExperimentSuite {
    /// Table 1 — the log schema, demonstrated on real generated rows.
    pub(crate) fn exp_t1(&mut self) -> Report {
        let gen = self.generator();
        let user = gen
            .users()
            .iter()
            .find(|u| u.store_files > 0)
            // mcs-lint: allow(panic, default trace configs always contain storing users)
            .expect("some storing user");
        let records = gen.user_records(user);
        let rows: Vec<Vec<String>> = records
            .iter()
            .take(8)
            .map(|r| {
                vec![
                    r.timestamp_ms.to_string(),
                    format!("{:?}", r.device_type),
                    r.device_id.to_string(),
                    r.user_id.to_string(),
                    format!("{:?}", r.request),
                    r.volume_bytes.to_string(),
                    format!("{:.1}", r.processing_ms),
                    format!("{:.1}", r.rtt_ms),
                    (r.proxied as u8).to_string(),
                ]
            })
            .collect();
        let body = table(
            &[
                "timestamp_ms",
                "device",
                "device_id",
                "user_id",
                "request",
                "volume",
                "proc_ms",
                "rtt_ms",
                "proxied",
            ],
            &rows,
        );
        Report {
            id: ExperimentId::T1,
            title: "Table 1 — main fields of logs (sample rows)".into(),
            body,
            metrics: vec![
                Metric::info("fields per record", "9 (Table 1 schema)"),
                Metric::info("sample user records", records.len().to_string()),
                {
                    // §2.2: 78.4 % of mobile accesses from Android.
                    let (mut android, mut ios) = (0u64, 0u64);
                    for block in gen.iter_user_records() {
                        for r in block {
                            match r.device_type {
                                mcs_trace::DeviceType::Android => android += 1,
                                mcs_trace::DeviceType::Ios => ios += 1,
                                mcs_trace::DeviceType::Pc => {}
                            }
                        }
                    }
                    let frac = android as f64 / (android + ios).max(1) as f64;
                    Metric::checked(
                        "android share of mobile accesses",
                        "78.4%",
                        pct(frac),
                        (0.70..=0.86).contains(&frac),
                    )
                },
            ],
        }
    }

    /// Fig. 1 — temporal variation of workload.
    pub(crate) fn exp_f1(&mut self) -> Report {
        let a = self.analysis();
        let w = &a.workload;
        let vol_ratio = w.retrieve_to_store_volume_ratio();
        let file_ratio = w.store_to_retrieve_file_ratio();
        let diurnal = w.volume_diurnal();
        let peak_hour = diurnal.peak_hour();
        let p2m = w.volume_peak_to_mean();
        // Periodicity of the total volume series.
        let mut combined =
            mcs_stats::timeseries::HourlySeries::new(w.store_volume.len() as u64 * 3600);
        for (i, (&a, &b)) in w
            .store_volume
            .bins()
            .iter()
            .zip(w.retrieve_volume.bins())
            .enumerate()
        {
            combined.add(i as u64 * 3600, a + b);
        }
        let autocorr24 = combined.autocorrelation(24);

        let store_pts: Vec<(f64, f64)> = w
            .store_volume
            .bins()
            .iter()
            .enumerate()
            .map(|(h, &b)| (h as f64, b / 1e9))
            .collect();
        let retrieve_pts: Vec<(f64, f64)> = w
            .retrieve_volume
            .bins()
            .iter()
            .enumerate()
            .map(|(h, &b)| (h as f64, b / 1e9))
            .collect();
        let mut body = series(
            "Fig. 1a series — stored GB per hour (thinned)",
            "hour",
            "GB",
            &thin(&store_pts, 28),
        );
        body.push('\n');
        body.push_str(&series(
            "Fig. 1a series — retrieved GB per hour (thinned)",
            "hour",
            "GB",
            &thin(&retrieve_pts, 28),
        ));
        let hours_row: Vec<Vec<String>> = (0..24)
            .map(|h| vec![h.to_string(), sig(diurnal.hours[h] / 1e9)])
            .collect();
        body.push('\n');
        body.push_str("Hour-of-day mean volume (GB):\n");
        body.push_str(&table(&["hour", "GB"], &hours_row));

        Report {
            id: ExperimentId::F1,
            title: "Fig. 1 — temporal variation of workload".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "retrieval/storage volume ratio",
                    "> 1 (retrievals dominate bytes)",
                    sig(vol_ratio),
                    vol_ratio > 1.0,
                ),
                Metric::checked(
                    "stored/retrieved file-count ratio",
                    "> 2",
                    sig(file_ratio),
                    file_ratio > 1.5,
                ),
                Metric::checked(
                    "diurnal peak hour",
                    "~23 (11 PM surge)",
                    peak_hour.to_string(),
                    (20..=23).contains(&peak_hour),
                ),
                Metric::checked(
                    "day-over-day periodicity (autocorr @ 24 h)",
                    "strong diurnal repetition",
                    sig(autocorr24),
                    autocorr24 > 0.3,
                ),
                Metric::info("volume peak-to-mean (over-provisioning)", sig(p2m)),
                {
                    // Fig. 1 shows slightly higher weekend volume; compare
                    // mean daily volume Sa/Su vs M-F (trace starts Monday).
                    let bins = w.store_volume.bins();
                    let day_total = |d: usize| -> f64 {
                        bins.iter()
                            .zip(w.retrieve_volume.bins())
                            .skip(d * 24)
                            .take(24)
                            .map(|(&a, &b)| a + b)
                            .sum()
                    };
                    let weekday: f64 = (0..5).map(day_total).sum::<f64>() / 5.0;
                    let weekend: f64 = (5..7).map(day_total).sum::<f64>() / 2.0;
                    Metric::checked(
                        "weekend vs weekday daily volume",
                        "slightly higher on weekends",
                        format!("{:.2}x", weekend / weekday.max(1.0)),
                        weekend > weekday,
                    )
                },
            ],
        }
    }

    /// Fig. 3 — inter-operation histogram, GMM fit and τ.
    pub(crate) fn exp_f3(&mut self) -> Report {
        // Robustness: sessionise a user subsample across a τ grid — the
        // §3.1.1 claim is that any τ inside the inter-mode gap yields the
        // same sessions (a plateau around the derived τ).
        let sweep_blocks: Vec<Vec<mcs_trace::LogRecord>> = {
            let gen = self.generator();
            gen.users()
                .iter()
                .step_by(10)
                .map(|u| {
                    gen.user_records(u)
                        .into_iter()
                        .filter(|r| r.device_type.is_mobile())
                        .collect()
                })
                .collect()
        };
        let a = self.analysis();
        let tau = &a.tau;
        let mass = tau.histogram.mass();
        let pts: Vec<(f64, f64)> = mass.iter().map(|&(x, m)| (x, m)).collect();
        let mut body = series(
            "Histogram of inter-operation time (seconds, log bins; mass)",
            "seconds",
            "fraction",
            &thin(&pts, 36),
        );
        if let Some(g) = &tau.gmm {
            body.push('\n');
            let rows: Vec<Vec<String>> = g
                .components
                .iter()
                .map(|c| {
                    vec![
                        pct(c.weight),
                        crate::render::secs(10f64.powf(c.mean)),
                        sig(c.std_dev),
                    ]
                })
                .collect();
            body.push_str("Two-component Gaussian mixture on log10(seconds):\n");
            body.push_str(&table(&["weight", "mode (s)", "sigma(log10)"], &rows));
        }
        // τ sweep on a 10% user subsample.
        let tau = &a.tau;
        let grid: Vec<f64> = [0.033, 0.1, 0.33, 1.0, 3.0, 10.0, 30.0]
            .iter()
            .map(|m| m * tau.tau_s)
            .collect();
        let sweep = mcs_analysis::sessionize::tau_sweep(&sweep_blocks, &grid);
        let rows: Vec<Vec<String>> = sweep
            .iter()
            .map(|&(t, n)| vec![crate::render::secs(t), n.to_string()])
            .collect();
        body.push('\n');
        body.push_str("Sessions vs threshold (10% user subsample):\n");
        body.push_str(&table(&["tau", "sessions"], &rows));
        let plateau_ratio = sweep[4].1 as f64 / sweep[3].1.max(1) as f64;
        let within_mode_s = tau
            .gmm
            .as_ref()
            .map(|g| 10f64.powf(g.components[0].mean))
            .unwrap_or(f64::NAN);
        let between_mode_s = tau
            .gmm
            .as_ref()
            .map(|g| 10f64.powf(g.components[1].mean))
            .unwrap_or(f64::NAN);
        // The operational "between-session interval ≈ 1 day": the median of
        // intervals above τ, read from the histogram (the 2-component GMM's
        // second mean is sensitive to how EM splits the thin minutes-scale
        // bridge, so it is reported as info only).
        let median_between_s = {
            let h = &tau.histogram;
            let above: Vec<(f64, u64)> = (0..h.bins())
                .map(|i| (h.bin_center(i), h.counts()[i]))
                .filter(|&(c, _)| c > tau.tau_s)
                .collect();
            let total: u64 = above.iter().map(|&(_, n)| n).sum();
            let mut acc = 0u64;
            let mut median = f64::NAN;
            for &(c, n) in &above {
                acc += n;
                if acc * 2 >= total {
                    median = c;
                    break;
                }
            }
            median
        };
        Report {
            id: ExperimentId::F3,
            title: "Fig. 3 — file-operation intervals: histogram, GMM, τ".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "within-session mode",
                    "~10 s (ours skews faster: batched op issuing)",
                    crate::render::secs(within_mode_s),
                    within_mode_s > 0.1 && within_mode_s < 120.0,
                ),
                Metric::checked(
                    "median between-session interval",
                    "~1 day",
                    crate::render::secs(median_between_s),
                    median_between_s > 3.0 * 3600.0 && median_between_s < 5.0 * 86_400.0,
                ),
                Metric::info(
                    "GMM between-session component mean",
                    crate::render::secs(between_mode_s),
                ),
                Metric::checked(
                    "derived session threshold τ",
                    "~1 hour (any value in the inter-mode gap works)",
                    crate::render::secs(tau.tau_s),
                    tau.tau_s > 30.0 && tau.tau_s < 6.0 * 3600.0,
                ),
                Metric::info(
                    "GMM crossover",
                    tau.crossover_s
                        .map(crate::render::secs)
                        .unwrap_or_else(|| "n/a".into()),
                ),
                Metric::checked(
                    "sessionisation stable around τ (3x sweep)",
                    "plateau: any τ in the gap works",
                    format!("{:.3}x sessions at 3τ", plateau_ratio),
                    (0.9..=1.02).contains(&plateau_ratio),
                ),
            ],
        }
    }

    /// Fig. 4 — burstiness of operations within sessions.
    pub(crate) fn exp_f4(&mut self) -> Report {
        let a = self.analysis();
        let grid: Vec<f64> = (0..=16).map(|i| i as f64 * 0.025).collect();
        let mut body = String::new();
        let mut frac_below_01 = f64::NAN;
        for (label, ecdf) in [
            (">1 file op", &a.sessions.norm_operating_gt1),
            (">10 file ops", &a.sessions.norm_operating_gt10),
            (">20 file ops", &a.sessions.norm_operating_gt20),
        ] {
            if let Some(e) = ecdf {
                let pts: Vec<(f64, f64)> = grid.iter().map(|&x| (x, e.cdf(x))).collect();
                body.push_str(&series(
                    &format!("CDF of normalised operating time, sessions with {label}"),
                    "normalised time",
                    "CDF",
                    &pts,
                ));
                body.push('\n');
                if label == ">1 file op" {
                    frac_below_01 = e.cdf(0.1);
                }
            }
        }
        Report {
            id: ExperimentId::F4,
            title: "Fig. 4 — user operating time within sessions".into(),
            body,
            metrics: vec![Metric::checked(
                "sessions with operating time < 10% of length",
                "> 80%",
                pct(frac_below_01),
                frac_below_01 > 0.7,
            )],
        }
    }

    /// Fig. 5 — session sizes.
    pub(crate) fn exp_f5(&mut self) -> Report {
        let a = self.analysis();
        let probes = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0];
        let mut body = String::new();
        let mut one_file_frac = f64::NAN;
        let mut over20_frac = f64::NAN;
        for (label, ecdf) in [
            ("store-only", &a.sessions.ops_store_only),
            ("retrieve-only", &a.sessions.ops_retrieve_only),
        ] {
            if let Some(e) = ecdf {
                let pts: Vec<(f64, f64)> = probes.iter().map(|&x| (x, e.cdf(x))).collect();
                body.push_str(&series(
                    &format!("Fig. 5a — CDF of file operations per {label} session"),
                    "# files",
                    "CDF",
                    &pts,
                ));
                body.push('\n');
                if label == "store-only" {
                    one_file_frac = e.cdf(1.0);
                    over20_frac = e.ccdf(20.0);
                }
            }
        }
        for (label, bins) in [
            (
                "Fig. 5b — store-only session volume vs files",
                &a.sessions.store_volume_bins,
            ),
            (
                "Fig. 5c — retrieve-only session volume vs files",
                &a.sessions.retrieve_volume_bins,
            ),
        ] {
            let wanted = [1u32, 2, 5, 10, 20, 40, 60, 80, 100];
            let rows: Vec<Vec<String>> = bins
                .iter()
                .filter(|b| wanted.contains(&b.files))
                .map(|b| {
                    vec![
                        b.files.to_string(),
                        b.sessions.to_string(),
                        sig(b.mean_mb),
                        sig(b.median_mb),
                        sig(b.p25_mb),
                        sig(b.p75_mb),
                    ]
                })
                .collect();
            body.push_str(&format!("{label} (MB):\n"));
            body.push_str(&table(
                &["files", "sessions", "mean", "median", "p25", "p75"],
                &rows,
            ));
            body.push('\n');
        }
        let retrieve_single = a
            .sessions
            .retrieve_volume_bins
            .iter()
            .find(|b| b.files == 1)
            .map(|b| b.mean_mb)
            .unwrap_or(f64::NAN);
        Report {
            id: ExperimentId::F5,
            title: "Fig. 5 — session size vs number of operations".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "sessions with a single file op",
                    "~40%",
                    pct(one_file_frac),
                    (0.2..=0.6).contains(&one_file_frac),
                ),
                Metric::checked(
                    "sessions with > 20 file ops",
                    "~10%",
                    pct(over20_frac),
                    (0.02..=0.25).contains(&over20_frac),
                ),
                Metric::checked(
                    "store volume slope (avg file size)",
                    "~1.5 MB/file",
                    format!("{} MB/file", sig(a.sessions.store_mb_per_file)),
                    (0.8..=3.0).contains(&a.sessions.store_mb_per_file),
                ),
                Metric::checked(
                    "mean volume of 1-file retrieve sessions",
                    "~70 MB (large shared objects)",
                    format!("{} MB", sig(retrieve_single)),
                    retrieve_single > 20.0,
                ),
            ],
        }
    }

    /// Fig. 6 + Table 2 — mixture-exponential average-file-size model.
    pub(crate) fn exp_f6_t2(&mut self) -> Report {
        let a = self.analysis();
        let mut body = String::new();
        let mut metrics = Vec::new();
        let paper_rows: [(&str, [(f64, f64); 3]); 2] = [
            ("store-only", [(0.91, 1.5), (0.07, 13.1), (0.02, 77.4)]),
            ("retrieve-only", [(0.46, 1.6), (0.26, 29.8), (0.28, 146.8)]),
        ];
        for ((label, paper), fit) in paper_rows
            .iter()
            .zip([&a.filesize_store, &a.filesize_retrieve])
        {
            let Some(f) = fit else { continue };
            let Some(m) = &f.mixture else { continue };
            let rows: Vec<Vec<String>> = m
                .components
                .iter()
                .map(|c| vec![sig(c.weight), sig(c.mean)])
                .collect();
            body.push_str(&format!(
                "Table 2 ({label}): fitted mixture on {} sessions (αᵢ, µᵢ MB):\n",
                f.sessions
            ));
            body.push_str(&table(&["alpha", "mu (MB)"], &rows));
            if let Some(t) = f.chi2 {
                body.push_str(&format!(
                    "chi-square: stat {:.1}, dof {}, p {:.3} ({}); KS distance {:.4}\n",
                    t.statistic,
                    t.dof,
                    t.p_value,
                    if t.passes(0.05) {
                        "passes 5% test"
                    } else {
                        "rejected: multi-file session averages are Gamma-concentrated"
                    },
                    f.ks,
                ));
            }
            let ccdf = f.ccdf_series(14);
            let rows: Vec<Vec<String>> = ccdf
                .iter()
                .map(|&(x, emp, model)| vec![sig(x), sig(emp), sig(model)])
                .collect();
            body.push_str(&format!("Fig. 6 ({label}) CCDF (MB → empirical, model):\n"));
            body.push_str(&table(&["MB", "empirical", "model"], &rows));
            body.push('\n');

            // Headline: dominant component near the paper's. EM may
            // resolve the photo mode into two adjacent sub-components, so
            // the weight comparison pools everything within 3× of the
            // paper's µ1 (the "photo-sized mass").
            let c0 = m.components[0];
            let photo_mass: f64 = m
                .components
                .iter()
                .filter(|c| c.mean < 3.0 * paper[0].1)
                .map(|c| c.weight)
                .sum();
            metrics.push(Metric::checked(
                format!("{label}: dominant component µ1"),
                format!("{} MB", paper[0].1),
                format!("{} MB", sig(c0.mean)),
                (c0.mean - paper[0].1).abs() < paper[0].1.max(1.0),
            ));
            metrics.push(Metric::checked(
                format!("{label}: photo-sized mass (α within 3x of µ1)"),
                pct(paper[0].0),
                pct(photo_mass),
                (photo_mass - paper[0].0).abs() < 0.25,
            ));
            metrics.push(Metric::checked(
                format!("{label}: component count"),
                "3",
                m.k().to_string(),
                (2..=4).contains(&m.k()),
            ));
            metrics.push(Metric::checked(
                format!("{label}: fit quality (KS distance)"),
                "fits visually (paper: passes coarse chi-square)",
                format!("{:.3}", f.ks),
                f.ks < 0.10,
            ));
        }
        Report {
            id: ExperimentId::F6T2,
            title: "Fig. 6 / Table 2 — average file size per session".into(),
            body,
            metrics,
        }
    }

    /// Fig. 7 — stored/retrieved volume-ratio distributions.
    pub(crate) fn exp_f7(&mut self) -> Report {
        let a = self.analysis();
        let probes: Vec<f64> = (-10..=10).map(|e| 10f64.powi(e)).collect();
        let mut body = String::new();
        let curve = |name: &str, e: &Option<Ecdf>, body: &mut String| {
            if let Some(e) = e {
                let pts: Vec<(f64, f64)> = probes.iter().map(|&x| (x, e.cdf(x))).collect();
                body.push_str(&series(
                    &format!("Fig. 7 CDF — {name} ({} users)", e.len()),
                    "store/retrieve ratio",
                    "CDF",
                    &pts,
                ));
                body.push('\n');
            }
        };
        curve("mobile & PC", &a.usage.ratio_mobile_pc, &mut body);
        curve("only mobile", &a.usage.ratio_mobile_only, &mut body);
        curve("only PC", &a.usage.ratio_pc_only, &mut body);
        curve("1 mobile device", &a.usage.ratio_1dev, &mut body);
        curve(">1 mobile device", &a.usage.ratio_multi_dev, &mut body);
        curve(">2 mobile devices", &a.usage.ratio_3plus_dev, &mut body);

        let frac_store_dom = |e: &Option<Ecdf>| e.as_ref().map(|e| e.ccdf(1e5)).unwrap_or(f64::NAN);
        let mobile_dom = frac_store_dom(&a.usage.ratio_mobile_only);
        let pc_dom = frac_store_dom(&a.usage.ratio_pc_only);
        let one_dev = frac_store_dom(&a.usage.ratio_1dev);
        let multi_dev = frac_store_dom(&a.usage.ratio_multi_dev);
        Report {
            id: ExperimentId::F7,
            title: "Fig. 7 — per-user stored/retrieved volume ratio".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "storage-dominated (ratio > 1e5): mobile vs PC",
                    "mobile users higher",
                    format!("mobile {} vs PC {}", pct(mobile_dom), pct(pc_dom)),
                    mobile_dom > pc_dom,
                ),
                Metric::checked(
                    "multi-device users less storage-dominated",
                    "significant reduction",
                    format!("1 dev {} vs >1 dev {}", pct(one_dev), pct(multi_dev)),
                    multi_dev < one_dev,
                ),
            ],
        }
    }

    /// Table 3 — user typology with volume shares.
    pub(crate) fn exp_t3(&mut self) -> Report {
        let a = self.analysis();
        let mut body = String::new();
        let mut rows = Vec::new();
        let classes = ["upload-only", "download-only", "occasional", "mixed"];
        for (label, g) in [
            ("mobile only", &a.usage.mobile_only),
            ("mobile & PC", &a.usage.mobile_pc),
            ("PC only", &a.usage.pc_only),
        ] {
            let uf = g.user_fracs();
            let sf = g.store_volume_fracs();
            let rf = g.retrieve_volume_fracs();
            for (i, class) in classes.iter().enumerate() {
                rows.push(vec![
                    label.to_string(),
                    class.to_string(),
                    pct(uf[i]),
                    pct(sf[i]),
                    pct(rf[i]),
                ]);
            }
        }
        body.push_str(&table(
            &["group", "class", "# users", "store vol.", "retr. vol."],
            &rows,
        ));

        let mo = a.usage.mobile_only.user_fracs();
        let mo_store = a.usage.mobile_only.store_volume_fracs();
        let pc = a.usage.pc_only.user_fracs();
        Report {
            id: ExperimentId::T3,
            title: "Table 3 — four user types per client group".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "mobile-only upload-only users",
                    "51.5%",
                    pct(mo[0]),
                    (0.35..=0.65).contains(&mo[0]),
                ),
                Metric::checked(
                    "their share of stored volume",
                    "86.6%",
                    pct(mo_store[0]),
                    mo_store[0] > 0.6,
                ),
                Metric::checked("mobile-only mixed users", "7.2%", pct(mo[3]), mo[3] < 0.2),
                Metric::checked(
                    "PC users spread more evenly (upload-only share)",
                    "31.6% (vs 51.5% mobile)",
                    pct(pc[0]),
                    pc[0] < mo[0],
                ),
            ],
        }
    }

    /// Fig. 8 — engagement: first return day.
    pub(crate) fn exp_f8(&mut self) -> Report {
        let a = self.analysis();
        let groups = [
            ("1 mobile dev", EngagementGroup::OneMobileDev),
            (">1 mobile dev", EngagementGroup::MultiMobileDev),
            (">2 mobile dev", EngagementGroup::ThreePlusMobileDev),
            ("mobile & PC", EngagementGroup::MobilePc),
        ];
        let mut rows = Vec::new();
        for (label, g) in groups {
            let h = a.engagement.return_histogram(g);
            let mut row = vec![label.to_string(), h.cohort.to_string()];
            for d in 1..=6 {
                row.push(pct(h.frac_on_day(d)));
            }
            row.push(pct(h.frac_never()));
            rows.push(row);
        }
        let body = table(
            &[
                "group",
                "cohort",
                "d1",
                "d2",
                "d3",
                "d4",
                "d5",
                "d6",
                ">6 (never)",
            ],
            &rows,
        );
        let one = a.engagement.return_histogram(EngagementGroup::OneMobileDev);
        let multi = a
            .engagement
            .return_histogram(EngagementGroup::MultiMobileDev);
        Report {
            id: ExperimentId::F8,
            title: "Fig. 8 — user engagement (first return day)".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "1-device users inactive all week",
                    "~50%",
                    pct(one.frac_never()),
                    (0.3..=0.7).contains(&one.frac_never()),
                ),
                Metric::checked(
                    "multi-device users inactive all week",
                    "< 20%",
                    pct(multi.frac_never()),
                    multi.frac_never() < 0.3,
                ),
                Metric::checked(
                    "bimodality: next-day return is the modal return day",
                    "day 1 dominates",
                    pct(one.frac_on_day(1)),
                    (1..=6).map(|d| one.frac_on_day(d)).fold(0.0, f64::max) == one.frac_on_day(1),
                ),
            ],
        }
    }

    /// Fig. 9 — retrieval after upload.
    pub(crate) fn exp_f9(&mut self) -> Report {
        let a = self.analysis();
        let groups = [
            ("1 mobile dev", EngagementGroup::OneMobileDev),
            (">1 mobile dev", EngagementGroup::MultiMobileDev),
            (">2 mobile dev", EngagementGroup::ThreePlusMobileDev),
            ("mobile & PC", EngagementGroup::MobilePc),
        ];
        let mut rows = Vec::new();
        for (label, g) in groups {
            let r = a.engagement.retrieval_after_upload(g);
            let mut row = vec![label.to_string(), r.cohort.to_string()];
            for d in 0..7 {
                row.push(pct(r.frac_on_day(d)));
            }
            row.push(pct(r.frac_never()));
            rows.push(row);
        }
        let body = table(
            &[
                "group",
                "uploaders",
                "d0",
                "d1",
                "d2",
                "d3",
                "d4",
                "d5",
                "d6",
                "never",
            ],
            &rows,
        );
        let one = a
            .engagement
            .retrieval_after_upload(EngagementGroup::OneMobileDev);
        let multi = a
            .engagement
            .retrieval_after_upload(EngagementGroup::MultiMobileDev);
        let pc = a
            .engagement
            .retrieval_after_upload(EngagementGroup::MobilePc);
        Report {
            id: ExperimentId::F9,
            title: "Fig. 9 — probability of retrieving after a first-day upload".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "mobile-only (1 dev) never retrieve within the week",
                    "> 80%",
                    pct(one.frac_never()),
                    one.frac_never() > 0.65,
                ),
                Metric::checked(
                    "mobile-only (multi dev) never retrieve",
                    "> 80% (device count does not matter)",
                    pct(multi.frac_never()),
                    multi.frac_never() > 0.6,
                ),
                Metric::checked(
                    "mobile & PC users retrieve sooner",
                    "higher, especially day 0",
                    format!(
                        "day-0 {} vs {}, never {} vs {}",
                        pct(pc.frac_on_day(0)),
                        pct(one.frac_on_day(0)),
                        pct(pc.frac_never()),
                        pct(one.frac_never())
                    ),
                    pc.frac_never() < one.frac_never() && pc.frac_on_day(0) > one.frac_on_day(0),
                ),
            ],
        }
    }

    /// Fig. 10 — stretched-exponential activity model.
    pub(crate) fn exp_f10(&mut self) -> Report {
        let a = self.analysis();
        let mut body = String::new();
        let mut metrics = Vec::new();
        for (label, fit) in [
            ("stored", &a.activity.store),
            ("retrieved", &a.activity.retrieve),
        ] {
            let Some(f) = fit else { continue };
            body.push_str(&format!(
                "{label}: SE fit c = {:.3}, a = {:.3}, b = {:.3}, R² = {:.5}; power-law R² = {:.5}\n",
                f.se.c, f.se.a, f.se.b, f.se.r_squared, f.power_law.r_squared
            ));
            let rows: Vec<Vec<String>> = f
                .rank_series(12)
                .iter()
                .map(|&(rank, obs, model)| vec![rank.to_string(), sig(obs), sig(model)])
                .collect();
            body.push_str(&table(&["rank", "observed", "SE model"], &rows));
            body.push('\n');
            metrics.push(Metric::checked(
                format!("{label}: SE beats power law (R²)"),
                "SE model fits, power law deviates",
                format!(
                    "SE {:.4} vs PL {:.4}",
                    f.se.r_squared, f.power_law.r_squared
                ),
                f.se_wins(),
            ));
            metrics.push(Metric::checked(
                format!("{label}: stretch factor c"),
                if label == "stored" { "0.2" } else { "0.15" }.to_string(),
                format!("{:.3}", f.se.c),
                f.se.c > 0.05 && f.se.c < 0.9,
            ));
        }
        if let (Some(s), Some(r)) = (&a.activity.store, &a.activity.retrieve) {
            metrics.push(Metric::checked(
                "retrieval more skewed than storage (smaller c)",
                "c_retrieve < c_store",
                format!("{:.3} vs {:.3}", r.se.c, s.se.c),
                r.se.c < s.se.c + 0.05,
            ));
        }
        // §3.2.3 implication, quantified: how many users must a "core
        // user" optimisation cover, vs what a power-law fit promises?
        if let Some(fit) = &a.activity.store {
            if let Some(p) = ConcentrationProfile::from_activity(&fit.ranked) {
                body.push_str(&format!(
                    "storage concentration: gini {:.3}, top-1% share {:.3}, \
                     users for 50% of activity: {:.4} (power-law promise: {:.4})\n",
                    p.gini,
                    p.top1pct_share,
                    p.users_for_50pct,
                    p.power_law_users_for(fit.power_law.beta, 0.5),
                ));
                metrics.push(Metric::checked(
                    "coverage: users needed for 50% of uploads",
                    "more than the power-law model predicts",
                    format!(
                        "{} vs power-law {}",
                        pct(p.users_for_50pct),
                        pct(p.power_law_users_for(fit.power_law.beta, 0.5))
                    ),
                    p.users_for_50pct > p.power_law_users_for(fit.power_law.beta, 0.5),
                ));
            }
        }
        Report {
            id: ExperimentId::F10,
            title: "Fig. 10 — rank distribution of user activity".into(),
            body,
            metrics,
        }
    }
}
