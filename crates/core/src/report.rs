//! Experiment identifiers and report structure.
//!
//! Every table and figure of the paper maps to one [`ExperimentId`]; a
//! [`Report`] carries the regenerated rows/series plus headline
//! paper-vs-measured metrics for EXPERIMENTS.md.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// One reproducible experiment (table, figure or ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentId {
    /// Table 1: the log schema.
    T1,
    /// Fig. 1: workload diurnal variation.
    F1,
    /// Fig. 3: inter-operation histogram, GMM fit, τ derivation.
    F3,
    /// Fig. 4: burstiness (normalised operating time).
    F4,
    /// Fig. 5: session sizes.
    F5,
    /// Fig. 6 + Table 2: average-file-size mixture model.
    F6T2,
    /// Fig. 7: store/retrieve volume-ratio distributions.
    F7,
    /// Table 3: user typology and volume shares.
    T3,
    /// Fig. 8: user engagement (first return day).
    F8,
    /// Fig. 9: retrieval-after-upload.
    F9,
    /// Fig. 10: stretched-exponential activity model.
    F10,
    /// Fig. 12: chunk transfer time by device.
    F12,
    /// Fig. 13: sequence/in-flight traces.
    F13,
    /// Fig. 14: RTT distribution.
    F14,
    /// Fig. 15: estimated sending window.
    F15,
    /// Fig. 16: idle-time dissection.
    F16,
    /// Ablation: chunk-size sweep (§4.3).
    A1,
    /// Ablation: SSAI off / paced restart (§4.3).
    A2,
    /// Ablation: server window scaling (§4.1/4.3).
    A3,
    /// Ablation: deferred ("smart") auto backup (§3.2.2).
    A4,
    /// Ablation: f4-style warm tiering cost (Table 4).
    A5,
    /// Ablation: parallel TCP connections (§3.1.3 / §4.1).
    A6,
    /// Ablation: resumable downloads (§3.1.4 implication).
    A7,
}

impl ExperimentId {
    /// All experiments in paper order.
    pub fn all() -> &'static [ExperimentId] {
        use ExperimentId::*;
        &[
            T1, F1, F3, F4, F5, F6T2, F7, T3, F8, F9, F10, F12, F13, F14, F15, F16, A1, A2, A3, A4,
            A5, A6, A7,
        ]
    }

    /// Canonical lowercase id string.
    pub fn as_str(&self) -> &'static str {
        use ExperimentId::*;
        match self {
            T1 => "t1",
            F1 => "f1",
            F3 => "f3",
            F4 => "f4",
            F5 => "f5",
            F6T2 => "f6",
            F7 => "f7",
            T3 => "t3",
            F8 => "f8",
            F9 => "f9",
            F10 => "f10",
            F12 => "f12",
            F13 => "f13",
            F14 => "f14",
            F15 => "f15",
            F16 => "f16",
            A1 => "a1",
            A2 => "a2",
            A3 => "a3",
            A4 => "a4",
            A5 => "a5",
            A6 => "a6",
            A7 => "a7",
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ExperimentId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use ExperimentId::*;
        Ok(match s.to_ascii_lowercase().as_str() {
            "t1" | "table1" => T1,
            "f1" | "fig1" => F1,
            "f3" | "fig3" => F3,
            "f4" | "fig4" => F4,
            "f5" | "fig5" => F5,
            "f6" | "fig6" | "t2" | "table2" => F6T2,
            "f7" | "fig7" => F7,
            "t3" | "table3" => T3,
            "f8" | "fig8" => F8,
            "f9" | "fig9" => F9,
            "f10" | "fig10" => F10,
            "f12" | "fig12" => F12,
            "f13" | "fig13" => F13,
            "f14" | "fig14" => F14,
            "f15" | "fig15" => F15,
            "f16" | "fig16" => F16,
            "a1" => A1,
            "a2" => A2,
            "a3" => A3,
            "a4" => A4,
            "a5" => A5,
            "a6" => A6,
            "a7" => A7,
            other => return Err(format!("unknown experiment id: {other}")),
        })
    }
}

/// A headline paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// What is being compared.
    pub name: String,
    /// The paper's value, when it states one.
    pub paper: Option<String>,
    /// Our measured value.
    pub measured: String,
    /// Whether the shape criterion holds (None = informational only).
    pub ok: Option<bool>,
}

impl Metric {
    /// A paper-vs-measured row with a pass/fail verdict.
    pub fn checked(
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) -> Self {
        Self {
            name: name.into(),
            paper: Some(paper.into()),
            measured: measured.into(),
            ok: Some(ok),
        }
    }

    /// An informational row (no paper value / no verdict).
    pub fn info(name: impl Into<String>, measured: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            paper: None,
            measured: measured.into(),
            ok: None,
        }
    }
}

/// A regenerated table/figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Which experiment this is.
    pub id: ExperimentId,
    /// Human title ("Fig. 3 — …").
    pub title: String,
    /// Rendered body (tables and series).
    pub body: String,
    /// Headline metrics.
    pub metrics: Vec<Metric>,
}

impl Report {
    /// Whether every checked metric holds its shape criterion.
    pub fn all_ok(&self) -> bool {
        self.metrics.iter().all(|m| m.ok != Some(false))
    }

    /// Renders the full report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== [{}] {} ==\n\n", self.id, self.title));
        if !self.metrics.is_empty() {
            let rows: Vec<Vec<String>> = self
                .metrics
                .iter()
                .map(|m| {
                    vec![
                        m.name.clone(),
                        m.paper.clone().unwrap_or_else(|| "-".into()),
                        m.measured.clone(),
                        match m.ok {
                            Some(true) => "ok".into(),
                            Some(false) => "MISMATCH".into(),
                            None => "".into(),
                        },
                    ]
                })
                .collect();
            out.push_str(&crate::render::table(
                &["metric", "paper", "measured", "shape"],
                &rows,
            ));
            out.push('\n');
        }
        out.push_str(&self.body);
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_strings() {
        for &id in ExperimentId::all() {
            let parsed: ExperimentId = id.as_str().parse().unwrap();
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn aliases_accepted() {
        assert_eq!(
            "table2".parse::<ExperimentId>().unwrap(),
            ExperimentId::F6T2
        );
        assert_eq!("FIG3".parse::<ExperimentId>().unwrap(), ExperimentId::F3);
        assert!("f99".parse::<ExperimentId>().is_err());
    }

    #[test]
    fn all_list_has_every_table_and_figure() {
        // 16 figures/tables + 7 ablations.
        assert_eq!(ExperimentId::all().len(), 23);
    }

    #[test]
    fn report_rendering_and_verdicts() {
        let r = Report {
            id: ExperimentId::F3,
            title: "test".into(),
            body: "body".into(),
            metrics: vec![
                Metric::checked("tau", "1 h", "52 min", true),
                Metric::info("sessions", "12345"),
            ],
        };
        assert!(r.all_ok());
        let text = r.render();
        assert!(text.contains("[f3]"));
        assert!(text.contains("52 min"));
        assert!(text.contains("body"));

        let bad = Report {
            metrics: vec![Metric::checked("x", "1", "2", false)],
            ..r
        };
        assert!(!bad.all_ok());
        assert!(bad.render().contains("MISMATCH"));
    }
}
