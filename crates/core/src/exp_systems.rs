//! System-design experiments A4 and A5: the Table 4 implications run as
//! systems on the synthetic trace.

use mcs_storage::defer::{evaluate_deferral, DeferPolicy, UploadJob};
use mcs_storage::tier::{TierPolicy, TieredStore};
use mcs_trace::Direction;

use crate::render::{bytes, pct, table};
use crate::report::{ExperimentId, Metric, Report};
use crate::suite::ExperimentSuite;

impl ExperimentSuite {
    /// Ablation A4 — "smart" deferred auto backup (§3.2.2 implication).
    pub(crate) fn exp_a4(&mut self) -> Report {
        let horizon_hours = (self.config().trace.horizon_ms() / 3_600_000) as usize;
        let gen = self.generator();
        // Build upload jobs from the planned sessions: one job per store
        // session, with the user's next retrieval session (if any) as the
        // QoE deadline.
        let mut jobs = Vec::new();
        for user in gen.users() {
            let sessions = gen.user_sessions(user);
            for (i, s) in sessions.iter().enumerate() {
                let store_bytes = s.store_bytes();
                if store_bytes == 0 {
                    continue;
                }
                let first_retrieval = sessions[i..]
                    .iter()
                    .find(|later| later.retrieve_bytes() > 0)
                    .map(|later| later.start_ms);
                jobs.push(UploadJob {
                    submitted_ms: s.start_ms,
                    bytes: store_bytes,
                    first_retrieval_ms: first_retrieval,
                });
            }
        }
        let policy = DeferPolicy::default();
        let report = evaluate_deferral(&jobs, &policy, horizon_hours);

        let mut rows = Vec::new();
        rows.push(vec![
            "peak hourly upload volume".into(),
            bytes(report.peak_immediate()),
            bytes(report.peak_deferred()),
        ]);
        rows.push(vec![
            "load in the 19-23h window".into(),
            bytes(mcs_storage::defer::DeferralReport::window_volume(
                &report.immediate_hourly,
                &policy,
            )),
            bytes(mcs_storage::defer::DeferralReport::window_volume(
                &report.deferred_hourly,
                &policy,
            )),
        ]);
        let top_k = 8;
        rows.push(vec![
            format!("top-{top_k}-hour mean upload volume"),
            bytes(mcs_storage::defer::DeferralReport::top_k_mean(
                &report.immediate_hourly,
                top_k,
            )),
            bytes(mcs_storage::defer::DeferralReport::top_k_mean(
                &report.deferred_hourly,
                top_k,
            )),
        ]);
        rows.push(vec![
            "jobs deferred".into(),
            "0".into(),
            format!("{} / {}", report.deferred_jobs, report.total_jobs),
        ]);
        rows.push(vec![
            "QoE violations (retrieval before deferred upload)".into(),
            "0".into(),
            format!(
                "{} ({})",
                report.qoe_violations,
                pct(report.qoe_violation_rate())
            ),
        ]);
        let body = table(&["metric", "immediate", "deferred"], &rows);
        Report {
            id: ExperimentId::A4,
            title: "A4 — deferred (\"smart\") auto backup".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "load moved out of the 19-23h peak window",
                    "most of it (uploads deferrable)",
                    pct(report.peak_window_reduction(&policy)),
                    report.peak_window_reduction(&policy) > 0.5,
                ),
                Metric::info(
                    "top-8-hour mean load reduction",
                    pct(report.top_k_peak_reduction(8)),
                ),
                Metric::info(
                    "absolute hourly peak reduction",
                    pct(report.peak_reduction()),
                ),
                Metric::checked(
                    "QoE violation rate",
                    "low (few retrieve soon after uploading)",
                    pct(report.qoe_violation_rate()),
                    report.qoe_violation_rate() < 0.15,
                ),
            ],
        }
    }

    /// Ablation A5 — f4-style warm tiering (Table 4 cost implication).
    pub(crate) fn exp_a5(&mut self) -> Report {
        let horizon_ms = self.config().trace.horizon_ms();
        let gen = self.generator();
        let policy = TierPolicy::default();
        let mut store = TieredStore::new(policy);
        // Replay the trace: each stored file becomes an object; later
        // retrieval sessions of the same user read their most recent
        // uploads (file identity is not in the logs — same upper-bound
        // approximation as Fig. 9).
        let mut next_id = 0u64;
        for user in gen.users() {
            let sessions = gen.user_sessions(user);
            let mut owned: Vec<u64> = Vec::new();
            for s in &sessions {
                for f in &s.files {
                    match f.direction {
                        Direction::Store => {
                            store.put(next_id, f.size, s.start_ms);
                            owned.push(next_id);
                            next_id += 1;
                        }
                        Direction::Retrieve => {
                            if let Some(&id) = owned.last() {
                                let _ = store.read(id, s.start_ms);
                            }
                        }
                    }
                }
            }
        }
        // Steady-state accounting: the one-week window right-censors the
        // cooling of late uploads, so let the policy's idle clock run out
        // past the trace end (consistent with Fig. 9: accesses after the
        // week are rare).
        let settle_ms = (policy.warm_after_days * 1.5 * 86_400_000.0) as u64;
        store.demote_all_eligible(horizon_ms + settle_ms);

        let saving = store.capacity_saving();
        let warm = store.warm_fraction();
        let rows = vec![
            vec![
                "provisioned capacity (all hot)".into(),
                bytes(store.provisioned_bytes_all_hot()),
            ],
            vec![
                "provisioned capacity (tiered)".into(),
                bytes(store.provisioned_bytes()),
            ],
            vec!["objects warm at end of week".into(), pct(warm)],
            vec![
                "warm reads (slower path)".into(),
                store.stats.warm_reads.to_string(),
            ],
            vec!["hot reads".into(), store.stats.hot_reads.to_string()],
            vec!["demotions".into(), store.stats.demotions.to_string()],
        ];
        let body = table(&["metric", "value"], &rows);
        let max_saving = 1.0 - policy.warm_replication / policy.hot_replication;
        Report {
            id: ExperimentId::A5,
            title: "A5 — f4-style warm storage for rarely-read uploads".into(),
            body,
            metrics: vec![
                Metric::checked(
                    "capacity saving vs all-hot",
                    format!("approaches {} (f4 2.1× vs 3×)", pct(max_saving)),
                    pct(saving),
                    saving > 0.5 * max_saving,
                ),
                Metric::checked(
                    "objects cold after one week",
                    "most uploads never read (Fig. 9)",
                    pct(warm),
                    warm > 0.5,
                ),
            ],
        }
    }
}
