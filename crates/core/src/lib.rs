//! `mcs` — umbrella crate of the IMC'16 mobile cloud storage reproduction.
//!
//! Re-exports the substrate crates and provides the experiment suite that
//! regenerates every table and figure of *"An Empirical Analysis of a
//! Large-scale Mobile Cloud Storage Service"* (IMC 2016):
//!
//! ```no_run
//! use mcs::{ExperimentSuite, ReproConfig};
//!
//! let mut suite = ExperimentSuite::new(ReproConfig::small(42));
//! let report = suite.run("f3".parse().unwrap());
//! println!("{}", report.render());
//! ```
//!
//! The eight substrate crates are available as modules:
//!
//! * [`stats`] — statistics (EM fits, ECDFs, SE rank models, GoF tests),
//! * [`trace`] — Table 1 log schema + paper-calibrated workload generator,
//! * [`analysis`] — the paper's analysis pipeline,
//! * [`sim`] — the seeded discrete-event scheduler: the one timeline the
//!   net, storage and fault layers share (DESIGN.md §10),
//! * [`net`] — the discrete-event TCP / chunk-transfer simulator (§4),
//! * [`storage`] — the §2.1 service substrate and Table 4 optimisations,
//! * [`faults`] — deterministic fault-injection plans and retry policies,
//! * [`obs`] — deterministic metrics/tracing (logical time, mergeable
//!   registries, stable exporters).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub use mcs_analysis as analysis;
pub use mcs_faults as faults;
pub use mcs_net as net;
pub use mcs_obs as obs;
pub use mcs_sim as sim;
pub use mcs_stats as stats;
pub use mcs_storage as storage;
pub use mcs_trace as trace;

pub mod config;
mod exp_behavior;
mod exp_perf;
mod exp_systems;
pub mod render;
pub mod report;
pub mod sensitivity;
pub mod suite;

pub use config::{ReproConfig, Scale};
pub use report::{ExperimentId, Metric, Report};
pub use sensitivity::{run_sensitivity, SensitivityReport};
pub use suite::ExperimentSuite;
