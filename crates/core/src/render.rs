//! Plain-text rendering for experiment reports: aligned tables, CDF/series
//! listings, and unit formatting. Everything the `repro` harness prints
//! comes through here so reports look uniform.

/// Renders an aligned table. `headers.len()` must match every row's arity.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    assert!(rows.iter().all(|r| r.len() == cols), "ragged table");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders an `(x, y)` series as two aligned columns with a title.
pub fn series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = points.iter().map(|&(x, y)| vec![sig(x), sig(y)]).collect();
    format!("{title}\n{}", table(&[x_label, y_label], &rows))
}

/// Thins a long series to at most `max_points` evenly spaced entries.
pub fn thin(points: &[(f64, f64)], max_points: usize) -> Vec<(f64, f64)> {
    if points.len() <= max_points || max_points == 0 {
        return points.to_vec();
    }
    let step = (points.len() - 1) as f64 / (max_points - 1) as f64;
    (0..max_points)
        .map(|i| points[(i as f64 * step).round() as usize])
        .collect()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count with a binary-free, paper-style unit (the paper
/// quotes decimal MB/TB).
pub fn bytes(b: f64) -> String {
    const UNITS: [(&str, f64); 4] = [("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)];
    for (unit, scale) in UNITS {
        if b.abs() >= scale {
            return format!("{:.2} {unit}", b / scale);
        }
    }
    format!("{b:.0} B")
}

/// Formats a value to three significant figures.
pub fn sig(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (2 - mag).clamp(0, 9) as usize;
    format!("{x:.decimals$}")
}

/// Formats seconds human-readably.
pub fn secs(s: f64) -> String {
    if s >= 86_400.0 {
        format!("{:.1} d", s / 86_400.0)
    } else if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name"));
        // Columns align.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].len().max(col), lines[2].len().max(col));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_table_panics() {
        let _ = table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn thinning() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let t = thin(&pts, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t[0], (0.0, 0.0));
        assert_eq!(t[9], (99.0, 99.0));
        // Short series pass through.
        assert_eq!(thin(&pts[..5], 10).len(), 5);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(pct(0.682), "68.2%");
        assert_eq!(bytes(1_500_000.0), "1.50 MB");
        assert_eq!(bytes(2.3e12), "2.30 TB");
        assert_eq!(bytes(12.0), "12 B");
        assert_eq!(secs(90.0), "1.5 min");
        assert_eq!(secs(0.5), "500.0 ms");
        assert_eq!(secs(2.0 * 86_400.0), "2.0 d");
    }

    #[test]
    fn sig_figs() {
        assert_eq!(sig(0.0), "0");
        assert_eq!(sig(1234.5), "1234"); // banker-style rounding of {:.0}
        assert_eq!(sig(1.2345), "1.23");
        assert_eq!(sig(0.012345), "0.0123");
    }

    #[test]
    fn series_rendering() {
        let s = series("CDF", "x", "F(x)", &[(1.0, 0.5), (2.0, 1.0)]);
        assert!(s.starts_with("CDF\n"));
        assert!(s.contains("F(x)"));
    }
}
