//! Reproduction configuration presets.

use serde::{Deserialize, Serialize};

use mcs_analysis::PipelineConfig;
use mcs_trace::TraceConfig;

/// Scale presets trading runtime for statistical resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~2 k mobile users; seconds. CI-friendly.
    Small,
    /// ~10 k mobile users; tens of seconds. The default for `repro`.
    Medium,
    /// ~40 k mobile users; minutes. Tightest percentile estimates.
    Large,
}

impl Scale {
    /// Mobile-user population for the scale.
    pub fn mobile_users(self) -> u64 {
        match self {
            Scale::Small => 2_000,
            Scale::Medium => 10_000,
            Scale::Large => 40_000,
        }
    }

    /// PC-only population.
    pub fn pc_only_users(self) -> u64 {
        self.mobile_users() * 2 / 5
    }

    /// Simulated §4 flows per paper file size.
    pub fn flows_per_size(self) -> u32 {
        match self {
            Scale::Small => 2,
            Scale::Medium => 4,
            Scale::Large => 8,
        }
    }
}

/// Top-level configuration for the reproduction suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproConfig {
    /// Master seed.
    pub seed: u64,
    /// Scale preset.
    pub scale: Scale,
    /// Trace-generator configuration (derived from scale + seed, then
    /// freely adjustable).
    pub trace: TraceConfig,
    /// Analysis-pipeline knobs.
    pub pipeline: PipelineConfig,
}

impl ReproConfig {
    /// Builds the configuration for a scale and seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let trace = TraceConfig {
            seed,
            mobile_users: scale.mobile_users(),
            pc_only_users: scale.pc_only_users(),
            ..TraceConfig::default()
        };
        let pipeline = PipelineConfig {
            horizon_secs: trace.horizon_ms() / 1000,
            ..PipelineConfig::default()
        };
        Self {
            seed,
            scale,
            trace,
            pipeline,
        }
    }

    /// Sets the worker-thread count for both trace generation and analysis
    /// (`0` = one per available core). Results are identical for any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.trace.threads = threads;
        self.pipeline.threads = threads;
        self
    }

    /// The default reproduction setup (medium scale, fixed seed).
    pub fn paper_default() -> Self {
        Self::new(Scale::Medium, 0x4d43_5331)
    }

    /// A fast setup for tests and CI.
    pub fn small(seed: u64) -> Self {
        Self::new(Scale::Small, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_valid() {
        for scale in [Scale::Small, Scale::Medium, Scale::Large] {
            let cfg = ReproConfig::new(scale, 1);
            cfg.trace.validate().expect("valid trace config");
            assert_eq!(cfg.trace.mobile_users, scale.mobile_users());
            assert_eq!(cfg.pipeline.horizon_secs, cfg.trace.horizon_ms() / 1000);
        }
    }

    #[test]
    fn scales_ordered() {
        assert!(Scale::Small.mobile_users() < Scale::Medium.mobile_users());
        assert!(Scale::Medium.mobile_users() < Scale::Large.mobile_users());
        assert!(Scale::Small.flows_per_size() <= Scale::Large.flows_per_size());
    }

    #[test]
    fn with_threads_sets_both_knobs() {
        let cfg = ReproConfig::small(3).with_threads(4);
        assert_eq!(cfg.trace.threads, 4);
        assert_eq!(cfg.pipeline.threads, 4);
    }

    #[test]
    fn threads_default_to_zero_and_old_json_still_parses() {
        let cfg = ReproConfig::small(3);
        assert_eq!(cfg.trace.threads, 0);
        assert_eq!(cfg.pipeline.threads, 0);
        // Configs serialized before the threads knob existed must load.
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped = json
            .replace(",\"threads\":0", "")
            .replace("\"threads\":0,", "");
        let back: ReproConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = ReproConfig::paper_default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ReproConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
