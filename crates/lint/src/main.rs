//! CLI for the workspace auditor.
//!
//! ```text
//! mcs-lint [--json] [--debt] [ROOT]
//! ```
//!
//! `ROOT` defaults to the nearest ancestor of the current directory whose
//! `Cargo.toml` declares `[workspace]`. `--debt` appends the suppression
//! ledger (live `allow(…)` annotations per rule) to stderr so CI logs
//! track how much of the contract is held by hand-written proofs. Exit
//! codes: 0 clean, 1 when violations were found, 2 on usage or I/O
//! errors.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mcs_lint::run_lint_report;

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut debt = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--debt" => debt = true,
            "--help" | "-h" => {
                println!("usage: mcs-lint [--json] [--debt] [ROOT]");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!(
                    "mcs-lint: unknown flag `{arg}` (usage: mcs-lint [--json] [--debt] [ROOT])"
                );
                return ExitCode::from(2);
            }
            _ => root_arg = Some(PathBuf::from(arg)),
        }
    }

    let root = match root_arg {
        Some(r) => {
            if !r.join("Cargo.toml").is_file() {
                eprintln!(
                    "mcs-lint: `{}` is not a workspace root (no Cargo.toml)",
                    r.display()
                );
                return ExitCode::from(2);
            }
            r
        }
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("mcs-lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("mcs-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match run_lint_report(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mcs-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = &report.diags;

    if json {
        println!("{}", mcs_lint::diagnostics_to_json(diags));
    } else {
        for d in diags {
            println!("{d}");
        }
    }

    if debt {
        eprint!("{}", report.debt_table());
    }

    if diags.is_empty() {
        if !json {
            println!("mcs-lint: workspace clean (rules R1-R10)");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!("mcs-lint: {} violation(s)", diags.len());
        }
        ExitCode::FAILURE
    }
}
