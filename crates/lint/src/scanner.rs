//! A minimal, span-aware Rust lexer — just enough structure for the lint
//! rules.
//!
//! Comments never reach the rule matchers and `// mcs-lint: allow(<rule>,
//! <reason>)` comments are recovered with their line numbers. String, char
//! and byte literals lex as opaque [`TokKind::Lit`] tokens whose `text`
//! carries the *inner* literal content (needed by the metric-manifest
//! rule); `#[cfg(test)]` / `#[test]` item spans are resolved by brace
//! matching so rules can skip test code.
//!
//! Every token carries a [`Span`] (char-index range into the scanned
//! source) in addition to its 1-based line, so rules can reason about
//! expressions, and the scanner property tests can assert that spans
//! round-trip: re-slicing the source by a token's span reproduces the
//! token (see `tests/scanner_prop.rs`).
//!
//! This is deliberately not a full parser (the workspace bans new
//! dependencies, so `syn` is out); the token stream plus spans is
//! sufficient for every rule in [`crate::rules`], and the fixture tests
//! pin the behaviour the rules depend on.

use std::fmt;

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal.
    Num,
    /// String/char/byte literal; `text` holds the raw inner content
    /// (escapes unprocessed, delimiters stripped). Char literals and
    /// escaped chars keep their raw spelling.
    Lit,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// A half-open char-index range `[start, end)` into the scanned source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First char index of the token.
    pub start: usize,
    /// One past the last char index of the token.
    pub end: usize,
}

/// One lexed token with its 1-based source line and char span.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token text (inner content for [`TokKind::Lit`]).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Char-index range of the whole token (delimiters included for
    /// literals).
    pub span: Span,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// An `// mcs-lint: allow(<rule>, <reason>)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id the site opts out of (e.g. `map-iter`).
    pub rule: String,
    /// 1-based line the comment sits on.
    pub line: u32,
}

/// An inclusive 1-based line range lexed as test-only code.
#[derive(Debug, Clone, Copy)]
pub struct LineRange {
    /// First line of the region.
    pub start: u32,
    /// Last line of the region.
    pub end: u32,
}

/// A scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Code tokens (no comments; literal delimiters stripped).
    pub tokens: Vec<Tok>,
    /// `mcs-lint: allow(...)` annotations found in line comments.
    pub allows: Vec<Allow>,
    /// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<LineRange>,
    /// Names from `#[cfg(test)] mod <name>;` declarations (the module body
    /// lives in another file that is entirely test code).
    pub cfg_test_mods: Vec<String>,
    /// Whether the file opens with `#![cfg(test)]` (whole file is tests).
    pub all_test: bool,
}

impl SourceFile {
    /// Scans Rust source text.
    pub fn scan(src: &str) -> Self {
        let (tokens, allows) = lex(src);
        let (test_ranges, cfg_test_mods, all_test) = find_test_regions(&tokens);
        Self {
            tokens,
            allows,
            test_ranges,
            cfg_test_mods,
            all_test,
        }
    }

    /// Whether `line` falls inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.all_test
            || self
                .test_ranges
                .iter()
                .any(|r| line >= r.start && line <= r.end)
    }

    /// Whether an allow-comment for `rule` covers `line` (same line or one
    /// of the two lines directly above, so annotations survive rustfmt
    /// moving them onto their own line).
    ///
    /// Rules should prefer `RuleCtx::allowed`, which also records the
    /// suppression for the stale-allow audit (R10).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| covers(a, rule, line))
    }
}

/// Whether allow-annotation `a` suppresses `rule` at `line`.
pub fn covers(a: &Allow, rule: &str, line: u32) -> bool {
    a.rule == rule && a.line <= line && a.line + 2 >= line
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Lexes source into tokens and allow-annotations.
fn lex(src: &str) -> (Vec<Tok>, Vec<Allow>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let comment: String = b[start..i].iter().collect();
                parse_allow(&comment, line, &mut allows);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Nested block comment.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let l = line;
                let start = i;
                i = skip_string(&b, i, &mut line);
                toks.push(Tok {
                    text: inner_text(&b, start + 1, i.saturating_sub(1)),
                    line: l,
                    kind: TokKind::Lit,
                    span: Span { start, end: i },
                });
            }
            '\'' => {
                // Char literal vs lifetime.
                let l = line;
                let start = i;
                if b.get(i + 1) == Some(&'\\') {
                    // '\x41' / '\n' / '\u{..}' / '\''. Skip the opening
                    // quote, backslash AND the escaped char before hunting
                    // the closing quote, so `'\''` terminates on its real
                    // closer instead of the escaped quote.
                    i = (i + 3).min(b.len());
                    while i < b.len() && b[i] != '\'' {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    toks.push(Tok {
                        text: inner_text(&b, start + 1, (i.max(start + 2)) - 1),
                        line: l,
                        kind: TokKind::Lit,
                        span: Span { start, end: i },
                    });
                } else if b.get(i + 2) == Some(&'\'') {
                    if b[i + 1] == '\n' {
                        line += 1;
                    }
                    i += 3;
                    toks.push(Tok {
                        text: inner_text(&b, start + 1, i - 1),
                        line: l,
                        kind: TokKind::Lit,
                        span: Span { start, end: i },
                    });
                } else {
                    // Lifetime: 'ident
                    i += 1;
                    let id_start = i;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        text: b[id_start..i].iter().collect(),
                        line: l,
                        kind: TokKind::Lifetime,
                        span: Span { start, end: i },
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let l = line;
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part — but never consume `..` (range syntax).
                if i < b.len() && b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    text: b[start..i].iter().collect(),
                    line: l,
                    kind: TokKind::Num,
                    span: Span { start, end: i },
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let l = line;
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br"..".
                if matches!(text.as_str(), "r" | "b" | "br" | "rb")
                    && matches!(b.get(i), Some(&'"') | Some(&'#'))
                {
                    let mut hashes = 0usize;
                    while b.get(i + hashes) == Some(&'#') {
                        hashes += 1;
                    }
                    if b.get(i + hashes) == Some(&'"') {
                        let content_start = i + hashes + 1;
                        if text.contains('r') {
                            i = skip_raw_string(&b, content_start, hashes, &mut line);
                        } else {
                            i = skip_string(&b, i + hashes, &mut line);
                        }
                        toks.push(Tok {
                            text: inner_text(
                                &b,
                                content_start,
                                i.saturating_sub(1 + if text.contains('r') { hashes } else { 0 }),
                            ),
                            line: l,
                            kind: TokKind::Lit,
                            span: Span { start, end: i },
                        });
                        continue;
                    }
                }
                toks.push(Tok {
                    text,
                    line: l,
                    kind: TokKind::Ident,
                    span: Span { start, end: i },
                });
            }
            c => {
                toks.push(Tok {
                    text: c.to_string(),
                    line,
                    kind: TokKind::Punct,
                    span: Span {
                        start: i,
                        end: i + 1,
                    },
                });
                i += 1;
            }
        }
    }
    (toks, allows)
}

/// Slice of the char buffer as a `String`, clamped to valid bounds (the
/// source may end mid-literal).
fn inner_text(b: &[char], start: usize, end: usize) -> String {
    let start = start.min(b.len());
    let end = end.clamp(start, b.len());
    b[start..end].iter().collect()
}

/// Skips a normal (escaped) string starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(b: &[char], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            // Clamp: a trailing backslash at end-of-input must not push
            // the span past the source.
            '\\' => i = (i + 2).min(b.len()),
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string whose opening quote is at `open - 1` with `hashes`
/// `#` marks; returns the index just past the closing delimiter.
fn skip_raw_string(b: &[char], open: usize, hashes: usize, line: &mut u32) -> usize {
    let mut i = open;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' && (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#')) {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Recovers `mcs-lint: allow(<rule>, ...)` directives from a line comment.
fn parse_allow(comment: &str, line: u32, out: &mut Vec<Allow>) {
    let Some(pos) = comment.find("mcs-lint:") else {
        return;
    };
    let rest = &comment[pos + "mcs-lint:".len()..];
    let mut rest = rest.trim_start();
    while let Some(open) = rest.find("allow(") {
        let args = &rest[open + "allow(".len()..];
        let end = args.find(')').unwrap_or(args.len());
        let rule = args[..end].split(',').next().unwrap_or("").trim();
        if !rule.is_empty() {
            out.push(Allow {
                rule: rule.to_string(),
                line,
            });
        }
        rest = &args[end..];
    }
}

/// Finds `#[cfg(test)]` / `#[test]` item spans, gated `mod x;` names, and
/// a file-level `#![cfg(test)]`.
fn find_test_regions(toks: &[Tok]) -> (Vec<LineRange>, Vec<String>, bool) {
    let mut ranges = Vec::new();
    let mut gated_mods = Vec::new();
    let mut all_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let inner = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let open = i + 1 + usize::from(inner);
        if !toks.get(open).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Bracket-match the attribute body.
        let mut depth = 0i32;
        let mut j = open;
        let mut is_test_attr = false;
        let mut has_cfg = false;
        let mut has_not = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("cfg") {
                has_cfg = true;
            } else if t.is_ident("not") {
                has_not = true;
            } else if t.is_ident("test") {
                is_test_attr = true;
            }
            j += 1;
        }
        // `#[cfg(not(test))]` guards *non*-test code; skip it.
        if !is_test_attr || (has_cfg && has_not) {
            i = j + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the entire file is test code.
            all_test = true;
            i = j + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j + 1;
        while toks.get(k).is_some_and(|t| t.is_punct('#'))
            && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut d = 0i32;
            while k < toks.len() {
                if toks[k].is_punct('[') {
                    d += 1;
                } else if toks[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // The item: either `mod name;` (gated out-of-line module) or a
        // braced item whose body we brace-match.
        let item_start = k;
        let mut mod_name: Option<&str> = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_ident("mod") && mod_name.is_none() {
                mod_name = toks.get(k + 1).map(|n| n.text.as_str());
            }
            if t.is_punct(';') {
                if let Some(name) = mod_name {
                    gated_mods.push(name.to_string());
                }
                break;
            }
            if t.is_punct('{') {
                let start_line = toks[item_start].line;
                let mut d = 0i32;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        d += 1;
                    } else if toks[k].is_punct('}') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                let end_line = toks.get(k).map_or(u32::MAX, |t| t.line);
                ranges.push(LineRange {
                    start: start_line,
                    end: end_line,
                });
                break;
            }
            k += 1;
        }
        i = k + 1;
    }
    (ranges, gated_mods, all_test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_tokenize() {
        let f =
            SourceFile::scan("fn a() { let s = \"Instant::now() // not code\"; /* unwrap() */ }");
        assert!(!f.tokens.iter().any(|t| t.is_ident("Instant")));
        assert!(!f.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(f.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn string_literal_content_is_recoverable() {
        let f = SourceFile::scan("let n = reg.counter(\"gen.users\");");
        let lit = f.tokens.iter().find(|t| t.kind == TokKind::Lit).unwrap();
        assert_eq!(lit.text, "gen.users");
    }

    #[test]
    fn raw_strings_skipped() {
        let f = SourceFile::scan("let x = r#\"thread_rng \" quote\"#; let y = 1;");
        assert!(!f.tokens.iter().any(|t| t.is_ident("thread_rng")));
        assert!(f.tokens.iter().any(|t| t.is_ident("y")));
        let lit = f.tokens.iter().find(|t| t.kind == TokKind::Lit).unwrap();
        assert_eq!(lit.text, "thread_rng \" quote");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(f.tokens.iter().any(|t| t.kind == TokKind::Lit));
    }

    #[test]
    fn spans_round_trip_source_text() {
        let src = "fn add(a_us: u64) -> u64 { a_us + 41 }";
        let chars: Vec<char> = src.chars().collect();
        let f = SourceFile::scan(src);
        for t in &f.tokens {
            let sliced: String = chars[t.span.start..t.span.end].iter().collect();
            assert_eq!(sliced, t.text, "span must reproduce the token text");
        }
    }

    #[test]
    fn allow_comment_parsed_and_scoped() {
        let src = "\n// mcs-lint: allow(map-iter, counts are order-free)\nlet x = 1;\n";
        let f = SourceFile::scan(src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "map-iter");
        assert_eq!(f.allows[0].line, 2);
        assert!(f.allowed("map-iter", 3));
        assert!(!f.allowed("map-iter", 1));
        assert!(!f.allowed("panic", 3));
    }

    #[test]
    fn cfg_test_region_resolved() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let f = SourceFile::scan(src);
        assert!(!f.in_test(1));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = SourceFile::scan("#[cfg(not(test))]\nmod real {\n fn f() {}\n}\n");
        assert!(!f.in_test(3));
    }

    #[test]
    fn gated_mod_declaration_recorded() {
        let f = SourceFile::scan("#[cfg(test)]\nmod proptests;\npub mod real;\n");
        assert_eq!(f.cfg_test_mods, vec!["proptests".to_string()]);
    }

    #[test]
    fn file_level_cfg_test() {
        let f = SourceFile::scan("#![cfg(test)]\nfn helper() { x.unwrap(); }\n");
        assert!(f.all_test);
        assert!(f.in_test(2));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let f = SourceFile::scan("for i in 0..10 { }");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "10"));
    }
}
