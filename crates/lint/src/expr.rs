//! Span-aware expression utilities shared by the rule modules.
//!
//! The scanner produces a flat token stream; the rules need just enough
//! expression structure to answer three questions without a full parser:
//!
//! 1. **What is this operand?** [`left_operand`] / [`right_operand`]
//!    resolve the operand on either side of a binary operator to the
//!    *chain tail* — the identifier that names the value: `fl.emit_interval`
//!    resolves to `emit_interval`, `self.now()` to the call `now`, `(x)` to
//!    opaque. Balanced `(...)`/`[...]` groups are skipped, so method-call
//!    receivers and index expressions resolve too.
//! 2. **What type does this name have?** [`collect_bindings`] walks
//!    declarations (struct fields, fn params, typed `let`s, and `let`
//!    initializers) and returns every identifier whose declared type — or
//!    initializer — matches a caller-supplied predicate. R1 instantiates
//!    it for `HashMap`/`HashSet`, R6 for `Time`, R9 for `f32`/`f64`.
//! 3. **Where does this item's body start and end?** [`body_range`]
//!    brace-matches from an item header so rules can scope matching to a
//!    single `fn` body.
//!
//! All helpers are conservative: when an expression is too complex to
//! resolve they report [`Operand::Opaque`], and rules treat opaque
//! operands as unclassified (never flagged). The fixture tests pin the
//! resolution behaviour the rules depend on.

use std::collections::BTreeSet;

use crate::scanner::{SourceFile, Tok, TokKind};

/// A resolved operand of a binary operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A named value: plain identifier, field-chain tail, or the method
    /// name of a trailing call (`a.b.c()` → `c`).
    Name(String),
    /// A numeric literal (token text preserved, e.g. `1_000` or `2.5`).
    Num(String),
    /// A string/char/byte literal.
    Lit,
    /// Anything the resolver cannot name (parenthesised subexpression,
    /// closure, macro, missing operand).
    Opaque,
}

impl Operand {
    /// Whether this operand is a numeric literal or a `SCREAMING_CASE`
    /// constant — a value fixed at compile time, where the compiler's own
    /// const-eval overflow checks already apply.
    pub fn is_const(&self) -> bool {
        match self {
            Operand::Num(_) => true,
            Operand::Name(n) => {
                !n.is_empty()
                    && n.chars()
                        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
            }
            _ => false,
        }
    }
}

/// Resolves the operand that *ends* at token `op - 1` (the left side of a
/// binary operator at index `op`).
pub fn left_operand(toks: &[Tok], op: usize) -> Operand {
    let mut i = match op.checked_sub(1) {
        Some(i) => i,
        None => return Operand::Opaque,
    };
    // Skip one trailing balanced group: a call's argument list or an index.
    let mut call = false;
    if toks[i].is_punct(')') || toks[i].is_punct(']') {
        let close = if toks[i].is_punct(')') { ')' } else { ']' };
        let open = if close == ')' { '(' } else { '[' };
        let mut depth = 0i32;
        loop {
            if toks[i].is_punct(close) {
                depth += 1;
            } else if toks[i].is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i == 0 {
                return Operand::Opaque;
            }
            i -= 1;
        }
        if i == 0 {
            return Operand::Opaque;
        }
        i -= 1;
        call = true;
    }
    match toks[i].kind {
        TokKind::Ident => Operand::Name(toks[i].text.clone()),
        TokKind::Num if !call => Operand::Num(toks[i].text.clone()),
        TokKind::Lit if !call => Operand::Lit,
        _ => Operand::Opaque,
    }
}

/// Resolves the operand that *starts* at token `op + 1` (the right side of
/// a binary operator at index `op`), following `a.b.c` chains to the tail
/// identifier.
pub fn right_operand(toks: &[Tok], op: usize) -> Operand {
    let mut i = op + 1;
    // Skip leading borrows and derefs: `&`, `&mut`, `*`.
    while toks
        .get(i)
        .is_some_and(|t| t.is_punct('&') || t.is_punct('*'))
    {
        i += 1;
        if toks.get(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
    }
    match toks.get(i).map(|t| t.kind) {
        Some(TokKind::Num) => return Operand::Num(toks[i].text.clone()),
        Some(TokKind::Lit) => return Operand::Lit,
        Some(TokKind::Ident) => {}
        _ => return Operand::Opaque,
    }
    // Follow `ident ( . ident | :: ident )*` to the chain tail.
    let mut tail = i;
    let mut j = i + 1;
    loop {
        if toks.get(j).is_some_and(|t| t.is_punct('.'))
            && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            tail = j + 1;
            j += 2;
        } else if toks.get(j).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            tail = j + 2;
            j += 3;
        } else {
            break;
        }
    }
    Operand::Name(toks[tail].text.clone())
}

/// Identifiers bound to a type matching `type_pred` in non-test code:
/// struct fields and fn params (`name: <type…>`), typed `let` bindings,
/// and `let name = <rhs>` initializers whose right-hand side contains a
/// token matching `rhs_pred`.
///
/// `skip_line` filters declaration sites (rules pass their test-region
/// check so a test-local binding cannot poison library code).
pub fn collect_bindings(
    file: &SourceFile,
    mut skip_line: impl FnMut(u32) -> bool,
    type_pred: impl Fn(&Tok) -> bool,
    rhs_pred: impl Fn(&Tok) -> bool,
) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut out = BTreeSet::new();

    for i in 0..toks.len() {
        if skip_line(toks[i].line) {
            continue;
        }
        // `name : <segment matching type_pred>` — a struct field, fn
        // param, or typed binding. Path separators (`::`) are excluded.
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && (i == 0 || !toks[i - 1].is_punct(':'))
        {
            let mut depth = 0i32;
            for t in &toks[i + 2..] {
                if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                    if t.is_punct(')') && depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth <= 0
                    && (t.is_punct(',') || t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                {
                    break;
                } else if type_pred(t) {
                    out.insert(toks[i].text.clone());
                    break;
                }
            }
        }
        // `let [mut] name = <rhs matching rhs_pred>;`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            let mut depth = 0i32;
            for t in &toks[j + 1..] {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && t.is_punct(';') {
                    break;
                } else if rhs_pred(t) {
                    out.insert(name.text.clone());
                    break;
                }
            }
        }
    }
    out
}

/// Brace-matched body of the item whose header starts at `start`: returns
/// `(open, close)` token indices of the outermost `{ … }`, or `None` when
/// the item ends without a body (e.g. a trait method signature).
pub fn body_range(toks: &[Tok], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    // Find the opening brace, bailing at a `;` that ends a body-less item.
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct('{') {
            break;
        } else if depth <= 0 && t.is_punct(';') {
            return None;
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let open = i;
    let mut d = 0i32;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            d += 1;
        } else if toks[i].is_punct('}') {
            d -= 1;
            if d == 0 {
                return Some((open, i));
            }
        }
        i += 1;
    }
    None
}

/// For a `for` token at `i`, returns the token range of the iterated
/// expression (`in` … `{`), or `None` when this is not a loop header
/// (`impl Trait for Type`, `for<'a>`).
pub fn for_loop_expr(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    // `impl … for Type` / higher-ranked `for<'a>`: not loops.
    if toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
        return None;
    }
    let mut depth = 0i32;
    let mut in_pos = None;
    for (j, t) in toks.iter().enumerate().skip(i + 1).take(200) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return in_pos.map(|p| (p + 1, j));
        } else if depth == 0 && t.is_ident("in") && in_pos.is_none() {
            in_pos = Some(j);
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('}')) {
            return None;
        }
    }
    None
}

/// Whether the token at `op` is a *binary* occurrence of `+`/`-`/`*` (or
/// the first char of `+=`/`-=`/`*=`): the previous token must end an
/// operand. Skips unary minus, deref `*`, `->`, and `&*` patterns.
pub fn is_binary_op(toks: &[Tok], op: usize) -> bool {
    let Some(prev) = op.checked_sub(1).and_then(|i| toks.get(i)) else {
        return false;
    };
    // `->` return-type arrow.
    if toks[op].is_punct('-') && toks.get(op + 1).is_some_and(|t| t.is_punct('>')) {
        return false;
    }
    matches!(prev.kind, TokKind::Ident | TokKind::Num | TokKind::Lit)
        && !prev.is_ident("return")
        && !prev.is_ident("in")
        && !prev.is_ident("if")
        && !prev.is_ident("while")
        && !prev.is_ident("match")
        || prev.is_punct(')')
        || prev.is_punct(']')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::SourceFile;

    fn toks(src: &str) -> Vec<Tok> {
        SourceFile::scan(src).tokens
    }

    fn op_index(toks: &[Tok], c: char) -> usize {
        toks.iter().position(|t| t.is_punct(c)).unwrap()
    }

    #[test]
    fn left_operand_resolves_chains_calls_and_literals() {
        let t = toks("a + b");
        assert_eq!(
            left_operand(&t, op_index(&t, '+')),
            Operand::Name("a".into())
        );

        let t = toks("fl.emit_interval + x");
        assert_eq!(
            left_operand(&t, op_index(&t, '+')),
            Operand::Name("emit_interval".into())
        );

        let t = toks("self.now() + delay");
        assert_eq!(
            left_operand(&t, op_index(&t, '+')),
            Operand::Name("now".into())
        );

        let t = toks("3 * SEC");
        assert_eq!(
            left_operand(&t, op_index(&t, '*')),
            Operand::Num("3".into())
        );

        let t = toks("(a + b) * c");
        assert_eq!(left_operand(&t, 5), Operand::Opaque);
    }

    #[test]
    fn right_operand_follows_field_chains() {
        let t = toks("now + fl.emit_interval");
        assert_eq!(
            right_operand(&t, op_index(&t, '+')),
            Operand::Name("emit_interval".into())
        );

        let t = toks("x * 1_000");
        assert_eq!(
            right_operand(&t, op_index(&t, '*')),
            Operand::Num("1_000".into())
        );

        let t = toks("now + self.cfg.delay_us");
        assert_eq!(
            right_operand(&t, op_index(&t, '+')),
            Operand::Name("delay_us".into())
        );
    }

    #[test]
    fn const_operands_are_recognised() {
        assert!(Operand::Num("1_000".into()).is_const());
        assert!(Operand::Name("SEC".into()).is_const());
        assert!(Operand::Name("DAY_MS".into()).is_const());
        assert!(!Operand::Name("delay_us".into()).is_const());
        assert!(!Operand::Opaque.is_const());
    }

    #[test]
    fn collect_bindings_matches_fields_params_and_lets() {
        let f = SourceFile::scan(
            "struct S { next_emit: Time, count: u64 }\n\
             fn f(delay: Time, n: usize) {\n\
               let deadline = q.now() + delay;\n\
               let other = n + 1;\n\
             }",
        );
        let set = collect_bindings(&f, |_| false, |t| t.is_ident("Time"), |t| t.is_ident("now"));
        assert!(set.contains("next_emit"));
        assert!(set.contains("delay"));
        assert!(set.contains("deadline"));
        assert!(!set.contains("count"));
        assert!(!set.contains("n"));
        assert!(!set.contains("other"));
    }

    #[test]
    fn body_range_matches_braces_and_skips_signatures() {
        let t = toks("fn f(a: u32) -> u32 { if a > 0 { a } else { 0 } }");
        let (open, close) = body_range(&t, 0).unwrap();
        assert!(t[open].is_punct('{'));
        assert_eq!(close, t.len() - 1);

        let t = toks("fn sig(a: u32) -> u32;");
        assert!(body_range(&t, 0).is_none());
    }

    #[test]
    fn binary_op_detection_skips_unary_and_arrows() {
        let t = toks("a - b");
        assert!(is_binary_op(&t, op_index(&t, '-')));
        let t = toks("f(-x)");
        assert!(!is_binary_op(&t, op_index(&t, '-')));
        let t = toks("fn f() -> u64 {}");
        assert!(!is_binary_op(&t, op_index(&t, '-')));
        let t = toks("let p = *x;");
        assert!(!is_binary_op(&t, op_index(&t, '*')));
        let t = toks("self.now() * 2");
        assert!(is_binary_op(&t, op_index(&t, '*')));
    }
}
