//! R9 `float-merge`: floating-point accumulation inside shard `merge`
//! bodies is order-sensitive.
//!
//! The workspace's headline guarantee is bit-identical analysis output at
//! any shard count. Float addition is not associative, so `a + (b + c)`
//! and `(a + b) + c` differ in the last ulp — and a `fn merge` that sums
//! `f64` state produces different bits depending on merge order. R4
//! guarantees every merge has a law test; R9 guards the arithmetic
//! itself: in `analysis`/`obs`/`stats` library code, any `+`/`-`/`*`
//! (or compound form) on a float-typed operand inside a `fn merge` body
//! must either be restructured into an order-insensitive representation
//! (integer counts, exact fixed-point sums) or carry an
//! `allow(float-merge, <reason>)` documenting the fixed merge order or
//! why the result is exact (e.g. integer-valued f64 below 2^53).

use std::collections::BTreeSet;

use crate::expr::{self, Operand};
use crate::scanner::TokKind;

use super::{Diagnostic, RuleCtx, Scanned};

/// Crates whose merge impls feed the shard-reduce determinism guarantee.
const SCOPE: &[&str] = &["crates/analysis/", "crates/obs/", "crates/stats/"];

fn in_scope(rel: &str) -> bool {
    SCOPE.iter().any(|p| rel.starts_with(p))
}

fn is_float_ty(t: &crate::scanner::Tok) -> bool {
    t.is_ident("f32") || t.is_ident("f64")
}

pub(crate) fn check(f: &Scanned, ctx: &mut RuleCtx) {
    if f.gated || !in_scope(&f.rel) {
        return;
    }
    let toks = &f.file.tokens;
    // Float-typed names: `x: f64` fields/params (incl. `Vec<f64>` elements
    // via iteration below), plus `let y = … as f64 …` initialisers.
    let floats = expr::collect_bindings(&f.file, |l| f.is_test_line(l), is_float_ty, is_float_ty);

    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident("merge"))) {
            i += 1;
            continue;
        }
        let Some((open, close)) = expr::body_range(toks, i + 2) else {
            i += 2;
            continue;
        };
        // Loop patterns over float collections propagate: in
        // `for (a, b) in self.bins.iter_mut().zip(&other.bins)` where
        // `bins` is float-typed, `a` and `b` are float too.
        let mut local: BTreeSet<String> = BTreeSet::new();
        for j in open..close {
            if !toks[j].is_ident("for") {
                continue;
            }
            let Some((es, ee)) = expr::for_loop_expr(toks, j) else {
                continue;
            };
            let iterates_float = toks[es..ee]
                .iter()
                .any(|t| t.kind == TokKind::Ident && floats.contains(t.text.as_str()));
            if !iterates_float {
                continue;
            }
            // `in` sits right before the expression range.
            for t in &toks[j + 1..es.saturating_sub(1)] {
                if t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref") {
                    local.insert(t.text.clone());
                }
            }
        }
        let is_float = |op: &Operand| match op {
            Operand::Name(n) => floats.contains(n) || local.contains(n),
            Operand::Num(n) => n.contains('.'),
            _ => false,
        };

        let mut flagged: BTreeSet<u32> = BTreeSet::new();
        for j in open + 1..close {
            let t = &toks[j];
            if !(t.is_punct('+') || t.is_punct('-') || t.is_punct('*')) {
                continue;
            }
            let compound = toks.get(j + 1).is_some_and(|n| n.is_punct('='));
            if !expr::is_binary_op(toks, j) {
                continue;
            }
            let left = expr::left_operand(toks, j);
            let right = expr::right_operand(toks, if compound { j + 1 } else { j });
            if !(is_float(&left) || is_float(&right)) {
                continue;
            }
            if f.is_test_line(t.line)
                || ctx.allowed(f, "float-merge", t.line)
                || !flagged.insert(t.line)
            {
                continue;
            }
            ctx.push(Diagnostic {
                rule: "R9",
                name: "float-merge",
                file: f.rel.clone(),
                line: t.line,
                message: "floating-point accumulation inside `fn merge` is \
                          merge-order-sensitive and breaks bit-identical shard \
                          reduction; use an order-insensitive representation or \
                          annotate `// mcs-lint: allow(float-merge, <reason>)` \
                          documenting the fixed order or exactness argument"
                    .to_string(),
            });
        }
        i = close + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::scanned;
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = scanned(rel, src);
        let mut ctx = RuleCtx::new();
        check(&f, &mut ctx);
        ctx.diags
    }

    #[test]
    fn flags_float_field_accumulation() {
        let d = run(
            "crates/analysis/src/a.rs",
            "pub struct Acc { total: f64 }\n\
             impl Acc {\n\
             pub fn merge(&mut self, o: &Self) { self.total += o.total; }\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "R9");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn flags_zip_loop_over_float_bins() {
        let d = run(
            "crates/stats/src/a.rs",
            "pub struct S { bins: Vec<f64> }\n\
             impl S {\n\
             pub fn merge(&mut self, o: &Self) {\n\
             for (a, b) in self.bins.iter_mut().zip(&o.bins) {\n\
             *a += *b;\n\
             }\n}\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn integer_merges_and_non_merge_float_math_pass() {
        let d = run(
            "crates/analysis/src/a.rs",
            "pub struct Acc { n: u64, mean: f64 }\n\
             impl Acc {\n\
             pub fn merge(&mut self, o: &Self) { self.n += o.n; }\n\
             pub fn rate(&self) -> f64 { self.mean * 2.0 }\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_and_scope_escapes() {
        let d = run(
            "crates/stats/src/a.rs",
            "pub struct S { m2: f64 }\n\
             impl S {\n\
             pub fn merge(&mut self, o: &Self) {\n\
             // mcs-lint: allow(float-merge, shards merged in fixed rank order)\n\
             self.m2 += o.m2;\n\
             }\n}",
        );
        assert!(d.is_empty(), "{d:?}");

        let d = run(
            "crates/net/src/a.rs",
            "pub struct S { m2: f64 }\n\
             impl S { pub fn merge(&mut self, o: &Self) { self.m2 += o.m2; } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
