//! R6 `time-arith`: no bare `+`/`-`/`*` (or `+=`/`-=`/`*=`) on time-typed
//! quantities in the crates that do event-time math.
//!
//! The simulator clock is a `u64` microsecond counter; a wrapped add in a
//! release build silently breaks the monotone-clock invariant the whole
//! replay contract rests on (debug builds panic instead — equally fatal,
//! differently timed). Every arithmetic step on a time quantity must
//! therefore be explicit about overflow: `checked_*` where the caller can
//! reject, `saturating_*` where clamping to the far future is the
//! documented semantics, or an `allow(time-arith, <reason>)` when the
//! bound is proven out-of-band.
//!
//! A quantity is *time-typed* when any of:
//! - its name ends in `_us` or `_ms` (the workspace unit-suffix convention),
//! - its name is `now`, `now_ms`, or `now_us` (clock reads),
//! - it is bound with a `Time` type annotation, or initialised from an
//!   expression containing a clock read (`let deadline = q.now() + d;`).
//!
//! Expressions whose operands are *all* compile-time constants
//! (numeric literals, `SCREAMING_CASE` consts) are exempt: `3 * SEC`
//! is folded and overflow-checked by the compiler itself.

use crate::expr::{self, Operand};
use crate::scanner::TokKind;

use super::{Diagnostic, RuleCtx, Scanned};

/// Crates whose library code does event-time arithmetic.
const SCOPE: &[&str] = &[
    "crates/sim/",
    "crates/net/",
    "crates/faults/",
    "crates/storage/",
];

/// Clock-read names that are time-typed wherever they appear.
const CLOCK_NAMES: &[&str] = &["now", "now_ms", "now_us"];

fn in_scope(rel: &str) -> bool {
    SCOPE.iter().any(|p| rel.starts_with(p))
}

/// Whether `name` denotes a time quantity by suffix or clock convention.
fn time_named(name: &str) -> bool {
    CLOCK_NAMES.contains(&name)
        || (name.len() > 3 && (name.ends_with("_us") || name.ends_with("_ms")))
}

pub(crate) fn check(f: &Scanned, ctx: &mut RuleCtx) {
    if f.gated || !in_scope(&f.rel) {
        return;
    }
    let toks = &f.file.tokens;
    let bindings = expr::collect_bindings(
        &f.file,
        |l| f.is_test_line(l),
        |t| t.is_ident("Time"),
        |t| CLOCK_NAMES.contains(&t.text.as_str()),
    );

    let is_time = |op: &Operand| match op {
        Operand::Name(n) => time_named(n) || bindings.contains(n),
        _ => false,
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Punct || !(t.is_punct('+') || t.is_punct('-') || t.is_punct('*')) {
            continue;
        }
        let compound = toks.get(i + 1).is_some_and(|n| n.is_punct('='));
        if !expr::is_binary_op(toks, i) {
            continue;
        }
        let left = expr::left_operand(toks, i);
        let right = expr::right_operand(toks, if compound { i + 1 } else { i });
        if !(is_time(&left) || is_time(&right)) {
            continue;
        }
        if left.is_const() && right.is_const() {
            continue;
        }
        if f.is_test_line(t.line) || ctx.allowed(f, "time-arith", t.line) {
            continue;
        }
        let op_text = if compound {
            format!("{}=", t.text)
        } else {
            t.text.clone()
        };
        let subject = [&left, &right]
            .into_iter()
            .find_map(|o| match o {
                Operand::Name(n) if is_time(o) => Some(n.clone()),
                _ => None,
            })
            .unwrap_or_else(|| "time value".to_string());
        ctx.push(Diagnostic {
            rule: "R6",
            name: "time-arith",
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "bare `{op_text}` on time-typed `{subject}` can wrap the simulation \
                 clock; use checked_*/saturating_* arithmetic or annotate \
                 `// mcs-lint: allow(time-arith, <reason>)`"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::scanned;
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = scanned(rel, src);
        let mut ctx = RuleCtx::new();
        check(&f, &mut ctx);
        ctx.diags
    }

    #[test]
    fn flags_bare_add_on_time_params() {
        let d = run(
            "crates/sim/src/a.rs",
            "pub fn at(now: Time, delay: Time) -> Time { now + delay }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "R6");
        assert!(d[0].message.contains('+'), "{}", d[0].message);
    }

    #[test]
    fn flags_suffix_named_quantities_and_compound_ops() {
        let d = run(
            "crates/net/src/a.rs",
            "pub fn f(deadline_ms: u64, step_ms: u64) -> u64 {\n\
             let mut t_ms = deadline_ms;\n\
             t_ms += step_ms;\n\
             t_ms }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("+="), "{}", d[0].message);
    }

    #[test]
    fn flags_clock_read_initialisers() {
        let d = run(
            "crates/sim/src/a.rs",
            "pub fn f(&self, d: u64) -> Time {\n\
             let base = self.now();\n\
             base * d }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn const_expressions_and_checked_math_pass() {
        let d = run(
            "crates/sim/src/a.rs",
            "pub const STEP: Time = 3 * SEC;\n\
             pub fn at(now: Time, delay: Time) -> Time { now.saturating_add(delay) }\n\
             pub fn cap(now: Time) -> Option<Time> { now.checked_mul(2) }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_and_test_code_suppress() {
        let d = run(
            "crates/sim/src/a.rs",
            "// mcs-lint: allow(time-arith, wrap is modular by design)\n\
             pub fn at(now: Time, delay: Time) -> Time { now + delay }\n\
             #[cfg(test)]\nmod tests {\n\
             fn t(now: Time) -> Time { now + 1 }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let d = run(
            "crates/analysis/src/a.rs",
            "pub fn at(now: Time, delay: Time) -> Time { now + delay }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_time_arithmetic_passes() {
        let d = run(
            "crates/sim/src/a.rs",
            "pub fn f(a: u64, b: u64) -> u64 { a + b * 2 }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
