//! R1–R5: the original determinism contract rules.
//!
//! R1 `map-iter`, R2 `clock`, R3 `panic`, R4 `merge-law`, R5 `unsafe`.
//! See the module table in [`super`] for the contract each enforces.

use std::collections::BTreeSet;

use crate::expr;
use crate::scanner::{SourceFile, Tok, TokKind};

use super::{Diagnostic, RuleCtx, Scanned};

/// Methods that iterate a map/set in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Calls that impose a canonical order on whatever they iterate.
const SORTERS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Terminal operations whose result is independent of iteration order
/// (up to key ties for the `*_by_key` family — the caller must guarantee
/// distinct keys, which an allow-comment should state when non-obvious).
const ORDER_FREE: &[&str] = &[
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "all",
    "any",
    "contains",
    "contains_key",
];

/// Collects that land in an ordered container, restoring determinism.
const ORDERED_SINKS: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

// ---------------------------------------------------------------- R1

/// R1: iteration over `HashMap`/`HashSet` must not leak storage order.
pub(crate) fn rule_map_iter(f: &Scanned, ctx: &mut RuleCtx) {
    if f.gated {
        return;
    }
    let toks = &f.file.tokens;
    let is_map = |t: &Tok| t.is_ident("HashMap") || t.is_ident("HashSet");
    let bindings = expr::collect_bindings(&f.file, |l| f.is_test_line(l), is_map, is_map);
    if bindings.is_empty() {
        return;
    }

    // Method-call sites: `<binding>.iter()`, `self.<binding>.keys()`, ….
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(recv) = receiver_name(toks, i - 2) else {
            continue;
        };
        if !bindings.contains(recv) {
            continue;
        }
        if f.is_test_line(t.line) || ctx.allowed(f, "map-iter", t.line) {
            continue;
        }
        if statement_restores_order(toks, i + 1) || sorted_out_of_band(toks, i) {
            continue;
        }
        ctx.push(Diagnostic {
            rule: "R1",
            name: "map-iter",
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "`{recv}.{}()` iterates a HashMap/HashSet without sorting in the same \
                 statement; sort the result, use a BTree container, or annotate \
                 `// mcs-lint: allow(map-iter, <reason>)`",
                t.text
            ),
        });
    }

    // `for` loops over a map binding.
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        let Some((expr_start, expr_end)) = expr::for_loop_expr(toks, i) else {
            continue;
        };
        let line = toks[i].line;
        if f.is_test_line(line) || ctx.allowed(f, "map-iter", line) {
            continue;
        }
        // Method sites inside the header were already checked above (and
        // carry the sort/terminal escapes); a bare `for x in map`-style
        // header has no in-statement escape, so it must be annotated.
        if toks[expr_start..expr_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str()))
        {
            continue;
        }
        let hits_map = toks[expr_start..expr_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && bindings.contains(t.text.as_str()));
        if hits_map {
            ctx.push(Diagnostic {
                rule: "R1",
                name: "map-iter",
                file: f.rel.clone(),
                line,
                message: "`for` loop over a HashMap/HashSet binding leaks storage order; \
                          iterate a sorted copy, use a BTree container, or annotate \
                          `// mcs-lint: allow(map-iter, <reason>)`"
                    .to_string(),
            });
        }
    }
}

/// Resolves the receiver of a `.method()` call at the token *before* the
/// dot: `map.iter()` → `map`; `self.field.iter()` → `field`. Returns
/// `None` for receivers too complex to name (conservatively unflagged).
fn receiver_name(toks: &[Tok], i: usize) -> Option<&str> {
    let t = toks.get(i)?;
    if t.kind == TokKind::Ident && t.text != "self" {
        return Some(&t.text);
    }
    None
}

/// Scans from the iteration call's opening paren to the end of the
/// statement; true when the chain sorts, ends order-insensitively, or
/// collects into an ordered container.
fn statement_restores_order(toks: &[Tok], open_paren: usize) -> bool {
    let mut depth = 0i32;
    for t in &toks[open_paren..] {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0 && (t.is_punct(';') || t.is_punct(',') || t.is_punct('{')) {
            return false;
        } else if t.kind == TokKind::Ident
            && (SORTERS.contains(&t.text.as_str())
                || ORDER_FREE.contains(&t.text.as_str())
                || ORDERED_SINKS.contains(&t.text.as_str()))
        {
            return true;
        }
    }
    false
}

/// Escapes the forward scan cannot see: a `let s: BTreeSet<_> = …`
/// annotation earlier in the same statement, or the canonical
/// collect-then-sort idiom where the *next* statement sorts the binding
/// this statement produced (`let mut v = m.keys().collect(); v.sort();`).
fn sorted_out_of_band(toks: &[Tok], method_idx: usize) -> bool {
    // Walk back to the statement start (bounded; closures make exact
    // brace-depth bookkeeping overkill here — conservative either way).
    let mut start = method_idx;
    for k in (method_idx.saturating_sub(40)..method_idx).rev() {
        if toks[k].is_punct(';') || toks[k].is_punct('{') || toks[k].is_punct('}') {
            start = k + 1;
            break;
        }
        start = k;
    }
    let head = &toks[start..method_idx];
    if head
        .iter()
        .any(|t| t.kind == TokKind::Ident && ORDERED_SINKS.contains(&t.text.as_str()))
    {
        return true;
    }

    // `let [mut] NAME = …` head → look for `NAME.sort*(` in the statement
    // immediately after this one.
    let target = match head {
        [l, n, ..] if l.is_ident("let") && n.kind == TokKind::Ident && n.text != "mut" => &n.text,
        [l, m, n, ..] if l.is_ident("let") && m.is_ident("mut") && n.kind == TokKind::Ident => {
            &n.text
        }
        _ => return false,
    };
    // Skip to the `;` ending this statement.
    let mut depth = 0i32;
    let mut j = method_idx;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0 && t.is_punct('{') {
            return false;
        } else if depth == 0 && t.is_punct(';') {
            break;
        }
        j += 1;
    }
    // Next statement: `target . sort* (` before the following `;`.
    let next = &toks[j + 1..toks.len().min(j + 40)];
    for w in 0..next.len() {
        if next[w].is_punct(';') || next[w].is_punct('{') || next[w].is_punct('}') {
            break;
        }
        if next[w].is_ident(target)
            && next.get(w + 1).is_some_and(|t| t.is_punct('.'))
            && next
                .get(w + 2)
                .is_some_and(|t| SORTERS.contains(&t.text.as_str()))
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------- R2

/// R2: no wall-clock or entropy sources outside `crates/bench`.
pub(crate) fn rule_clock(f: &Scanned, ctx: &mut RuleCtx) {
    let toks = &f.file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "SystemTime" | "thread_rng" | "from_entropy" => Some(t.text.as_str()),
            "Instant" => (toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now")))
            .then_some("Instant::now"),
            _ => None,
        };
        let Some(source) = hit else { continue };
        if ctx.allowed(f, "clock", t.line) {
            continue;
        }
        ctx.push(Diagnostic {
            rule: "R2",
            name: "clock",
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "`{source}` is a nondeterminism source; seed explicitly from config \
                 (wall-clock timing belongs in crates/bench)"
            ),
        });
    }
}

// ---------------------------------------------------------------- R3

/// R3: no panicking calls in non-test library code.
pub(crate) fn rule_panic(f: &Scanned, ctx: &mut RuleCtx) {
    if f.gated {
        return;
    }
    let toks = &f.file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let site = match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                Some(format!(".{}()", t.text))
            }
            "panic" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                Some(format!("{}!", t.text))
            }
            _ => None,
        };
        let Some(site) = site else { continue };
        if f.is_test_line(t.line) || ctx.allowed(f, "panic", t.line) {
            continue;
        }
        ctx.push(Diagnostic {
            rule: "R3",
            name: "panic",
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "`{site}` can abort the pipeline mid-run; return a Result, handle the \
                 case, or annotate `// mcs-lint: allow(panic, <reason>)`"
            ),
        });
    }
}

// ---------------------------------------------------------------- R4

/// R4: every `fn merge(` type in the shard-reduce crates
/// (`crates/analysis`, `crates/obs`) needs a merge-law or
/// shard-invariance test referencing it by name.
pub(crate) fn rule_merge_law(files: &[Scanned], ctx: &mut RuleCtx) {
    for prefix in ["crates/analysis/", "crates/obs/"] {
        merge_law_for_crate(files, prefix, ctx);
    }
}

/// Runs R4 over one crate's files; tests in one crate cannot vouch for
/// merge impls in another.
fn merge_law_for_crate(files: &[Scanned], prefix: &str, ctx: &mut RuleCtx) {
    let analysis: Vec<&Scanned> = files.iter().filter(|f| f.rel.starts_with(prefix)).collect();

    // All identifiers referenced by test fns whose name mentions merge or
    // shard, across the whole crate.
    let mut tested: BTreeSet<String> = BTreeSet::new();
    for f in &analysis {
        let toks = &f.file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") {
                continue;
            }
            let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !(name.text.contains("merge") || name.text.contains("shard")) {
                continue;
            }
            if !(f.gated || f.file.in_test(name.line)) {
                continue;
            }
            // Collect idents through the fn body (first `{` … matching `}`).
            let mut depth = 0i32;
            let mut started = false;
            for t in &toks[i + 2..] {
                if t.is_punct('{') {
                    depth += 1;
                    started = true;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if started && depth == 0 {
                        break;
                    }
                } else if t.kind == TokKind::Ident {
                    tested.insert(t.text.clone());
                }
            }
        }
    }

    for f in &analysis {
        for (type_name, line) in merge_impls(&f.file) {
            if f.gated || f.file.in_test(line) {
                continue;
            }
            if tested.contains(&type_name) {
                continue;
            }
            if ctx.allowed(f, "merge-law", line) {
                continue;
            }
            ctx.push(Diagnostic {
                rule: "R4",
                name: "merge-law",
                file: f.rel.clone(),
                line,
                message: format!(
                    "`{type_name}` defines `fn merge` but no test named *merge*/*shard* \
                     references it; add a merge-law test so the shard-reduce monoid \
                     stays total"
                ),
            });
        }
    }
}

/// `(type_name, line_of_fn_merge)` for every `fn merge` inside an `impl`
/// block of this file.
fn merge_impls(file: &SourceFile) -> Vec<(String, u32)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip generic params.
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut d = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    d += 1;
                } else if toks[j].is_punct('>') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        }
        // Read the (possibly trait) path up to `for`/`where`/`{`; the
        // implemented type is the last path segment before its generics.
        let mut type_name = String::new();
        let mut d = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                d += 1;
            } else if t.is_punct('>') {
                d -= 1;
            } else if d == 0 && t.is_ident("for") {
                type_name.clear(); // trait path — the type follows
            } else if d == 0 && (t.is_punct('{') || t.is_ident("where")) {
                break;
            } else if d == 0 && t.kind == TokKind::Ident {
                type_name = t.text.clone();
            }
            j += 1;
        }
        // Find the body opening brace, then scan it for `fn merge`.
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("fn")
                && toks.get(j + 1).is_some_and(|t| t.is_ident("merge"))
                && !type_name.is_empty()
            {
                out.push((type_name.clone(), toks[j].line));
            }
            j += 1;
        }
        i = j + 1;
    }
    out
}

// ---------------------------------------------------------------- R5

/// R5: library crate roots must forbid unsafe code.
pub(crate) fn rule_forbid_unsafe(f: &Scanned, ctx: &mut RuleCtx) {
    let toks = &f.file.tokens;
    let has = (0..toks.len()).any(|i| {
        toks[i].is_ident("forbid")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("unsafe_code"))
    });
    if !has {
        ctx.push(Diagnostic {
            rule: "R5",
            name: "unsafe",
            file: f.rel.clone(),
            line: 1,
            message: "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::scanned;
    use super::*;

    #[test]
    fn map_iter_flags_unsorted_keys() {
        let f = scanned(
            "crates/x/src/a.rs",
            "fn f(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }",
        );
        let mut ctx = RuleCtx::new();
        rule_map_iter(&f, &mut ctx);
        assert_eq!(ctx.diags.len(), 1);
        assert_eq!(ctx.diags[0].rule, "R1");
    }

    #[test]
    fn map_iter_accepts_sorted_and_order_free() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n\
                   let a: Vec<u32> = m.keys().copied().collect();\n\
                   let n = m.values().count();\n\
                   let mut v: Vec<u32> = m.keys().copied().collect();\n\
                   v.sort();\n\
                   let s: BTreeSet<u32> = m.keys().copied().collect();\n\
                   let t = m.keys().copied().collect::<BTreeSet<u32>>();\n\
                   }";
        let f = scanned("crates/x/src/a.rs", src);
        let mut ctx = RuleCtx::new();
        rule_map_iter(&f, &mut ctx);
        // Line 2 is never sorted → flagged. Line 3 is an order-free
        // terminal, line 4 is sorted by the next statement, lines 6-7
        // land in an ordered container (annotation / turbofish).
        assert_eq!(ctx.diags.len(), 1, "{:?}", ctx.diags);
        assert_eq!(ctx.diags[0].line, 2);
    }

    #[test]
    fn map_iter_for_loop_needs_allow() {
        let bad = "fn f(m: &HashSet<u32>) { for x in m { use_it(x); } }";
        let f = scanned("crates/x/src/a.rs", bad);
        let mut ctx = RuleCtx::new();
        rule_map_iter(&f, &mut ctx);
        assert_eq!(ctx.diags.len(), 1);

        let ok = "fn f(m: &HashSet<u32>) {\n\
                  // mcs-lint: allow(map-iter, folded into an order-free sum)\n\
                  for x in m { s += x; }\n}";
        let f = scanned("crates/x/src/a.rs", ok);
        let mut ctx = RuleCtx::new();
        rule_map_iter(&f, &mut ctx);
        assert!(ctx.diags.is_empty(), "{:?}", ctx.diags);
    }

    #[test]
    fn map_iter_ignores_btree_and_tests() {
        let src = "fn f(m: &BTreeMap<u32, u32>) { for x in m.keys() { g(x); } }\n\
                   #[cfg(test)]\nmod tests {\n\
                   fn t(m: &HashMap<u32, u32>) { for x in m.keys() { g(x); } }\n}";
        let f = scanned("crates/x/src/a.rs", src);
        let mut ctx = RuleCtx::new();
        rule_map_iter(&f, &mut ctx);
        assert!(ctx.diags.is_empty(), "{:?}", ctx.diags);
    }

    #[test]
    fn panic_rule_flags_and_allows() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g() { panic!(\"boom\"); }\n\
                   fn h(x: Option<u32>) -> u32 {\n\
                   // mcs-lint: allow(panic, length checked above)\n\
                   x.expect(\"checked\")\n}";
        let f = scanned("crates/x/src/a.rs", src);
        let mut ctx = RuleCtx::new();
        rule_panic(&f, &mut ctx);
        assert_eq!(ctx.diags.len(), 2, "{:?}", ctx.diags);
        assert_eq!(ctx.diags[0].line, 1);
        assert_eq!(ctx.diags[1].line, 2);
    }

    #[test]
    fn clock_rule() {
        let src = "fn f() { let t = Instant::now(); }";
        let f = scanned("crates/x/src/a.rs", src);
        let mut ctx = RuleCtx::new();
        rule_clock(&f, &mut ctx);
        assert_eq!(ctx.diags.len(), 1);
        assert_eq!(ctx.diags[0].rule, "R2");
        // `Instant` not followed by `::now` is fine (e.g. a type position).
        let f = scanned("crates/x/src/a.rs", "fn f(t: Instant) {}");
        let mut ctx = RuleCtx::new();
        rule_clock(&f, &mut ctx);
        assert!(ctx.diags.is_empty());
    }

    #[test]
    fn merge_law_matches_by_type_name() {
        let src = "pub struct Acc { n: u64 }\n\
                   impl Acc { pub fn merge(&mut self, o: &Self) { self.n += o.n; } }\n\
                   #[cfg(test)]\nmod tests {\n\
                   #[test]\nfn merge_law_acc() { let a = Acc { n: 0 }; }\n}";
        let covered = scanned("crates/analysis/src/a.rs", src);
        let mut ctx = RuleCtx::new();
        rule_merge_law(&[covered], &mut ctx);
        assert!(ctx.diags.is_empty(), "{:?}", ctx.diags);

        let src = "pub struct Acc { n: u64 }\n\
                   impl Acc { pub fn merge(&mut self, o: &Self) { self.n += o.n; } }";
        let uncovered = scanned("crates/analysis/src/a.rs", src);
        let mut ctx = RuleCtx::new();
        rule_merge_law(&[uncovered], &mut ctx);
        assert_eq!(ctx.diags.len(), 1);
        assert_eq!(ctx.diags[0].rule, "R4");
        assert_eq!(ctx.diags[0].line, 2);
    }

    #[test]
    fn merge_law_outside_shard_crates_is_ignored() {
        let src = "pub struct Acc { n: u64 }\n\
                   impl Acc { pub fn merge(&mut self, o: &Self) {} }";
        let f = scanned("crates/sim/src/a.rs", src);
        let mut ctx = RuleCtx::new();
        rule_merge_law(&[f], &mut ctx);
        assert!(ctx.diags.is_empty());
    }

    #[test]
    fn forbid_unsafe_detection() {
        let f = scanned(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
        );
        let mut ctx = RuleCtx::new();
        rule_forbid_unsafe(&f, &mut ctx);
        assert!(ctx.diags.is_empty());
        let f = scanned("crates/x/src/lib.rs", "pub fn f() {}");
        let mut ctx = RuleCtx::new();
        rule_forbid_unsafe(&f, &mut ctx);
        assert_eq!(ctx.diags.len(), 1);
        assert_eq!(ctx.diags[0].rule, "R5");
    }
}
