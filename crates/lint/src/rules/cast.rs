//! R7 `cast-truncate`: narrowing integer `as` casts in the data-plane
//! crates must prove they fit.
//!
//! `as` silently truncates: `(ms * 1000) as u32` wraps after ~71 minutes
//! of microseconds and the record that carried it replays differently on
//! every shard that disagrees about the high bits. In `sim`/`trace`/
//! `storage`/`net` library code, a cast to a narrower integer type must be
//! replaced with `try_from`/`From` (making the failure observable), be
//! *visibly bounded* at the cast site (`(x % N) as u32` / `(x & MASK) as
//! u32` where the bound fits the target), or carry an
//! `allow(cast-truncate, <reason>)` stating the out-of-band bound.

use crate::scanner::TokKind;

use super::{Diagnostic, RuleCtx, Scanned};

/// Crates whose library code moves record/time payloads through casts.
const SCOPE: &[&str] = &[
    "crates/sim/",
    "crates/trace/",
    "crates/storage/",
    "crates/net/",
];

/// Narrow integer targets with their value ranges.
const TARGETS: &[(&str, i128, i128)] = &[
    ("u8", 0, u8::MAX as i128),
    ("u16", 0, u16::MAX as i128),
    ("u32", 0, u32::MAX as i128),
    ("i8", i8::MIN as i128, i8::MAX as i128),
    ("i16", i16::MIN as i128, i16::MAX as i128),
    ("i32", i32::MIN as i128, i32::MAX as i128),
];

fn in_scope(rel: &str) -> bool {
    SCOPE.iter().any(|p| rel.starts_with(p))
}

/// Parses an integer literal token (underscores, `0x`/`0o`/`0b` prefixes,
/// type suffixes). `None` for floats or malformed text.
fn literal_value(text: &str) -> Option<i128> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(h) = clean.strip_prefix("0x") {
        (h, 16)
    } else if let Some(o) = clean.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = clean.strip_prefix("0b") {
        (b, 2)
    } else {
        (clean.as_str(), 10)
    };
    // Strip a trailing type suffix (`24u64`, `0xffu8`).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    i128::from_str_radix(&digits[..end], radix).ok()
}

pub(crate) fn check(f: &Scanned, ctx: &mut RuleCtx) {
    if f.gated || !in_scope(&f.rel) {
        return;
    }
    let toks = &f.file.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let Some(&(ty, lo, hi)) = TARGETS.iter().find(|(n, _, _)| target.is_ident(n)) else {
            continue;
        };
        // `LITERAL as u32` — const, compiler checks the fold.
        if i > 0 && toks[i - 1].kind == TokKind::Num {
            continue;
        }
        // Visible bound: `… % LIT) as T` / `… & LIT) as T` (with or without
        // the closing paren) where the bound fits the target range.
        let mut j = i;
        if j > 0 && toks[j - 1].is_punct(')') {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].kind == TokKind::Num {
            let bound = literal_value(&toks[j - 1].text);
            let op = &toks[j - 2];
            let fits = match bound {
                Some(b) if op.is_punct('%') => b - 1 <= hi && lo <= 0,
                Some(b) if op.is_punct('&') => b <= hi && lo <= 0,
                _ => false,
            };
            if fits {
                continue;
            }
        }
        let line = toks[i].line;
        if f.is_test_line(line) || ctx.allowed(f, "cast-truncate", line) {
            continue;
        }
        ctx.push(Diagnostic {
            rule: "R7",
            name: "cast-truncate",
            file: f.rel.clone(),
            line,
            message: format!(
                "narrowing `as {ty}` cast truncates silently; use {ty}::try_from / \
                 From, bound the value at the cast site (`% N` / `& MASK`), or \
                 annotate `// mcs-lint: allow(cast-truncate, <reason>)`"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::scanned;
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = scanned(rel, src);
        let mut ctx = RuleCtx::new();
        check(&f, &mut ctx);
        ctx.diags
    }

    #[test]
    fn literal_values_parse() {
        assert_eq!(literal_value("24"), Some(24));
        assert_eq!(literal_value("3_600_000"), Some(3_600_000));
        assert_eq!(literal_value("0xff"), Some(255));
        assert_eq!(literal_value("0b1010"), Some(10));
        assert_eq!(literal_value("24u64"), Some(24));
    }

    #[test]
    fn flags_bare_narrowing_casts() {
        let d = run(
            "crates/trace/src/a.rs",
            "pub fn f(x: u64) -> u32 { x as u32 }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "R7");

        let d = run(
            "crates/sim/src/a.rs",
            "pub fn f(x: usize) -> u16 { x as u16 }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn widening_and_const_casts_pass() {
        let d = run(
            "crates/trace/src/a.rs",
            "pub fn f(x: u32) -> u64 { x as u64 }\n\
             pub fn g() -> u32 { 7 as u32 }\n\
             pub fn h(x: f64) -> f64 { x as f64 }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bounded_sources_pass() {
        let d = run(
            "crates/storage/src/a.rs",
            "pub fn hour(ms: u64) -> u32 { ((ms / 3_600_000) % 24) as u32 }\n\
             pub fn lo(x: u64) -> u16 { (x & 0xffff) as u16 }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn oversized_bound_still_flags() {
        let d = run(
            "crates/storage/src/a.rs",
            "pub fn f(x: u64) -> u16 { (x % 100_000) as u16 }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn allow_test_and_scope_escapes() {
        let d = run(
            "crates/net/src/a.rs",
            "// mcs-lint: allow(cast-truncate, ids fit u16 by construction)\n\
             pub fn f(x: u64) -> u16 { x as u16 }\n\
             #[cfg(test)]\nmod tests {\n\
             fn t(x: u64) -> u8 { x as u8 }\n}",
        );
        assert!(d.is_empty(), "{d:?}");

        let d = run(
            "crates/stats/src/a.rs",
            "pub fn f(x: u64) -> u32 { x as u32 }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
