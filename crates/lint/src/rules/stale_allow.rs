//! R10 `stale-allow`: the allow escape hatch must stay honest.
//!
//! An `// mcs-lint: allow(<rule>, <reason>)` annotation is suppression
//! debt: it asserts a human re-proved an invariant the linter cannot.
//! When the flagged code is later fixed or deleted, the annotation keeps
//! asserting — about nothing. A stale allow is worse than none: the next
//! reader assumes the hazard is still there, and a *misspelled* rule name
//! silently suppresses nothing while looking load-bearing. R10 runs after
//! every other rule and flags each annotation that suppressed no
//! diagnostic this run. It has no allow escape of its own — the fix is
//! always to delete the annotation (or fix its rule name).

use super::{Diagnostic, RuleCtx, Scanned, RULE_NAMES};

pub(crate) fn check<'a>(files: impl Iterator<Item = &'a Scanned>, ctx: &mut RuleCtx) {
    for f in files {
        for a in &f.file.allows {
            if ctx.was_used(&f.rel, a.line, &a.rule) {
                continue;
            }
            let hint = if RULE_NAMES.contains(&a.rule.as_str()) {
                "the annotated hazard is gone — delete the annotation"
            } else {
                "not a known rule name — fix the spelling or delete the annotation"
            };
            ctx.push(Diagnostic {
                rule: "R10",
                name: "stale-allow",
                file: f.rel.clone(),
                line: a.line,
                message: format!("`allow({})` suppresses no diagnostic; {hint}", a.rule),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::scanned;
    use super::super::{determinism, RuleCtx};
    use super::*;

    #[test]
    fn live_allows_pass_and_stale_allows_flag() {
        let f = scanned(
            "crates/x/src/a.rs",
            "fn f(x: Option<u32>) -> u32 {\n\
             // mcs-lint: allow(panic, invariant: x is Some past the guard)\n\
             x.unwrap()\n\
             }\n\
             // mcs-lint: allow(panic, nothing panics here any more)\n\
             fn g() -> u32 { 1 }\n",
        );
        let mut ctx = RuleCtx::new();
        determinism::rule_panic(&f, &mut ctx);
        assert!(ctx.diags.is_empty(), "{:?}", ctx.diags);
        check(std::iter::once(&f), &mut ctx);
        assert_eq!(ctx.diags.len(), 1, "{:?}", ctx.diags);
        assert_eq!(ctx.diags[0].rule, "R10");
        assert_eq!(ctx.diags[0].line, 5);
        assert!(ctx.diags[0].message.contains("hazard is gone"));
    }

    #[test]
    fn misspelled_rule_names_get_a_spelling_hint() {
        let f = scanned(
            "crates/x/src/a.rs",
            "// mcs-lint: allow(painc, typo)\nfn f() -> u32 { 1 }\n",
        );
        let mut ctx = RuleCtx::new();
        check(std::iter::once(&f), &mut ctx);
        assert_eq!(ctx.diags.len(), 1);
        assert!(ctx.diags[0].message.contains("spelling"), "{:?}", ctx.diags);
    }
}
