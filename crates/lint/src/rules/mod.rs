//! The ten workspace rules.
//!
//! | Rule | Name | Contract |
//! |---|---|---|
//! | R1 | `map-iter` | No iteration over `HashMap`/`HashSet` in non-test library code unless the same statement canonicalises the order (an explicit `sort*`, a `BTree*`/`BinaryHeap` collect) or ends in an order-insensitive terminal (`count`, `sum`, `min_by_key`, …) |
//! | R2 | `clock` | No wall-clock or entropy sources (`Instant::now`, `SystemTime`, `thread_rng`, `from_entropy`) anywhere outside `crates/bench` |
//! | R3 | `panic` | No `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | R4 | `merge-law` | Every type in `crates/analysis` or `crates/obs` defining `fn merge(` must be referenced by a same-crate test whose name contains `merge` or `shard` |
//! | R5 | `unsafe` | Every library crate root must carry `#![forbid(unsafe_code)]` |
//! | R6 | `time-arith` | No bare `+`/`-`/`*` on time-typed quantities (`Time` bindings, `*_us`/`*_ms` names, `now*`) in `sim`/`net`/`faults`/`storage` library code — use `checked_*`/`saturating_*` |
//! | R7 | `cast-truncate` | No narrowing integer `as` cast (`u8`/`u16`/`u32`/`i8`/`i16`/`i32` targets) in `sim`/`trace`/`storage`/`net` library code unless the source is masked/mod-bounded to fit — use `try_from`/`From` |
//! | R8 | `metric-manifest` | Every metric name passed to `.counter(`/`.gauge(`/`.histogram(` in library code must appear in the workspace `METRICS.md` manifest, and every manifest entry must appear in code — drift in either direction is an error |
//! | R9 | `float-merge` | No floating-point accumulation inside `fn merge` bodies in `analysis`/`obs`/`stats` unless annotated with a documented merge-order argument |
//! | R10 | `stale-allow` | Every `mcs-lint: allow(…)` annotation must suppress at least one diagnostic; an allow that suppresses nothing is itself an error |
//!
//! Every rule except R5 and R10 honours a `// mcs-lint: allow(<name>, <reason>)`
//! comment on the flagged line or up to two lines above it. R10 exists
//! precisely to keep that escape hatch honest, so it cannot be allowed away.

pub mod cast;
pub mod determinism;
pub mod float_merge;
pub mod metrics;
pub mod stale_allow;
pub mod time_arith;

use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::scanner::{self, SourceFile};

/// The library crates the determinism contract covers.
pub const LIB_CRATES: &[&str] = &[
    "analysis", "core", "faults", "net", "obs", "sim", "stats", "storage", "trace",
];

/// Every rule name an allow-annotation can legally reference, in rule order.
pub const RULE_NAMES: &[&str] = &[
    "map-iter",
    "clock",
    "panic",
    "merge-law",
    "unsafe",
    "time-arith",
    "cast-truncate",
    "metric-manifest",
    "float-merge",
    "stale-allow",
];

/// One rule violation.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Rule id (`R1`..`R10`).
    pub rule: &'static str,
    /// Rule name (doubles as the allow-comment key).
    pub name: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file, self.line, self.rule, self.name, self.message
        )
    }
}

/// A scanned file plus workspace-level context.
pub(crate) struct Scanned {
    pub rel: String,
    pub file: SourceFile,
    /// Whole file is test code (`#![cfg(test)]` or `#[cfg(test)] mod x;`
    /// gating in the parent module file).
    pub gated: bool,
}

impl Scanned {
    pub fn is_test_line(&self, line: u32) -> bool {
        self.gated || self.file.in_test(line)
    }
}

/// Shared rule state: collected diagnostics plus which allow-annotations
/// actually suppressed something (the input to R10 and the `--debt` report).
pub(crate) struct RuleCtx {
    pub diags: Vec<Diagnostic>,
    /// `(file, allow line, rule)` for every annotation that matched a
    /// would-be diagnostic.
    used: BTreeSet<(String, u32, String)>,
}

impl RuleCtx {
    pub fn new() -> Self {
        RuleCtx {
            diags: Vec::new(),
            used: BTreeSet::new(),
        }
    }

    /// Whether `rule` is allow-annotated at `line` in `f`. Marks every
    /// covering annotation as used so R10 can flag the stale remainder.
    pub fn allowed(&mut self, f: &Scanned, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for a in &f.file.allows {
            if scanner::covers(a, rule, line) {
                self.used.insert((f.rel.clone(), a.line, rule.to_string()));
                hit = true;
            }
        }
        hit
    }

    /// Whether the annotation at (`file`, `line`) suppressed a diagnostic
    /// for `rule` during this run (R10's input).
    pub fn was_used(&self, file: &str, line: u32, rule: &str) -> bool {
        self.used
            .contains(&(file.to_string(), line, rule.to_string()))
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }
}

/// Full lint result: diagnostics plus the suppression-debt ledger.
pub struct LintReport {
    /// Sorted, deduplicated violations.
    pub diags: Vec<Diagnostic>,
    /// `(rule name, live allow count)` per rule, rule order, zero counts
    /// included. "Live" means the annotation suppressed at least one
    /// diagnostic this run; stale annotations surface in `diags` as R10.
    pub debt: Vec<(&'static str, usize)>,
}

impl LintReport {
    /// Renders the `--debt` table: live suppressions per rule.
    pub fn debt_table(&self) -> String {
        let mut out = String::from("suppression debt (live allows per rule)\n");
        let mut total = 0usize;
        for (name, n) in &self.debt {
            out.push_str(&format!("  {name:<16} {n:>4}\n"));
            total += n;
        }
        out.push_str(&format!("  {:<16} {total:>4}\n", "total"));
        out
    }
}

/// Runs all rules over the workspace rooted at `root`.
pub fn run_lint(root: &Path) -> io::Result<Vec<Diagnostic>> {
    run_lint_report(root).map(|r| r.diags)
}

/// Runs all rules over the workspace rooted at `root`, returning the
/// diagnostics and the suppression-debt ledger.
pub fn run_lint_report(root: &Path) -> io::Result<LintReport> {
    let mut ctx = RuleCtx::new();

    // Scan the nine library crates.
    let mut lib_files: Vec<Scanned> = Vec::new();
    for krate in LIB_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        lib_files.extend(scan_tree(root, &src_dir)?);
    }

    for f in &lib_files {
        determinism::rule_map_iter(f, &mut ctx);
        determinism::rule_panic(f, &mut ctx);
        determinism::rule_clock(f, &mut ctx);
        time_arith::check(f, &mut ctx);
        cast::check(f, &mut ctx);
        float_merge::check(f, &mut ctx);
    }

    // R2 also covers the harness crate, integration tests, and examples
    // (everything that feeds reproduction output). `crates/bench` is the
    // one sanctioned home for wall-clock timing.
    let mut extra_files: Vec<Scanned> = Vec::new();
    for dir in ["src", "tests", "examples"] {
        extra_files.extend(scan_tree(root, &root.join(dir))?);
    }
    for f in &extra_files {
        determinism::rule_clock(f, &mut ctx);
    }

    determinism::rule_merge_law(&lib_files, &mut ctx);

    for krate in LIB_CRATES {
        let rel = format!("crates/{krate}/src/lib.rs");
        if let Some(f) = lib_files.iter().find(|f| f.rel == rel) {
            determinism::rule_forbid_unsafe(f, &mut ctx);
        } else {
            ctx.push(Diagnostic {
                rule: "R5",
                name: "unsafe",
                file: rel,
                line: 1,
                message: format!("library crate `{krate}` has no src/lib.rs"),
            });
        }
    }

    metrics::check(root, &lib_files, &mut ctx)?;

    // R10 must run last: it consumes the usage ledger every other rule wrote.
    stale_allow::check(lib_files.iter().chain(extra_files.iter()), &mut ctx);

    let mut debt: Vec<(&'static str, usize)> = RULE_NAMES.iter().map(|n| (*n, 0usize)).collect();
    for (_, _, rule) in &ctx.used {
        if let Some(slot) = debt.iter_mut().find(|(n, _)| n == rule) {
            slot.1 += 1;
        }
    }

    let mut diags = ctx.diags;
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags.dedup_by(|a, b| (a.rule, &a.file, a.line) == (b.rule, &b.file, b.line));
    Ok(LintReport { diags, debt })
}

/// Scans every `.rs` file under `dir` (sorted walk; missing dir → empty),
/// then resolves `#[cfg(test)] mod x;` gating across sibling files.
pub(crate) fn scan_tree(root: &Path, dir: &Path) -> io::Result<Vec<Scanned>> {
    let mut paths = Vec::new();
    walk(dir, &mut paths)?;
    paths.sort();
    let mut scanned = Vec::new();
    let mut gated_paths: BTreeSet<PathBuf> = BTreeSet::new();
    for path in &paths {
        let src = std::fs::read_to_string(path)?;
        let file = SourceFile::scan(&src);
        for m in &file.cfg_test_mods {
            let parent = path.parent().unwrap_or(Path::new(""));
            gated_paths.insert(parent.join(format!("{m}.rs")));
            gated_paths.insert(parent.join(m).join("mod.rs"));
            if let Some(stem) = path.file_stem() {
                gated_paths.insert(parent.join(stem).join(format!("{m}.rs")));
            }
        }
        scanned.push((path.clone(), file));
    }
    Ok(scanned
        .into_iter()
        .map(|(path, file)| {
            let gated = gated_paths.contains(&path) || file.all_test;
            Scanned {
                rel: relative(root, &path),
                file,
                gated,
            }
        })
        .collect())
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != "fixtures" {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a pretty-printed JSON array (one object per
/// diagnostic, stable field order) for `mcs-lint --json` consumers.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"rule\": \"{}\",\n", json_escape(d.rule)));
        out.push_str(&format!("    \"name\": \"{}\",\n", json_escape(d.name)));
        out.push_str(&format!("    \"file\": \"{}\",\n", json_escape(&d.file)));
        out.push_str(&format!("    \"line\": {},\n", d.line));
        out.push_str(&format!(
            "    \"message\": \"{}\"\n",
            json_escape(&d.message)
        ));
        out.push_str(if i + 1 < diags.len() {
            "  },\n"
        } else {
            "  }\n"
        });
    }
    out.push(']');
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::Scanned;
    use crate::scanner::SourceFile;

    pub fn scanned(rel: &str, src: &str) -> Scanned {
        Scanned {
            rel: rel.to_string(),
            file: SourceFile::scan(src),
            gated: false,
        }
    }
}
