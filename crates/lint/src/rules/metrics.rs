//! R8 `metric-manifest`: the metric namespace is declared in one place.
//!
//! Every metric name passed to a `.counter(` / `.gauge(` / `.histogram(`
//! registration in library code must appear in the workspace `METRICS.md`
//! manifest, and every manifest entry must appear somewhere in code —
//! drift in *either* direction is a diagnostic. Names built with
//! `format!` are normalised by replacing each `{…}` hole with `*`, and a
//! manifest entry ending in `.*` covers the whole family
//! (`sim.events.*` covers `sim.events.store`). Call sites whose name is
//! a runtime variable (no string literal in the argument list) cannot be
//! checked statically and must carry an `allow(metric-manifest, <reason>)`.
//!
//! `crates/obs` itself is out of scope: the registry's internals shuttle
//! names it did not choose (merge, snapshot, export), and holding the
//! plumbing to the manifest would force an allow on every loop.
//!
//! The manifest format is a Markdown table; any row whose first cell is a
//! backtick-quoted name is an entry:
//!
//! ```text
//! | `sim.steps` | counter | Events executed by the engine loop. |
//! ```

use std::io;
use std::path::Path;

use crate::scanner::TokKind;

use super::{Diagnostic, RuleCtx, Scanned};

/// Registration methods whose first argument names a metric.
const REGISTER_METHODS: &[&str] = &["counter", "gauge", "histogram"];

/// One parsed manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Normalised metric name (may end in `.*` for a family).
    pub name: String,
    /// 1-based line in METRICS.md.
    pub line: u32,
}

/// Parses `METRICS.md` text: every table row whose first cell is
/// backtick-quoted becomes an entry. Header/separator rows have no
/// backticks and fall out naturally.
pub fn parse_manifest(text: &str) -> Vec<ManifestEntry> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let Some(cell) = trimmed.trim_start_matches('|').split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        if let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            if !name.is_empty() {
                out.push(ManifestEntry {
                    name: name.to_string(),
                    line: (idx + 1) as u32,
                });
            }
        }
    }
    out
}

/// Replaces every `{…}` format hole with `*`: `"sim.events.{name}"` →
/// `"sim.events.*"`.
pub fn normalize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c == '{' {
            for c2 in chars.by_ref() {
                if c2 == '}' {
                    break;
                }
            }
            out.push('*');
        } else {
            out.push(c);
        }
    }
    out
}

/// Whether manifest entry `entry` covers the (normalised) name `name`.
fn entry_covers(entry: &str, name: &str) -> bool {
    if entry == name {
        return true;
    }
    if let Some(prefix) = entry.strip_suffix('*') {
        return name.starts_with(prefix);
    }
    false
}

pub(crate) fn check(root: &Path, lib_files: &[Scanned], ctx: &mut RuleCtx) -> io::Result<()> {
    let manifest_path = root.join("METRICS.md");
    let entries = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => parse_manifest(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };

    // Forward direction: every registration site resolves to a manifest
    // entry (or is explicitly allowed for runtime-computed names).
    for f in lib_files {
        if f.gated || f.rel.starts_with("crates/obs/") {
            continue;
        }
        let toks = &f.file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || !REGISTER_METHODS.contains(&t.text.as_str()) {
                continue;
            }
            if i == 0 || !toks[i - 1].is_punct('.') {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if f.is_test_line(t.line) {
                continue;
            }
            // First string literal inside the balanced argument list is the
            // metric name (covers both `"lit"` and `&format!("lit{x}")`).
            let mut depth = 0i32;
            let mut name: Option<String> = None;
            for a in &toks[i + 1..] {
                if a.is_punct('(') {
                    depth += 1;
                } else if a.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.kind == TokKind::Lit && name.is_none() {
                    name = Some(normalize_name(&a.text));
                }
            }
            match name {
                Some(n) => {
                    if entries.iter().any(|e| entry_covers(&e.name, &n)) {
                        continue;
                    }
                    if ctx.allowed(f, "metric-manifest", t.line) {
                        continue;
                    }
                    ctx.push(Diagnostic {
                        rule: "R8",
                        name: "metric-manifest",
                        file: f.rel.clone(),
                        line: t.line,
                        message: format!(
                            "metric `{n}` is registered here but missing from METRICS.md; \
                             add a manifest row (or a `family.*` entry) so the metric \
                             namespace stays reviewable"
                        ),
                    });
                }
                None => {
                    if ctx.allowed(f, "metric-manifest", t.line) {
                        continue;
                    }
                    ctx.push(Diagnostic {
                        rule: "R8",
                        name: "metric-manifest",
                        file: f.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`.{}()` registers a runtime-computed metric name the \
                             manifest check cannot see; name it statically or annotate \
                             `// mcs-lint: allow(metric-manifest, <reason>)` and list \
                             the family in METRICS.md",
                            t.text
                        ),
                    });
                }
            }
        }
    }

    // Reverse direction: every manifest entry appears as a string literal
    // somewhere in library code (all lib crates, tests included — a
    // manifest row nothing references is dead documentation).
    for e in &entries {
        let found = lib_files.iter().any(|f| {
            f.file
                .tokens
                .iter()
                .any(|t| t.kind == TokKind::Lit && entry_covers(&e.name, &normalize_name(&t.text)))
        });
        if !found {
            ctx.push(Diagnostic {
                rule: "R8",
                name: "metric-manifest",
                file: "METRICS.md".to_string(),
                line: e.line,
                message: format!(
                    "manifest entry `{}` matches no string literal in library code; \
                     remove the row or wire the metric up",
                    e.name
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::scanned;
    use super::*;

    const MANIFEST: &str = "# Metrics\n\
        \n\
        | Metric | Kind | Meaning |\n\
        |---|---|---|\n\
        | `sim.steps` | counter | Engine loop steps. |\n\
        | `sim.events.*` | counter | Per-event-kind executions. |\n";

    #[test]
    fn manifest_parses_backticked_rows_only() {
        let entries = parse_manifest(MANIFEST);
        assert_eq!(entries.len(), 2, "{entries:?}");
        assert_eq!(entries[0].name, "sim.steps");
        assert_eq!(entries[0].line, 5);
        assert_eq!(entries[1].name, "sim.events.*");
    }

    #[test]
    fn normalisation_and_family_cover() {
        assert_eq!(normalize_name("sim.events.{name}"), "sim.events.*");
        assert_eq!(normalize_name("plain"), "plain");
        assert!(entry_covers("sim.events.*", "sim.events.store"));
        assert!(entry_covers("sim.events.*", "sim.events.*"));
        assert!(!entry_covers("sim.events.*", "sim.steps"));
        assert!(entry_covers("sim.steps", "sim.steps"));
    }

    fn run(manifest: &str, files: Vec<super::super::Scanned>) -> Vec<Diagnostic> {
        let dir = std::env::temp_dir().join(format!(
            "mcs-lint-metrics-{}-{:p}",
            std::process::id(),
            &files
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("METRICS.md"), manifest).unwrap();
        let mut ctx = RuleCtx::new();
        check(&dir, &files, &mut ctx).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        ctx.diags
    }

    #[test]
    fn listed_wildcard_and_allowed_sites_pass() {
        let f = scanned(
            "crates/sim/src/a.rs",
            "fn wire(reg: &mut Registry) {\n\
             reg.counter(\"sim.steps\");\n\
             reg.counter(&format!(\"sim.events.{kind}\"));\n\
             // mcs-lint: allow(metric-manifest, names forwarded from config)\n\
             reg.gauge(name);\n\
             }",
        );
        let d = run(MANIFEST, vec![f]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unlisted_and_dynamic_sites_flag() {
        let f = scanned(
            "crates/sim/src/a.rs",
            "fn wire(reg: &mut Registry) {\n\
             reg.counter(\"sim.steps\");\n\
             reg.counter(\"sim.events.{kind}\");\n\
             reg.counter(\"sim.unlisted\");\n\
             reg.histogram(name);\n\
             }",
        );
        let d = run(MANIFEST, vec![f]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("sim.unlisted"));
        assert_eq!(d[1].line, 5);
        assert!(d[1].message.contains("runtime-computed"));
    }

    #[test]
    fn orphan_manifest_entries_flag() {
        let f = scanned(
            "crates/sim/src/a.rs",
            "fn wire(reg: &mut Registry) { reg.counter(\"sim.steps\"); }",
        );
        let d = run(MANIFEST, vec![f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "METRICS.md");
        assert_eq!(d[0].line, 6);
        assert!(d[0].message.contains("sim.events.*"));
    }

    #[test]
    fn obs_internals_and_tests_are_out_of_scope() {
        let obs = scanned(
            "crates/obs/src/registry.rs",
            "fn merge(&mut self) { self.inner.counter(name); }",
        );
        let test = scanned(
            "crates/sim/src/a.rs",
            "#[cfg(test)]\nmod tests {\n fn t(r: &mut Registry) { r.counter(\"x.y\"); }\n}",
        );
        let d = run(MANIFEST, vec![obs, test]);
        // Only the orphan entries fire (nothing registers sim.steps here).
        assert!(d.iter().all(|d| d.file == "METRICS.md"), "{d:?}");
    }
}
