//! The five workspace rules.
//!
//! | Rule | Name | Contract |
//! |---|---|---|
//! | R1 | `map-iter` | No iteration over `HashMap`/`HashSet` in non-test library code unless the same statement canonicalises the order (an explicit `sort*`, a `BTree*`/`BinaryHeap` collect) or ends in an order-insensitive terminal (`count`, `sum`, `min_by_key`, …) |
//! | R2 | `clock` | No wall-clock or entropy sources (`Instant::now`, `SystemTime`, `thread_rng`, `from_entropy`) anywhere outside `crates/bench` |
//! | R3 | `panic` | No `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | R4 | `merge-law` | Every type in `crates/analysis` or `crates/obs` defining `fn merge(` must be referenced by a same-crate test whose name contains `merge` or `shard` |
//! | R5 | `unsafe` | Every library crate root must carry `#![forbid(unsafe_code)]` |
//!
//! Every rule except R5 honours a `// mcs-lint: allow(<name>, <reason>)`
//! comment on the flagged line or up to two lines above it.

use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::scanner::{SourceFile, Tok, TokKind};

/// The library crates the determinism contract covers.
pub const LIB_CRATES: &[&str] = &[
    "analysis", "core", "faults", "net", "obs", "sim", "stats", "storage", "trace",
];

/// One rule violation.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Rule id (`R1`..`R5`).
    pub rule: &'static str,
    /// Rule name (doubles as the allow-comment key).
    pub name: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file, self.line, self.rule, self.name, self.message
        )
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a pretty-printed JSON array (one object per
/// diagnostic, stable field order) for `mcs-lint --json` consumers.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"rule\": \"{}\",\n", json_escape(d.rule)));
        out.push_str(&format!("    \"name\": \"{}\",\n", json_escape(d.name)));
        out.push_str(&format!("    \"file\": \"{}\",\n", json_escape(&d.file)));
        out.push_str(&format!("    \"line\": {},\n", d.line));
        out.push_str(&format!(
            "    \"message\": \"{}\"\n",
            json_escape(&d.message)
        ));
        out.push_str(if i + 1 < diags.len() {
            "  },\n"
        } else {
            "  }\n"
        });
    }
    out.push(']');
    out
}

/// Methods that iterate a map/set in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Calls that impose a canonical order on whatever they iterate.
const SORTERS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Terminal operations whose result is independent of iteration order
/// (up to key ties for the `*_by_key` family — the caller must guarantee
/// distinct keys, which an allow-comment should state when non-obvious).
const ORDER_FREE: &[&str] = &[
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "all",
    "any",
    "contains",
    "contains_key",
];

/// Collects that land in an ordered container, restoring determinism.
const ORDERED_SINKS: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

/// A scanned file plus workspace-level context.
struct Scanned {
    rel: String,
    file: SourceFile,
    /// Whole file is test code (`#![cfg(test)]` or `#[cfg(test)] mod x;`
    /// gating in the parent module file).
    gated: bool,
}

impl Scanned {
    fn is_test_line(&self, line: u32) -> bool {
        self.gated || self.file.in_test(line)
    }
}

/// Runs all rules over the workspace rooted at `root`.
pub fn run_lint(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();

    // Scan the nine library crates.
    let mut lib_files: Vec<Scanned> = Vec::new();
    for krate in LIB_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        lib_files.extend(scan_tree(root, &src_dir)?);
    }

    for f in &lib_files {
        rule_map_iter(f, &mut diags);
        rule_panic(f, &mut diags);
        rule_clock(f, &mut diags);
    }

    // R2 also covers the harness crate, integration tests, and examples
    // (everything that feeds reproduction output). `crates/bench` is the
    // one sanctioned home for wall-clock timing.
    for dir in ["src", "tests", "examples"] {
        for f in &scan_tree(root, &root.join(dir))? {
            rule_clock(f, &mut diags);
        }
    }

    rule_merge_law(&lib_files, &mut diags);

    for krate in LIB_CRATES {
        let rel = format!("crates/{krate}/src/lib.rs");
        if let Some(f) = lib_files.iter().find(|f| f.rel == rel) {
            rule_forbid_unsafe(f, &mut diags);
        } else {
            diags.push(Diagnostic {
                rule: "R5",
                name: "unsafe",
                file: rel,
                line: 1,
                message: format!("library crate `{krate}` has no src/lib.rs"),
            });
        }
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags.dedup_by(|a, b| (a.rule, &a.file, a.line) == (b.rule, &b.file, b.line));
    Ok(diags)
}

/// Scans every `.rs` file under `dir` (sorted walk; missing dir → empty),
/// then resolves `#[cfg(test)] mod x;` gating across sibling files.
fn scan_tree(root: &Path, dir: &Path) -> io::Result<Vec<Scanned>> {
    let mut paths = Vec::new();
    walk(dir, &mut paths)?;
    paths.sort();
    let mut scanned = Vec::new();
    let mut gated_paths: BTreeSet<PathBuf> = BTreeSet::new();
    for path in &paths {
        let src = std::fs::read_to_string(path)?;
        let file = SourceFile::scan(&src);
        for m in &file.cfg_test_mods {
            let parent = path.parent().unwrap_or(Path::new(""));
            gated_paths.insert(parent.join(format!("{m}.rs")));
            gated_paths.insert(parent.join(m).join("mod.rs"));
            if let Some(stem) = path.file_stem() {
                gated_paths.insert(parent.join(stem).join(format!("{m}.rs")));
            }
        }
        scanned.push((path.clone(), file));
    }
    Ok(scanned
        .into_iter()
        .map(|(path, file)| {
            let gated = gated_paths.contains(&path) || file.all_test;
            Scanned {
                rel: relative(root, &path),
                file,
                gated,
            }
        })
        .collect())
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != "fixtures" {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

// ---------------------------------------------------------------- R1

/// R1: iteration over `HashMap`/`HashSet` must not leak storage order.
fn rule_map_iter(f: &Scanned, diags: &mut Vec<Diagnostic>) {
    if f.gated {
        return;
    }
    let toks = &f.file.tokens;
    let bindings = collect_map_bindings(f);
    if bindings.is_empty() {
        return;
    }

    // Method-call sites: `<binding>.iter()`, `self.<binding>.keys()`, ….
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(recv) = receiver_name(toks, i - 2) else {
            continue;
        };
        if !bindings.contains(recv) {
            continue;
        }
        if f.is_test_line(t.line) || f.file.allowed("map-iter", t.line) {
            continue;
        }
        if statement_restores_order(toks, i + 1) || sorted_out_of_band(toks, i) {
            continue;
        }
        diags.push(Diagnostic {
            rule: "R1",
            name: "map-iter",
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "`{recv}.{}()` iterates a HashMap/HashSet without sorting in the same \
                 statement; sort the result, use a BTree container, or annotate \
                 `// mcs-lint: allow(map-iter, <reason>)`",
                t.text
            ),
        });
    }

    // `for` loops over a map binding.
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        let Some((expr_start, expr_end)) = for_loop_expr(toks, i) else {
            continue;
        };
        let line = toks[i].line;
        if f.is_test_line(line) || f.file.allowed("map-iter", line) {
            continue;
        }
        // Method sites inside the header were already checked above (and
        // carry the sort/terminal escapes); a bare `for x in map`-style
        // header has no in-statement escape, so it must be annotated.
        if toks[expr_start..expr_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str()))
        {
            continue;
        }
        let hits_map = toks[expr_start..expr_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && bindings.contains(t.text.as_str()));
        if hits_map {
            diags.push(Diagnostic {
                rule: "R1",
                name: "map-iter",
                file: f.rel.clone(),
                line,
                message: "`for` loop over a HashMap/HashSet binding leaks storage order; \
                          iterate a sorted copy, use a BTree container, or annotate \
                          `// mcs-lint: allow(map-iter, <reason>)`"
                    .to_string(),
            });
        }
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` in non-test code:
/// `let` bindings, struct fields, and fn params (matched as `name: …Hash…`).
/// Test-region bindings are skipped so a test-local `m: HashMap` cannot
/// poison an unrelated `m` in library code.
fn collect_map_bindings(f: &Scanned) -> BTreeSet<String> {
    let toks = &f.file.tokens;
    let mut out = BTreeSet::new();
    let is_map = |t: &Tok| t.is_ident("HashMap") || t.is_ident("HashSet");

    for i in 0..toks.len() {
        if f.is_test_line(toks[i].line) {
            continue;
        }
        // `name : <segment containing HashMap/HashSet>` — a struct field,
        // fn param, or typed binding. Path separators (`::`) are excluded.
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && (i == 0 || !toks[i - 1].is_punct(':'))
        {
            let mut depth = 0i32;
            for t in &toks[i + 2..] {
                if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                    if t.is_punct(')') && depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth <= 0
                    && (t.is_punct(',') || t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                {
                    break;
                } else if is_map(t) {
                    out.insert(toks[i].text.clone());
                    break;
                }
            }
        }
        // `let [mut] name = <rhs containing HashMap/HashSet>;`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            let mut depth = 0i32;
            for t in &toks[j + 1..] {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && t.is_punct(';') {
                    break;
                } else if is_map(t) {
                    out.insert(name.text.clone());
                    break;
                }
            }
        }
    }
    out
}

/// Resolves the receiver of a `.method()` call at the token *before* the
/// dot: `map.iter()` → `map`; `self.field.iter()` → `field`. Returns
/// `None` for receivers too complex to name (conservatively unflagged).
fn receiver_name(toks: &[Tok], i: usize) -> Option<&str> {
    let t = toks.get(i)?;
    if t.kind == TokKind::Ident && t.text != "self" {
        return Some(&t.text);
    }
    None
}

/// Scans from the iteration call's opening paren to the end of the
/// statement; true when the chain sorts, ends order-insensitively, or
/// collects into an ordered container.
fn statement_restores_order(toks: &[Tok], open_paren: usize) -> bool {
    let mut depth = 0i32;
    for t in &toks[open_paren..] {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0 && (t.is_punct(';') || t.is_punct(',') || t.is_punct('{')) {
            return false;
        } else if t.kind == TokKind::Ident
            && (SORTERS.contains(&t.text.as_str())
                || ORDER_FREE.contains(&t.text.as_str())
                || ORDERED_SINKS.contains(&t.text.as_str()))
        {
            return true;
        }
    }
    false
}

/// Escapes the forward scan cannot see: a `let s: BTreeSet<_> = …`
/// annotation earlier in the same statement, or the canonical
/// collect-then-sort idiom where the *next* statement sorts the binding
/// this statement produced (`let mut v = m.keys().collect(); v.sort();`).
fn sorted_out_of_band(toks: &[Tok], method_idx: usize) -> bool {
    // Walk back to the statement start (bounded; closures make exact
    // brace-depth bookkeeping overkill here — conservative either way).
    let mut start = method_idx;
    for k in (method_idx.saturating_sub(40)..method_idx).rev() {
        if toks[k].is_punct(';') || toks[k].is_punct('{') || toks[k].is_punct('}') {
            start = k + 1;
            break;
        }
        start = k;
    }
    let head = &toks[start..method_idx];
    if head
        .iter()
        .any(|t| t.kind == TokKind::Ident && ORDERED_SINKS.contains(&t.text.as_str()))
    {
        return true;
    }

    // `let [mut] NAME = …` head → look for `NAME.sort*(` in the statement
    // immediately after this one.
    let target = match head {
        [l, n, ..] if l.is_ident("let") && n.kind == TokKind::Ident && n.text != "mut" => &n.text,
        [l, m, n, ..] if l.is_ident("let") && m.is_ident("mut") && n.kind == TokKind::Ident => {
            &n.text
        }
        _ => return false,
    };
    // Skip to the `;` ending this statement.
    let mut depth = 0i32;
    let mut j = method_idx;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0 && t.is_punct('{') {
            return false;
        } else if depth == 0 && t.is_punct(';') {
            break;
        }
        j += 1;
    }
    // Next statement: `target . sort* (` before the following `;`.
    let next = &toks[j + 1..toks.len().min(j + 40)];
    for w in 0..next.len() {
        if next[w].is_punct(';') || next[w].is_punct('{') || next[w].is_punct('}') {
            break;
        }
        if next[w].is_ident(target)
            && next.get(w + 1).is_some_and(|t| t.is_punct('.'))
            && next
                .get(w + 2)
                .is_some_and(|t| SORTERS.contains(&t.text.as_str()))
        {
            return true;
        }
    }
    false
}

/// For a `for` token at `i`, returns the token range of the iterated
/// expression (`in` … `{`), or `None` when this is not a loop header
/// (`impl Trait for Type`, `for<'a>`).
fn for_loop_expr(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    // `impl … for Type` / higher-ranked `for<'a>`: not loops.
    if toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
        return None;
    }
    let mut depth = 0i32;
    let mut in_pos = None;
    for (j, t) in toks.iter().enumerate().skip(i + 1).take(200) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return in_pos.map(|p| (p + 1, j));
        } else if depth == 0 && t.is_ident("in") && in_pos.is_none() {
            in_pos = Some(j);
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('}')) {
            return None;
        }
    }
    None
}

// ---------------------------------------------------------------- R2

/// R2: no wall-clock or entropy sources outside `crates/bench`.
fn rule_clock(f: &Scanned, diags: &mut Vec<Diagnostic>) {
    let toks = &f.file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "SystemTime" | "thread_rng" | "from_entropy" => Some(t.text.as_str()),
            "Instant" => (toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now")))
            .then_some("Instant::now"),
            _ => None,
        };
        let Some(source) = hit else { continue };
        if f.file.allowed("clock", t.line) {
            continue;
        }
        diags.push(Diagnostic {
            rule: "R2",
            name: "clock",
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "`{source}` is a nondeterminism source; seed explicitly from config \
                 (wall-clock timing belongs in crates/bench)"
            ),
        });
    }
}

// ---------------------------------------------------------------- R3

/// R3: no panicking calls in non-test library code.
fn rule_panic(f: &Scanned, diags: &mut Vec<Diagnostic>) {
    if f.gated {
        return;
    }
    let toks = &f.file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let site = match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                Some(format!(".{}()", t.text))
            }
            "panic" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                Some(format!("{}!", t.text))
            }
            _ => None,
        };
        let Some(site) = site else { continue };
        if f.is_test_line(t.line) || f.file.allowed("panic", t.line) {
            continue;
        }
        diags.push(Diagnostic {
            rule: "R3",
            name: "panic",
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "`{site}` can abort the pipeline mid-run; return a Result, handle the \
                 case, or annotate `// mcs-lint: allow(panic, <reason>)`"
            ),
        });
    }
}

// ---------------------------------------------------------------- R4

/// R4: every `fn merge(` type in the shard-reduce crates
/// (`crates/analysis`, `crates/obs`) needs a merge-law or
/// shard-invariance test referencing it by name.
fn rule_merge_law(files: &[Scanned], diags: &mut Vec<Diagnostic>) {
    for prefix in ["crates/analysis/", "crates/obs/"] {
        merge_law_for_crate(files, prefix, diags);
    }
}

/// Runs R4 over one crate's files; tests in one crate cannot vouch for
/// merge impls in another.
fn merge_law_for_crate(files: &[Scanned], prefix: &str, diags: &mut Vec<Diagnostic>) {
    let analysis: Vec<&Scanned> = files.iter().filter(|f| f.rel.starts_with(prefix)).collect();

    // All identifiers referenced by test fns whose name mentions merge or
    // shard, across the whole crate.
    let mut tested: BTreeSet<String> = BTreeSet::new();
    for f in &analysis {
        let toks = &f.file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") {
                continue;
            }
            let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !(name.text.contains("merge") || name.text.contains("shard")) {
                continue;
            }
            if !(f.gated || f.file.in_test(name.line)) {
                continue;
            }
            // Collect idents through the fn body (first `{` … matching `}`).
            let mut depth = 0i32;
            let mut started = false;
            for t in &toks[i + 2..] {
                if t.is_punct('{') {
                    depth += 1;
                    started = true;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if started && depth == 0 {
                        break;
                    }
                } else if t.kind == TokKind::Ident {
                    tested.insert(t.text.clone());
                }
            }
        }
    }

    for f in &analysis {
        for (type_name, line) in merge_impls(&f.file) {
            if f.gated || f.file.in_test(line) {
                continue;
            }
            if tested.contains(&type_name) {
                continue;
            }
            if f.file.allowed("merge-law", line) {
                continue;
            }
            diags.push(Diagnostic {
                rule: "R4",
                name: "merge-law",
                file: f.rel.clone(),
                line,
                message: format!(
                    "`{type_name}` defines `fn merge` but no test named *merge*/*shard* \
                     references it; add a merge-law test so the shard-reduce monoid \
                     stays total"
                ),
            });
        }
    }
}

/// `(type_name, line_of_fn_merge)` for every `fn merge` inside an `impl`
/// block of this file.
fn merge_impls(file: &SourceFile) -> Vec<(String, u32)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip generic params.
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut d = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    d += 1;
                } else if toks[j].is_punct('>') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        }
        // Read the (possibly trait) path up to `for`/`where`/`{`; the
        // implemented type is the last path segment before its generics.
        let mut type_name = String::new();
        let mut d = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                d += 1;
            } else if t.is_punct('>') {
                d -= 1;
            } else if d == 0 && t.is_ident("for") {
                type_name.clear(); // trait path — the type follows
            } else if d == 0 && (t.is_punct('{') || t.is_ident("where")) {
                break;
            } else if d == 0 && t.kind == TokKind::Ident {
                type_name = t.text.clone();
            }
            j += 1;
        }
        // Find the body opening brace, then scan it for `fn merge`.
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("fn")
                && toks.get(j + 1).is_some_and(|t| t.is_ident("merge"))
                && !type_name.is_empty()
            {
                out.push((type_name.clone(), toks[j].line));
            }
            j += 1;
        }
        i = j + 1;
    }
    out
}

// ---------------------------------------------------------------- R5

/// R5: library crate roots must forbid unsafe code.
fn rule_forbid_unsafe(f: &Scanned, diags: &mut Vec<Diagnostic>) {
    let toks = &f.file.tokens;
    let has = (0..toks.len()).any(|i| {
        toks[i].is_ident("forbid")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("unsafe_code"))
    });
    if !has {
        diags.push(Diagnostic {
            rule: "R5",
            name: "unsafe",
            file: f.rel.clone(),
            line: 1,
            message: "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::SourceFile;

    fn scanned(rel: &str, src: &str) -> Scanned {
        Scanned {
            rel: rel.to_string(),
            file: SourceFile::scan(src),
            gated: false,
        }
    }

    #[test]
    fn map_iter_flags_unsorted_keys() {
        let f = scanned(
            "crates/x/src/a.rs",
            "fn f(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }",
        );
        let mut d = Vec::new();
        rule_map_iter(&f, &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "R1");
    }

    #[test]
    fn map_iter_accepts_sorted_and_order_free() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n\
                   let a: Vec<u32> = m.keys().copied().collect();\n\
                   let n = m.values().count();\n\
                   let mut v: Vec<u32> = m.keys().copied().collect();\n\
                   v.sort();\n\
                   let s: BTreeSet<u32> = m.keys().copied().collect();\n\
                   let t = m.keys().copied().collect::<BTreeSet<u32>>();\n\
                   }";
        let f = scanned("crates/x/src/a.rs", src);
        let mut d = Vec::new();
        rule_map_iter(&f, &mut d);
        // Line 2 is never sorted → flagged. Line 3 is an order-free
        // terminal, line 4 is sorted by the next statement, lines 6-7
        // land in an ordered container (annotation / turbofish).
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn map_iter_for_loop_needs_allow() {
        let bad = "fn f(m: &HashSet<u32>) { for x in m { use_it(x); } }";
        let f = scanned("crates/x/src/a.rs", bad);
        let mut d = Vec::new();
        rule_map_iter(&f, &mut d);
        assert_eq!(d.len(), 1);

        let ok = "fn f(m: &HashSet<u32>) {\n\
                  // mcs-lint: allow(map-iter, folded into an order-free sum)\n\
                  for x in m { s += x; }\n}";
        let f = scanned("crates/x/src/a.rs", ok);
        let mut d = Vec::new();
        rule_map_iter(&f, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn map_iter_ignores_btree_and_tests() {
        let src = "fn f(m: &BTreeMap<u32, u32>) { for x in m.keys() { g(x); } }\n\
                   #[cfg(test)]\nmod tests {\n\
                   fn t(m: &HashMap<u32, u32>) { for x in m.keys() { g(x); } }\n}";
        let f = scanned("crates/x/src/a.rs", src);
        let mut d = Vec::new();
        rule_map_iter(&f, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn panic_rule_flags_and_allows() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g() { panic!(\"boom\"); }\n\
                   fn h(x: Option<u32>) -> u32 {\n\
                   // mcs-lint: allow(panic, length checked above)\n\
                   x.expect(\"checked\")\n}";
        let f = scanned("crates/x/src/a.rs", src);
        let mut d = Vec::new();
        rule_panic(&f, &mut d);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
    }

    #[test]
    fn clock_rule() {
        let src = "fn f() { let t = Instant::now(); }";
        let f = scanned("crates/x/src/a.rs", src);
        let mut d = Vec::new();
        rule_clock(&f, &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "R2");
        // `Instant` not followed by `::now` is fine (e.g. a type position).
        let f = scanned("crates/x/src/a.rs", "fn f(t: Instant) {}");
        let mut d = Vec::new();
        rule_clock(&f, &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn merge_law_matches_by_type_name() {
        let src = "pub struct Acc { n: u64 }\n\
                   impl Acc { pub fn merge(&mut self, o: &Self) { self.n += o.n; } }\n\
                   #[cfg(test)]\nmod tests {\n\
                   #[test]\nfn merge_law_acc() { let a = Acc { n: 0 }; }\n}";
        let covered = scanned("crates/analysis/src/a.rs", src);
        let mut d = Vec::new();
        rule_merge_law(&[covered], &mut d);
        assert!(d.is_empty(), "{d:?}");

        let src = "pub struct Acc { n: u64 }\n\
                   impl Acc { pub fn merge(&mut self, o: &Self) { self.n += o.n; } }";
        let uncovered = scanned("crates/analysis/src/a.rs", src);
        let mut d = Vec::new();
        rule_merge_law(&[uncovered], &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "R4");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn merge_law_outside_analysis_is_ignored() {
        let src = "pub struct Acc { n: u64 }\n\
                   impl Acc { pub fn merge(&mut self, o: &Self) {} }";
        let f = scanned("crates/stats/src/a.rs", src);
        let mut d = Vec::new();
        rule_merge_law(&[f], &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn forbid_unsafe_detection() {
        let f = scanned(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
        );
        let mut d = Vec::new();
        rule_forbid_unsafe(&f, &mut d);
        assert!(d.is_empty());
        let f = scanned("crates/x/src/lib.rs", "pub fn f() {}");
        let mut d = Vec::new();
        rule_forbid_unsafe(&f, &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "R5");
    }
}
