//! `mcs-lint`: the workspace determinism & robustness auditor.
//!
//! PR 2 made the analysis pipeline bit-identical across thread counts;
//! this crate machine-checks the contract that guarantee rests on. It is
//! a self-contained static-analysis pass (a hand-rolled, comment- and
//! string-aware lexer — no external parser crates) that walks every
//! `.rs` file in the library crates and enforces five rules clippy
//! cannot express. See [`rules`] for the rule table and
//! `DESIGN.md` § "Enforcing the determinism contract" for the rationale.
//!
//! Run it with `cargo run -p mcs-lint` (add `-- --json` for tooling).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod rules;
pub mod scanner;

pub use rules::{diagnostics_to_json, run_lint, Diagnostic, LIB_CRATES};
