//! `mcs-lint`: the workspace determinism & robustness auditor.
//!
//! PR 2 made the analysis pipeline bit-identical across thread counts;
//! this crate machine-checks the contract that guarantee rests on. It is
//! a self-contained static-analysis pass (a hand-rolled, span-aware,
//! comment- and string-tracking lexer plus brace/expression helpers — no
//! external parser crates) that walks every `.rs` file in the library
//! crates and enforces ten rules clippy cannot express. See [`rules`]
//! for the rule table, `DESIGN.md` § "Enforcing the determinism
//! contract" and § "Span-aware lint rules" for the rationale, and
//! `METRICS.md` for the metric manifest R8 checks against.
//!
//! Run it with `cargo run -p mcs-lint` (add `-- --json` for tooling,
//! `-- --debt` for the suppression ledger).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod expr;
pub mod rules;
pub mod scanner;

pub use rules::{
    diagnostics_to_json, run_lint, run_lint_report, Diagnostic, LintReport, LIB_CRATES, RULE_NAMES,
};
