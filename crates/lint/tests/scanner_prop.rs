//! Property tests for the span-aware scanner.
//!
//! A splitmix64-seeded corpus composes source text from fragments chosen
//! to stress the lexer's hard cases — nested block comments, escaped and
//! raw strings, char literals vs lifetimes, numeric shapes — and asserts
//! the invariants every rule depends on:
//!
//! - scanning never panics, on well-formed text or on arbitrary prefixes
//!   of it (truncation mid-literal included);
//! - token spans are in-bounds, non-empty, and monotone (no overlap);
//! - each token's recorded line equals 1 + the newline count before its
//!   span start;
//! - spans round-trip: re-slicing the source by a token's span reproduces
//!   the token text exactly for `Ident`/`Num`/`Punct`, with the leading
//!   quote for `Lifetime`, and is never shorter than the inner text for
//!   `Lit` (whose span keeps the delimiters the text strips).

#![allow(clippy::unwrap_used)]

use mcs_lint::scanner::{SourceFile, TokKind};

/// splitmix64 — tiny, seedable, and good enough to shuffle fragments.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fragments chosen to hit every lexer branch: comments (line, nested
/// block, allow-annotated), every literal family, lifetimes, numeric
/// shapes, and ordinary code.
const FRAGMENTS: &[&str] = &[
    "/* outer /* nested */ still comment */",
    "/* multi\nline /* deeper\n */ comment */",
    "// a line comment with allow( prose that is not an annotation",
    "// mcs-lint: allow(map-iter, corpus reason)",
    "\"a string with // no comment inside\"",
    "\"escaped \\\" quote and \\\\ backslash\"",
    "\"multi\nline\nstring\"",
    "\"brace salad } { ) ( inside\"",
    "r\"raw simple\"",
    "r#\"raw with \"quotes\" inside\"#",
    "r##\"raw with \"# inside\"##",
    "b\"byte string\"",
    "br#\"raw bytes \"q\" here\"#",
    "'x'",
    "'\\''",
    "'\\n'",
    "'\\u{41}'",
    "&'a str",
    "&'static [u8]",
    "0xff_u32",
    "0b1010_1010",
    "3_600_000u64",
    "1.5",
    "9.75e2",
    "0..10",
    "let deadline_ms = now + 3_600_000;",
    "fn merge(&mut self, other: &Self) { self.total += other.total; }",
    "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }",
    "#![forbid(unsafe_code)]",
    "impl<'a, T: Ord> Wheel<'a, T> { fn slot(&self) -> u32 { 0 } }",
    "match x { Some(v) => v, None => 0 }",
    "reg.counter(\"sim.events.{kind}\")",
    "let v: Vec<u64> = m.keys().copied().collect();",
    "a -> b => c :: d .. e",
    "_underscore _x1",
];

const SEPARATORS: &[&str] = &[" ", "\n", "\t", "\n\n", " \n "];

/// Scans `src` and asserts every span/line invariant; returns the file.
fn check(src: &str) -> SourceFile {
    let f = SourceFile::scan(src);
    let chars: Vec<char> = src.chars().collect();
    let total_lines = chars.iter().filter(|c| **c == '\n').count() + 1;
    let mut prev_end = 0usize;
    for (idx, t) in f.tokens.iter().enumerate() {
        assert!(
            t.span.start >= prev_end,
            "token {idx} overlaps its predecessor: {t:?}\nsource: {src:?}"
        );
        assert!(
            t.span.start < t.span.end,
            "token {idx} has an empty span: {t:?}\nsource: {src:?}"
        );
        assert!(
            t.span.end <= chars.len(),
            "token {idx} span escapes the source: {t:?}\nsource: {src:?}"
        );
        prev_end = t.span.end;

        let newlines = chars[..t.span.start].iter().filter(|c| **c == '\n').count();
        assert_eq!(
            t.line as usize,
            newlines + 1,
            "token {idx} line drifted: {t:?}\nsource: {src:?}"
        );

        let slice: String = chars[t.span.start..t.span.end].iter().collect();
        match t.kind {
            TokKind::Ident | TokKind::Num | TokKind::Punct => assert_eq!(
                slice, t.text,
                "token {idx} span does not round-trip\nsource: {src:?}"
            ),
            TokKind::Lifetime => assert_eq!(
                slice,
                format!("'{}", t.text),
                "lifetime {idx} span does not round-trip\nsource: {src:?}"
            ),
            TokKind::Lit => assert!(
                t.span.end - t.span.start >= t.text.chars().count(),
                "literal {idx} inner text outgrew its span: {t:?}\nsource: {src:?}"
            ),
        }
    }
    for a in &f.allows {
        assert!(!a.rule.is_empty(), "empty allow rule\nsource: {src:?}");
        assert!(
            (a.line as usize) <= total_lines,
            "allow line {} beyond {total_lines} lines\nsource: {src:?}",
            a.line
        );
    }
    f
}

#[test]
fn seeded_corpus_scans_without_panics_and_spans_round_trip() {
    for seed in 0..500u64 {
        let mut rng = seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0x1405_7B7E_F767_814F;
        let n = 8 + (splitmix64(&mut rng) % 40) as usize;
        let mut src = String::new();
        for _ in 0..n {
            let frag = FRAGMENTS[(splitmix64(&mut rng) as usize) % FRAGMENTS.len()];
            let sep = SEPARATORS[(splitmix64(&mut rng) as usize) % SEPARATORS.len()];
            src.push_str(frag);
            src.push_str(sep);
        }
        let full = check(&src);

        // Scanning is a pure function of the text.
        let again = SourceFile::scan(&src);
        assert_eq!(full.tokens.len(), again.tokens.len(), "seed {seed}");
        assert_eq!(full.allows.len(), again.allows.len(), "seed {seed}");

        // Arbitrary prefixes (truncation mid-literal, mid-comment,
        // mid-escape) must scan without panicking and keep the same
        // invariants for whatever tokens survive.
        let total = src.chars().count();
        for _ in 0..3 {
            let cut = (splitmix64(&mut rng) as usize) % (total + 1);
            let prefix: String = src.chars().take(cut).collect();
            check(&prefix);
        }
    }
}

#[test]
fn pathological_literals_scan_cleanly() {
    // Deterministic worst cases, checked token-by-token.
    let f = check("let s = r##\"a \"# b\"## ; 'q' '\\\\' 'lt");
    let lits: Vec<&str> = f
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lits, vec!["a \"# b", "q", "\\\\"]);
    assert_eq!(
        f.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count(),
        1
    );

    // Unterminated forms at end-of-input: no panics, spans stay bounded.
    for src in [
        "\"unterminated",
        "r#\"unterminated raw",
        "'\\",
        "/* unterminated /* nested",
        "b\"",
        "'",
    ] {
        check(src);
    }
}

#[test]
fn allows_survive_surrounding_noise() {
    let f = check(
        "/* block */ // mcs-lint: allow(cast-truncate, reason text)\n\
         \"allow(panic, a string is not an annotation)\"\n\
         // mcs-lint: allow(time-arith, second)\n",
    );
    let rules: Vec<&str> = f.allows.iter().map(|a| a.rule.as_str()).collect();
    assert_eq!(rules, vec!["cast-truncate", "time-arith"]);
    assert_eq!(f.allows[0].line, 1);
    assert_eq!(f.allows[1].line, 3);
}
