//! Fixture-tree and self-check integration tests for `mcs-lint`.

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

use mcs_lint::{run_lint, Diagnostic};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn fixture_diags() -> Vec<Diagnostic> {
    run_lint(&fixture_root()).unwrap()
}

#[test]
fn fixture_tree_trips_every_rule_exactly_once() {
    let diags = fixture_diags();
    let mut rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec!["R1", "R2", "R3", "R4", "R5"],
        "expected exactly one diagnostic per planted violation, got: {diags:#?}"
    );
}

#[test]
fn fixture_diagnostics_point_at_the_planted_lines() {
    let diags = fixture_diags();
    let find = |rule: &str| diags.iter().find(|d| d.rule == rule).unwrap();

    let r1 = find("R1");
    assert_eq!(r1.file, "crates/storage/src/bad_iter.rs");
    assert_eq!(r1.line, 6);

    let r2 = find("R2");
    assert_eq!(r2.file, "crates/net/src/bad_clock.rs");
    assert_eq!(r2.line, 4);

    let r3 = find("R3");
    assert_eq!(r3.file, "crates/stats/src/bad_panic.rs");
    assert_eq!(r3.line, 4);

    let r4 = find("R4");
    assert_eq!(r4.file, "crates/analysis/src/bad_merge.rs");
    assert_eq!(r4.line, 8);
    assert!(r4.message.contains("ShardAcc"));

    let r5 = find("R5");
    assert_eq!(r5.file, "crates/core/src/lib.rs");
}

#[test]
fn allow_comments_and_test_code_suppress() {
    // crates/trace in the fixture tree reproduces the R1/R3 patterns but
    // under allow-comments, an order-free terminal, and #[cfg(test)];
    // none may fire.
    let diags = fixture_diags();
    assert!(
        !diags.iter().any(|d| d.file.starts_with("crates/trace/")),
        "suppressed sites leaked diagnostics: {diags:#?}"
    );
}

#[test]
fn covered_merge_impl_does_not_fire_r4() {
    // crates/analysis/src/covered_merge.rs defines a merge impl WITH a
    // same-crate merge-law test; R4 must stay quiet about it while still
    // flagging the uncovered ShardAcc next door.
    let diags = fixture_diags();
    assert!(
        !diags
            .iter()
            .any(|d| d.file == "crates/analysis/src/covered_merge.rs"),
        "covered merge impl leaked a diagnostic: {diags:#?}"
    );
    assert!(
        !diags.iter().any(|d| d.message.contains("CoveredAcc")),
        "CoveredAcc must be vouched for by its test: {diags:#?}"
    );
}

#[test]
fn workspace_self_check_is_clean() {
    let diags = run_lint(&workspace_root()).unwrap();
    assert!(
        diags.is_empty(),
        "the workspace must pass its own determinism audit:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_nonzero_on_fixtures_and_zero_on_workspace() {
    let bin = env!("CARGO_BIN_EXE_mcs-lint");

    let bad = Command::new(bin).arg(fixture_root()).output().unwrap();
    assert_eq!(
        bad.status.code(),
        Some(1),
        "fixture tree must fail the lint"
    );
    let stdout = String::from_utf8(bad.stdout).unwrap();
    assert!(stdout.contains("[R1/map-iter]"), "{stdout}");
    assert!(stdout.contains("[R5/unsafe]"), "{stdout}");

    let good = Command::new(bin).arg(workspace_root()).output().unwrap();
    assert_eq!(
        good.status.code(),
        Some(0),
        "workspace must pass: {}",
        String::from_utf8_lossy(&good.stdout)
    );
}

#[test]
fn json_output_is_machine_readable() {
    let bin = env!("CARGO_BIN_EXE_mcs-lint");
    let out = Command::new(bin)
        .arg("--json")
        .arg(fixture_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    let trimmed = text.trim();
    assert!(trimmed.starts_with('['), "{trimmed}");
    assert!(trimmed.ends_with(']'), "{trimmed}");
    // One object per planted violation, each carrying the full field set.
    for key in [
        "\"rule\"",
        "\"name\"",
        "\"file\"",
        "\"line\"",
        "\"message\"",
    ] {
        assert_eq!(trimmed.matches(key).count(), 5, "missing {key}: {trimmed}");
    }
    for rule in ["\"R1\"", "\"R2\"", "\"R3\"", "\"R4\"", "\"R5\""] {
        assert_eq!(trimmed.matches(rule).count(), 1, "{rule}: {trimmed}");
    }
    // No human-facing summary may pollute the JSON stream.
    assert!(!text.contains("violation(s)"));
}
