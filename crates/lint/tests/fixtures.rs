//! Fixture-tree and self-check integration tests for `mcs-lint`.
//!
//! The fixture workspace under `fixtures/ws` plants exactly one violation
//! per rule (R1–R10), one counter-example that must stay silent, and one
//! suppression look-alike (an `allow` that genuinely covers a would-be
//! diagnostic, so it is *live* and must not trip R10).

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

use mcs_lint::{run_lint, Diagnostic};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn fixture_diags() -> Vec<Diagnostic> {
    run_lint(&fixture_root()).unwrap()
}

#[test]
fn fixture_tree_trips_every_rule_exactly_once() {
    let diags = fixture_diags();
    let mut rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec!["R1", "R10", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"],
        "expected exactly one diagnostic per planted violation, got: {diags:#?}"
    );
}

#[test]
fn fixture_diagnostics_point_at_the_planted_lines() {
    let diags = fixture_diags();
    let find = |rule: &str| diags.iter().find(|d| d.rule == rule).unwrap();

    let r1 = find("R1");
    assert_eq!(r1.file, "crates/storage/src/bad_iter.rs");
    assert_eq!(r1.line, 6);

    let r2 = find("R2");
    assert_eq!(r2.file, "crates/net/src/bad_clock.rs");
    assert_eq!(r2.line, 4);

    let r3 = find("R3");
    assert_eq!(r3.file, "crates/stats/src/bad_panic.rs");
    assert_eq!(r3.line, 4);

    let r4 = find("R4");
    assert_eq!(r4.file, "crates/analysis/src/bad_merge.rs");
    assert_eq!(r4.line, 8);
    assert!(r4.message.contains("ShardAcc"));

    let r5 = find("R5");
    assert_eq!(r5.file, "crates/core/src/lib.rs");

    let r6 = find("R6");
    assert_eq!(r6.file, "crates/sim/src/bad_time.rs");
    assert_eq!(r6.line, 8);
    assert!(r6.message.contains('+'), "{}", r6.message);

    let r7 = find("R7");
    assert_eq!(r7.file, "crates/trace/src/bad_cast.rs");
    assert_eq!(r7.line, 6);
    assert!(r7.message.contains("u32"), "{}", r7.message);

    let r8 = find("R8");
    assert_eq!(r8.file, "crates/storage/src/metrics_site.rs");
    assert_eq!(r8.line, 16);
    assert!(r8.message.contains("fixture.unlisted"), "{}", r8.message);

    let r9 = find("R9");
    assert_eq!(r9.file, "crates/analysis/src/bad_float_merge.rs");
    assert_eq!(r9.line, 13);

    let r10 = find("R10");
    assert_eq!(r10.file, "crates/core/src/lib.rs");
    assert_eq!(r10.line, 8);
    assert!(
        r10.message.contains("suppresses no diagnostic"),
        "{}",
        r10.message
    );
}

#[test]
fn counter_examples_and_live_allows_stay_silent() {
    // Each planted file carries its violation plus a counter-example and
    // an allowed look-alike; only the violation line may fire. A second
    // diagnostic from any of these files means a counter-example leaked
    // or a live allow failed to suppress (which would also trip R10).
    let diags = fixture_diags();
    for (file, expect) in [
        ("crates/sim/src/bad_time.rs", 1),
        ("crates/trace/src/bad_cast.rs", 1),
        ("crates/storage/src/metrics_site.rs", 1),
        ("crates/analysis/src/bad_float_merge.rs", 1),
        // R5 (missing forbid) and R10 (stale allow) share the core root.
        ("crates/core/src/lib.rs", 2),
    ] {
        let n = diags.iter().filter(|d| d.file == file).count();
        assert_eq!(n, expect, "{file}: {diags:#?}");
    }
    // The fixture manifest's rows are all wired up; the reverse direction
    // of R8 must not flag METRICS.md itself.
    assert!(
        !diags.iter().any(|d| d.file == "METRICS.md"),
        "orphan-manifest diagnostics leaked: {diags:#?}"
    );
}

#[test]
fn allow_comments_and_test_code_suppress() {
    // crates/trace/src/allowed.rs reproduces the R1/R3 patterns but under
    // allow-comments, an order-free terminal, and #[cfg(test)]; none may
    // fire.
    let diags = fixture_diags();
    assert!(
        !diags
            .iter()
            .any(|d| d.file == "crates/trace/src/allowed.rs"),
        "suppressed sites leaked diagnostics: {diags:#?}"
    );
}

#[test]
fn covered_merge_impl_does_not_fire_r4() {
    // crates/analysis/src/covered_merge.rs defines a merge impl WITH a
    // same-crate merge-law test; R4 must stay quiet about it while still
    // flagging the uncovered ShardAcc next door.
    let diags = fixture_diags();
    assert!(
        !diags
            .iter()
            .any(|d| d.file == "crates/analysis/src/covered_merge.rs"),
        "covered merge impl leaked a diagnostic: {diags:#?}"
    );
    assert!(
        !diags.iter().any(|d| d.message.contains("CoveredAcc")),
        "CoveredAcc must be vouched for by its test: {diags:#?}"
    );
}

#[test]
fn workspace_self_check_is_clean() {
    let diags = run_lint(&workspace_root()).unwrap();
    assert!(
        diags.is_empty(),
        "the workspace must pass its own determinism audit:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_nonzero_on_fixtures_and_zero_on_workspace() {
    let bin = env!("CARGO_BIN_EXE_mcs-lint");

    let bad = Command::new(bin).arg(fixture_root()).output().unwrap();
    assert_eq!(
        bad.status.code(),
        Some(1),
        "fixture tree must fail the lint"
    );
    let stdout = String::from_utf8(bad.stdout).unwrap();
    for tag in [
        "[R1/map-iter]",
        "[R5/unsafe]",
        "[R6/time-arith]",
        "[R7/cast-truncate]",
        "[R8/metric-manifest]",
        "[R9/float-merge]",
        "[R10/stale-allow]",
    ] {
        assert!(stdout.contains(tag), "missing {tag}: {stdout}");
    }

    let good = Command::new(bin).arg(workspace_root()).output().unwrap();
    assert_eq!(
        good.status.code(),
        Some(0),
        "workspace must pass: {}",
        String::from_utf8_lossy(&good.stdout)
    );
}

#[test]
fn debt_flag_reports_live_allows_per_rule() {
    let bin = env!("CARGO_BIN_EXE_mcs-lint");
    let out = Command::new(bin)
        .arg("--debt")
        .arg(fixture_root())
        .output()
        .unwrap();
    // The debt ledger rides on stderr; the violations still fail the run.
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("suppression debt (live allows per rule)"),
        "{err}"
    );
    // The fixture tree holds exactly one live allow per allow-bearing new
    // rule (the look-alikes), plus map-iter/panic from allowed.rs. The
    // stale core allow(panic) must NOT count — it suppresses nothing.
    for (rule, n) in [
        ("map-iter", 1),
        ("panic", 1),
        ("time-arith", 1),
        ("cast-truncate", 1),
        ("metric-manifest", 1),
        ("float-merge", 1),
        ("stale-allow", 0),
        ("total", 6),
    ] {
        let row = format!("  {rule:<16} {n:>4}");
        assert!(err.contains(&row), "missing row {row:?} in:\n{err}");
    }
}

#[test]
fn workspace_debt_ledger_renders() {
    // No hard-coded workspace counts (they drift as the workspace
    // evolves) — but the ledger must render and list every rule. Zero
    // stale allows is already guaranteed by the clean self-check: a
    // stale allow IS an R10 violation.
    let bin = env!("CARGO_BIN_EXE_mcs-lint");
    let out = Command::new(bin)
        .arg("--debt")
        .arg(workspace_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("suppression debt (live allows per rule)"),
        "{err}"
    );
    for rule in mcs_lint::RULE_NAMES {
        assert!(err.contains(rule), "missing rule {rule} in ledger:\n{err}");
    }
    assert!(err.contains("total"), "{err}");
}

#[test]
fn json_output_is_machine_readable() {
    let bin = env!("CARGO_BIN_EXE_mcs-lint");
    let out = Command::new(bin)
        .arg("--json")
        .arg(fixture_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    let trimmed = text.trim();
    assert!(trimmed.starts_with('['), "{trimmed}");
    assert!(trimmed.ends_with(']'), "{trimmed}");
    // One object per planted violation, each carrying the full field set.
    for key in [
        "\"rule\"",
        "\"name\"",
        "\"file\"",
        "\"line\"",
        "\"message\"",
    ] {
        assert_eq!(trimmed.matches(key).count(), 10, "missing {key}: {trimmed}");
    }
    for rule in [
        "\"R1\"", "\"R2\"", "\"R3\"", "\"R4\"", "\"R5\"", "\"R6\"", "\"R7\"", "\"R8\"", "\"R9\"",
        "\"R10\"",
    ] {
        assert_eq!(trimmed.matches(rule).count(), 1, "{rule}: {trimmed}");
    }
    // No human-facing summary may pollute the JSON stream.
    assert!(!text.contains("violation(s)"));
}
