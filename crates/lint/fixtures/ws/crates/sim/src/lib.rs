//! Fixture sim crate: hosts the planted R6 violation (`bad_time`)
//! alongside a clean minimal event queue.

#![forbid(unsafe_code)]

pub mod bad_time;

pub struct EventQueue {
    pub pending: Vec<u64>,
}

impl EventQueue {
    pub fn schedule(&mut self, at: u64) {
        self.pending.push(at);
    }
}
