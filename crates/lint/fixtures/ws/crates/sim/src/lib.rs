//! Fixture sim crate: clean. A minimal event queue with no planted
//! violations, so adding the crate to `LIB_CRATES` changes no per-rule
//! diagnostic counts.

#![forbid(unsafe_code)]

pub struct EventQueue {
    pub pending: Vec<u64>,
}

impl EventQueue {
    pub fn schedule(&mut self, at: u64) {
        self.pending.push(at);
    }
}
