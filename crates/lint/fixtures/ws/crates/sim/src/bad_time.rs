//! Planted R6 violation: bare time arithmetic, next to a saturating
//! counter-example and an allowed modular-wheel look-alike.

pub type Time = u64;

/// VIOLATION (R6): a wrapped deadline silently reorders the event queue.
pub fn deadline(now: Time, delay: Time) -> Time {
    now + delay
}

/// Counter-example: clamping to the far future is explicit semantics.
pub fn deadline_clamped(now: Time, delay: Time) -> Time {
    now.saturating_add(delay)
}

/// Suppression look-alike: the same shape under an allow with a reason.
// mcs-lint: allow(time-arith, fixture: wheel slot index wraps by design)
pub fn wheel_slot(now: Time, step: Time) -> Time {
    now + step
}
