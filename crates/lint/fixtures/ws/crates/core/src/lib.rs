//! Planted R5 violation: crate root lacks `#![forbid(unsafe_code)]`.
//! Also hosts the planted R10 violation — a stale allow — and its
//! look-alike: prose that merely mentions allow(panic, ...) without the
//! marker prefix is not an annotation and must register nothing.

/// VIOLATION (R10): this allow once suppressed an `unwrap` that has
/// since been rewritten away; the annotation outlived the hazard.
// mcs-lint: allow(panic, fixture: caller guarantees non-empty)
pub fn noop() {}
