//! Planted R5 violation: crate root lacks `#![forbid(unsafe_code)]`.

pub fn noop() {}
