//! R4 counter-example, transfer-shaped: a mergeable roll-up of chunk
//! transfer activity (sessions, sends, resume savings) whose field-wise
//! u64 sum is the shard-reduce monoid. Its merge-law test vouches for
//! it, so R4 must stay silent — and every field is an integer counter,
//! so R9 has nothing to say about the merge body either.

pub struct TransferStatsAcc {
    pub sessions: u64,
    pub resumed_sessions: u64,
    pub chunks_sent: u64,
    pub chunks_resent: u64,
    pub resume_saved_bytes: u64,
}

impl TransferStatsAcc {
    pub fn merge(&mut self, other: &Self) {
        self.sessions += other.sessions;
        self.resumed_sessions += other.resumed_sessions;
        self.chunks_sent += other.chunks_sent;
        self.chunks_resent += other.chunks_resent;
        self.resume_saved_bytes += other.resume_saved_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::TransferStatsAcc;

    #[test]
    fn transfer_stats_merge_law_shards_add() {
        let mut left = TransferStatsAcc {
            sessions: 2,
            resumed_sessions: 1,
            chunks_sent: 40,
            chunks_resent: 4,
            resume_saved_bytes: 1024,
        };
        left.merge(&TransferStatsAcc {
            sessions: 1,
            resumed_sessions: 0,
            chunks_sent: 10,
            chunks_resent: 1,
            resume_saved_bytes: 512,
        });
        assert_eq!(left.sessions, 3);
        assert_eq!(left.chunks_sent, 50);
        assert_eq!(left.resume_saved_bytes, 1536);
    }
}
