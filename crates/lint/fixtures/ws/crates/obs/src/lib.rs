//! Fixture obs crate: clean. Its merge impl is vouched for by a
//! same-crate merge-law test, so R4 stays quiet here.

#![forbid(unsafe_code)]

pub mod transfer_stats;

pub struct MetricAcc {
    pub total: u64,
}

impl MetricAcc {
    pub fn merge(&mut self, other: &Self) {
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::MetricAcc;

    #[test]
    fn merge_law_metric_acc() {
        let mut a = MetricAcc { total: 1 };
        a.merge(&MetricAcc { total: 2 });
        assert_eq!(a.total, 3);
    }
}
