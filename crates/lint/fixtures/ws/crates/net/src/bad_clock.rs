//! Planted R2 violation: wall-clock read outside crates/bench.

pub fn stamp() -> u64 {
    let _t = std::time::Instant::now();
    0
}
