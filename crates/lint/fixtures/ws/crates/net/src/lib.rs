#![forbid(unsafe_code)]
pub mod bad_clock;
