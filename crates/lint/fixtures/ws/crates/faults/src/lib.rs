//! Clean fixture crate: nothing to flag.
#![forbid(unsafe_code)]

pub fn quiet() {}
