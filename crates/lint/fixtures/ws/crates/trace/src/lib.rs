#![forbid(unsafe_code)]
pub mod allowed;
pub mod bad_cast;
