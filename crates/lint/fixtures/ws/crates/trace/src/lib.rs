#![forbid(unsafe_code)]
pub mod allowed;
