//! Planted R7 violation: a silently narrowing cast, next to a visibly
//! bounded counter-example and an allowed look-alike.

/// VIOLATION (R7): truncates user ids above 2^32.
pub fn shard_of(user_id: u64) -> u32 {
    user_id as u32
}

/// Counter-example: the `% 24` bound is visible at the cast site.
pub fn hour_of(ms: u64) -> u8 {
    ((ms / 3_600_000) % 24) as u8
}

/// Suppression look-alike: bound proven out-of-band, allowed.
// mcs-lint: allow(cast-truncate, fixture: plan caps indices below 2^16)
pub fn slot_of(index: usize) -> u16 {
    index as u16
}
