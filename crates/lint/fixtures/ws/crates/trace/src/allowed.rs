//! Suppression fixtures: each site would violate a rule, but carries an
//! allow-comment or lives in test code, so mcs-lint must stay silent.

use std::collections::HashMap;

pub fn total(m: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    // mcs-lint: allow(map-iter, order-free summation)
    for v in m.values() {
        acc += v;
    }
    acc
}

pub fn checked_head(xs: &[u32]) -> u32 {
    // mcs-lint: allow(panic, fixture: caller guarantees non-empty)
    xs.first().copied().unwrap()
}

pub fn order_free_terminal(m: &HashMap<u64, u64>) -> u64 {
    m.values().copied().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn unwrap_and_map_iter_in_tests_are_fine() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        let ks: Vec<u64> = m.keys().copied().collect();
        assert_eq!(*ks.first().unwrap(), 1);
    }
}
