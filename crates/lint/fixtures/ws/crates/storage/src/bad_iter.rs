//! Planted R1 violation: unsorted HashMap key iteration escapes.

use std::collections::HashMap;

pub fn chunk_ids(index: &HashMap<u64, u64>) -> Vec<u64> {
    index.keys().copied().collect()
}
