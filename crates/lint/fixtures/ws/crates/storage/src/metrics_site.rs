//! Planted R8 violation: `fixture.unlisted` is registered but absent
//! from METRICS.md, next to a listed counter-example and an allowed
//! dynamic-name look-alike.

/// A stand-in for the obs registry (the fixture tree has no deps).
pub struct Registry;

impl Registry {
    pub fn counter(&mut self, _name: &str) -> usize {
        0
    }
}

/// VIOLATION (R8): not in the fixture manifest.
pub fn wire_unlisted(reg: &mut Registry) -> usize {
    reg.counter("fixture.unlisted")
}

/// Counter-example: `fixture.listed` has a manifest row.
pub fn wire_listed(reg: &mut Registry) -> usize {
    reg.counter("fixture.listed")
}

/// A formatted family name; covered by the `fixture.family.*` row.
pub fn family_name(kind: &str) -> String {
    format!("fixture.family.{kind}")
}

/// Suppression look-alike: runtime-computed name under an allow.
// mcs-lint: allow(metric-manifest, fixture: caller passes family_name output)
pub fn wire_dynamic(reg: &mut Registry, name: &str) -> usize {
    reg.counter(name)
}
