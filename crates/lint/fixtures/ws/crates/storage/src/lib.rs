#![forbid(unsafe_code)]
pub mod bad_iter;
pub mod metrics_site;
