#![forbid(unsafe_code)]
pub mod bad_panic;
