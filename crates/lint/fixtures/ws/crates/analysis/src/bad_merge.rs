//! Planted R4 violation: `ShardAcc::merge` has no merge-law test.

pub struct ShardAcc {
    pub total: u64,
}

impl ShardAcc {
    pub fn merge(&mut self, other: &Self) {
        self.total += other.total;
    }
}
