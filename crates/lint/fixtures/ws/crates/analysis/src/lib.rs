#![forbid(unsafe_code)]
pub mod bad_float_merge;
pub mod bad_merge;
pub mod covered_merge;
