#![forbid(unsafe_code)]
pub mod bad_merge;
pub mod covered_merge;
