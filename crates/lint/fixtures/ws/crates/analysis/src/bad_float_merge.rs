//! Planted R9 violation: float accumulation inside a shard `merge`,
//! next to an integer counter-example and an allowed exact-sum
//! look-alike. All three types share one merge-law test so R4 stays
//! quiet and R9's verdict is isolated.

/// VIOLATION (R9) host: f64 sums are merge-order-sensitive.
pub struct FloatAcc {
    pub jitter_f: f64,
}

impl FloatAcc {
    pub fn merge(&mut self, other: &Self) {
        self.jitter_f += other.jitter_f;
    }
}

/// Counter-example: integer accumulation is exact in any merge order.
pub struct SumAcc {
    pub merged_rows: u64,
}

impl SumAcc {
    pub fn merge(&mut self, other: &Self) {
        self.merged_rows += other.merged_rows;
    }
}

/// Suppression look-alike: exactness argued in the allow.
pub struct ExactAcc {
    pub exact_units: f64,
}

impl ExactAcc {
    pub fn merge(&mut self, other: &Self) {
        // mcs-lint: allow(float-merge, fixture: integer-valued f64 below 2^53 so sums are exact)
        self.exact_units += other.exact_units;
    }
}

#[cfg(test)]
mod tests {
    use super::{ExactAcc, FloatAcc, SumAcc};

    #[test]
    fn fixture_merge_law_shards_add() {
        let mut f = FloatAcc { jitter_f: 1.5 };
        f.merge(&FloatAcc { jitter_f: 2.5 });
        let mut s = SumAcc { merged_rows: 2 };
        s.merge(&SumAcc { merged_rows: 3 });
        let mut e = ExactAcc { exact_units: 4.0 };
        e.merge(&ExactAcc { exact_units: 5.0 });
        assert_eq!((f.jitter_f, s.merged_rows, e.exact_units), (4.0, 5, 9.0));
    }
}
