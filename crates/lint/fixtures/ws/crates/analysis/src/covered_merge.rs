//! R4 counter-example: `CoveredAcc::merge` HAS a merge-law test and must
//! not fire. Mirrors the ingest-report shard reduce in the real workspace.

pub struct CoveredAcc {
    pub records: u64,
}

impl CoveredAcc {
    pub fn merge(&mut self, other: Self) {
        self.records += other.records;
    }
}

#[cfg(test)]
mod tests {
    use super::CoveredAcc;

    #[test]
    fn covered_acc_merge_law_shards_add() {
        let mut left = CoveredAcc { records: 2 };
        left.merge(CoveredAcc { records: 3 });
        assert_eq!(left.records, 5);
    }
}
