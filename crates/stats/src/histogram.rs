//! Binned histograms.
//!
//! Figure 3 of the paper is a histogram of inter-file-operation times on a
//! *logarithmically scaled* axis; [`LogHistogram`] reproduces that binning.
//! [`Histogram`] is the plain linear-bin variant used elsewhere.

use serde::{Deserialize, Serialize};

/// Fixed-width linear-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Floating point can land exactly on the upper edge.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations pushed (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// `(bin center, density)` pairs where density integrates to the
    /// in-range fraction of the sample.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let n = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c as f64 / (n * w)))
            .collect()
    }
}

/// Histogram with logarithmically spaced bin edges over `[lo, hi)`.
///
/// This is the natural binning for quantities spanning many decades, like
/// the paper's inter-operation times (10 ms … days, Fig. 3) and file sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    log_lo: f64,
    log_hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` log-spaced bins over `[lo, hi)`.
    /// Both bounds must be positive.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo > 0.0 && hi > lo, "log histogram needs 0 < lo < hi");
        Self {
            log_lo: lo.ln(),
            log_hi: hi.ln(),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one observation; non-positive values count as underflow.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x <= 0.0 || x.ln() < self.log_lo {
            self.underflow += 1;
            return;
        }
        let lx = x.ln();
        if lx >= self.log_hi {
            self.overflow += 1;
            return;
        }
        let w = (self.log_hi - self.log_lo) / self.counts.len() as f64;
        let idx = (((lx - self.log_lo) / w) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations pushed (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below `lo` (or non-positive).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Geometric center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.log_hi - self.log_lo) / self.counts.len() as f64;
        (self.log_lo + (i as f64 + 0.5) * w).exp()
    }

    /// Lower edge of bin `i` (edge `bins()` is the upper bound).
    pub fn bin_edge(&self, i: usize) -> f64 {
        let w = (self.log_hi - self.log_lo) / self.counts.len() as f64;
        (self.log_lo + i as f64 * w).exp()
    }

    /// `(bin center, fraction of in-range mass)` pairs.
    pub fn mass(&self) -> Vec<(f64, f64)> {
        let in_range: u64 = self.counts.iter().sum();
        let n = in_range.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c as f64 / n))
            .collect()
    }

    /// Index of the deepest local minimum ("valley") of the smoothed count
    /// profile, restricted to bins strictly between the two highest local
    /// maxima.
    ///
    /// Section 3.1.1 of the paper identifies the session threshold τ as the
    /// valley of exactly such a histogram (≈1 hour, between the ~10 s
    /// within-session mode and the ~1 day between-session mode). Returns
    /// `None` when the profile has no interior valley (e.g. unimodal data).
    pub fn valley_bin(&self) -> Option<usize> {
        let smoothed = smooth3(&self.counts);
        // Local maxima.
        let mut maxima: Vec<(usize, f64)> = Vec::new();
        for i in 1..smoothed.len().saturating_sub(1) {
            if smoothed[i] >= smoothed[i - 1] && smoothed[i] >= smoothed[i + 1] && smoothed[i] > 0.0
            {
                maxima.push((i, smoothed[i]));
            }
        }
        if maxima.len() < 2 {
            return None;
        }
        // Primary mode: the global maximum.
        let &(p1, h1) = maxima
            .iter()
            .max_by(|a, b| f64::total_cmp(&a.1, &b.1))
            // mcs-lint: allow(panic, maxima.len() >= 2 checked above)
            .expect("non-empty");
        // Secondary mode: the tallest other local maximum separated from
        // the primary by a *genuine dip* — the minimum between them must
        // fall below `DIP` of the lower peak. Without this, jagged bins
        // inside one mode masquerade as bimodality.
        const DIP: f64 = 0.5;
        let mut best: Option<(usize, f64, usize)> = None; // (p2, h2, valley)
        for &(p2, h2) in &maxima {
            if p2.abs_diff(p1) <= 2 {
                continue;
            }
            let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
            let min_val = (lo + 1..hi)
                .map(|i| smoothed[i])
                .fold(f64::INFINITY, f64::min);
            // The minimum is often a flat region (an empty gap between the
            // modes); take its middle, as a reader of Fig. 3 would.
            let ties: Vec<usize> = (lo + 1..hi)
                .filter(|&i| smoothed[i] <= min_val + 1e-12)
                .collect();
            let valley = ties[ties.len() / 2];
            if smoothed[valley] < DIP * h1.min(h2) {
                match best {
                    Some((_, bh, _)) if bh >= h2 => {}
                    _ => best = Some((p2, h2, valley)),
                }
            }
        }
        best.map(|(_, _, valley)| valley)
    }

    /// Value (bin center) of the valley found by [`Self::valley_bin`].
    pub fn valley_value(&self) -> Option<f64> {
        self.valley_bin().map(|i| self.bin_center(i))
    }
}

/// Simple 3-point moving average used before valley detection so single
/// noisy bins do not masquerade as modes.
fn smooth3(counts: &[u64]) -> Vec<f64> {
    let n = counts.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(n - 1);
            let span = (hi - lo + 1) as f64;
            counts[lo..=hi].iter().map(|&c| c as f64).sum::<f64>() / span
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn linear_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-1.0);
        h.push(2.0);
        h.push(1.0); // exactly hi is overflow
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        for i in 0..1000 {
            h.push(i as f64 / 1000.0);
        }
        let w = 1.0 / 20.0;
        let integral: f64 = h.density().iter().map(|&(_, d)| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_binning_decades() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.push(2.0); // decade 1
        h.push(30.0); // decade 2
        h.push(300.0); // decade 3
        assert_eq!(h.counts(), &[1, 1, 1]);
    }

    #[test]
    fn log_histogram_rejects_nonpositive_as_underflow() {
        let mut h = LogHistogram::new(1.0, 100.0, 4);
        h.push(0.0);
        h.push(-5.0);
        assert_eq!(h.underflow(), 2);
    }

    #[test]
    fn log_bin_edges_monotone() {
        let h = LogHistogram::new(0.01, 1e6, 40);
        for i in 0..40 {
            assert!(h.bin_edge(i) < h.bin_edge(i + 1));
            let c = h.bin_center(i);
            assert!(h.bin_edge(i) < c && c < h.bin_edge(i + 1));
        }
    }

    #[test]
    fn valley_detection_bimodal() {
        // Two modes (around 10 and 10_000) with a gap between.
        let mut h = LogHistogram::new(1.0, 1e6, 30);
        for _ in 0..1000 {
            h.push(10.0);
            h.push(12.0);
            h.push(8.0);
            h.push(10_000.0);
            h.push(12_000.0);
            h.push(9_000.0);
        }
        // A thin bridge so interior bins exist.
        for _ in 0..5 {
            h.push(300.0);
        }
        let v = h.valley_value().expect("bimodal data must have a valley");
        assert!(v > 20.0 && v < 9_000.0, "valley {v} out of range");
    }

    #[test]
    fn valley_detection_unimodal_is_none() {
        let mut h = LogHistogram::new(1.0, 1e4, 20);
        for i in 0..1000 {
            h.push(50.0 + (i % 10) as f64);
        }
        assert_eq!(h.valley_bin(), None);
    }

    proptest! {
        #[test]
        fn prop_total_conserved(xs in proptest::collection::vec(-1e3f64..1e3, 0..200)) {
            let mut h = Histogram::new(-100.0, 100.0, 16);
            for &x in &xs { h.push(x); }
            let binned: u64 = h.counts().iter().sum();
            prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        }

        #[test]
        fn prop_log_total_conserved(xs in proptest::collection::vec(1e-3f64..1e6, 0..200)) {
            let mut h = LogHistogram::new(0.01, 1e5, 25);
            for &x in &xs { h.push(x); }
            let binned: u64 = h.counts().iter().sum();
            prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        }
    }
}
