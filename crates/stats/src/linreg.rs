//! Ordinary least-squares linear regression.
//!
//! Used for the Fig. 5b observation that store-only session volume grows
//! linearly in the number of stored files with slope ≈ 1.5 MB (the average
//! file size), and as the inner step of the stretched-exponential fit.

use serde::{Deserialize, Serialize};

/// Result of a simple `y = slope·x + intercept` least-squares fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination R² ∈ [0, 1] (0 when y is constant and
    /// perfectly predicted, by convention 1 in that case).
    pub r_squared: f64,
    /// Number of points.
    pub n: usize,
}

impl LinearFit {
    /// Fits `ys ~ xs`. Panics on length mismatch or fewer than 2 points.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        assert!(xs.len() >= 2, "need at least two points");
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let dx = x - mx;
            let dy = y - my;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let intercept = my - slope * mx;
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            (1.0 - ss_res / syy).clamp(0.0, 1.0)
        };
        Self {
            slope,
            intercept,
            r_squared,
            n: xs.len(),
        }
    }

    /// Fits a line through the origin (`y = slope·x`), appropriate when the
    /// model demands `f(0) = 0` — e.g. a session with zero files transfers
    /// zero bytes.
    pub fn fit_through_origin(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        assert!(!xs.is_empty(), "need at least one point");
        let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| x * y).sum();
        let sxx: f64 = xs.iter().map(|&x| x * x).sum();
        let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let syy: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = y - slope * x;
                e * e
            })
            .sum();
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            (1.0 - ss_res / syy).clamp(0.0, 1.0)
        };
        Self {
            slope,
            intercept: 0.0,
            r_squared,
            n: xs.len(),
        }
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 2.0).collect();
        let f = LinearFit::fit(&xs, &ys);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 2.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let f = LinearFit::fit(&xs, &ys);
        assert!(f.r_squared > 0.98 && f.r_squared < 1.0);
        assert!((f.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn through_origin() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [1.5, 3.0, 4.5]; // slope exactly 1.5 (paper's MB/file)
        let f = LinearFit::fit_through_origin(&xs, &ys);
        assert!((f.slope - 1.5).abs() < 1e-12);
        assert_eq!(f.intercept, 0.0);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_y() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let f = LinearFit::fit(&xs, &ys);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn predict_works() {
        let f = LinearFit {
            slope: 2.0,
            intercept: 1.0,
            r_squared: 1.0,
            n: 2,
        };
        assert_eq!(f.predict(3.0), 7.0);
    }

    proptest! {
        #[test]
        fn prop_recovers_any_exact_line(
            slope in -100.0f64..100.0,
            intercept in -100.0f64..100.0,
        ) {
            let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
            let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
            let f = LinearFit::fit(&xs, &ys);
            prop_assert!((f.slope - slope).abs() < 1e-6);
            prop_assert!((f.intercept - intercept).abs() < 1e-6);
        }

        #[test]
        fn prop_r2_in_unit_interval(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..50),
            ys in proptest::collection::vec(-1e3f64..1e3, 2..50),
        ) {
            let n = xs.len().min(ys.len());
            let f = LinearFit::fit(&xs[..n], &ys[..n]);
            prop_assert!((0.0..=1.0).contains(&f.r_squared));
        }
    }
}
