//! Special functions used by the distributions and goodness-of-fit tests.
//!
//! Implemented from standard references (Abramowitz & Stegun; Numerical
//! Recipes) with accuracy well beyond what the measurement-style analyses in
//! this workspace require (~1e-10 relative error in the tested ranges).

/// Error function `erf(x)`, computed via the regularized lower incomplete
/// gamma function: `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_lower_gamma(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise, following Numerical Recipes §6.2.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    1.0 - reg_lower_gamma(a, x)
}

fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Survival function of the χ² distribution with `dof` degrees of freedom,
/// i.e. `Pr[X ≥ x]`. This is the p-value of a χ² goodness-of-fit statistic.
pub fn chi2_sf(x: f64, dof: usize) -> f64 {
    assert!(dof > 0, "chi2_sf requires at least one degree of freedom");
    if x <= 0.0 {
        return 1.0;
    }
    reg_upper_gamma(dof as f64 / 2.0, x / 2.0)
}

/// Inverse of the standard normal CDF (the probit function), computed with
/// the Acklam rational approximation refined by one Halley step. Accurate to
/// ~1e-12 over (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0, 1), got {p}"
    );
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the true CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_715, 1e-10);
        close(erf(2.0), 0.995_322_265_018_953, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-10);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.1;
            close(erf(x), -erf(-x), 1e-12);
            assert!(erf(x).abs() <= 1.0);
        }
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-9);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                close(reg_lower_gamma(a, x) + reg_upper_gamma(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn chi2_sf_known_values() {
        // Standard table values.
        close(chi2_sf(3.841, 1), 0.05, 2e-4);
        close(chi2_sf(5.991, 2), 0.05, 2e-4);
        close(chi2_sf(18.307, 10), 0.05, 2e-4);
    }

    #[test]
    fn chi2_sf_monotone_in_x() {
        let mut prev = 1.0;
        for i in 1..100 {
            let v = chi2_sf(i as f64 * 0.5, 5);
            assert!(v <= prev + 1e-15);
            prev = v;
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        for &x in &[0.5, 1.0, 1.96, 3.0] {
            close(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12);
        }
        close(normal_cdf(1.96), 0.975, 1e-4);
    }

    #[test]
    fn normal_quantile_round_trip() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            close(normal_cdf(normal_quantile(p)), p, 1e-10);
        }
        // Deep tails.
        for &p in &[1e-8, 1e-5, 1.0 - 1e-5, 1.0 - 1e-8] {
            close(normal_cdf(normal_quantile(p)), p, 1e-9);
        }
    }
}
