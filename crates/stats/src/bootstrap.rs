//! Percentile-bootstrap confidence intervals.
//!
//! Measurement papers quote medians and percentiles of skewed quantities
//! (chunk times, RTTs, session sizes); bootstrap CIs say how much of a
//! reported gap is sampling noise. Deterministic: resampling uses a seeded
//! stream like everything else in this workspace.

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::rng::stream_rng;

/// A bootstrap confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
    /// Bootstrap resamples drawn.
    pub resamples: usize,
}

impl BootstrapCi {
    /// Whether the interval excludes `value` (a quick significance check:
    /// e.g. "is the Android/iOS median ratio CI entirely above 1?").
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile bootstrap for an arbitrary statistic of one sample.
///
/// Panics on an empty sample, a silly confidence level, or zero resamples.
pub fn bootstrap_ci<F>(
    sample: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!sample.is_empty(), "bootstrap of empty sample");
    assert!(resamples >= 10, "need at least 10 resamples");
    assert!((0.5..1.0).contains(&level), "level must be in [0.5, 1)");
    let point = statistic(sample);
    let mut rng = stream_rng(seed, 0xB005);
    let n = sample.len();
    let mut stats: Vec<f64> = Vec::with_capacity(resamples);
    let mut buf = vec![0.0f64; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = sample[rng.random_range(0..n)];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::descriptive::quantile_sorted(&stats, alpha);
    let hi = crate::descriptive::quantile_sorted(&stats, 1.0 - alpha);
    BootstrapCi {
        point,
        lo,
        hi,
        level,
        resamples,
    }
}

/// Bootstrap CI for the median — the common case.
pub fn median_ci(sample: &[f64], resamples: usize, level: f64, seed: u64) -> BootstrapCi {
    bootstrap_ci(sample, crate::descriptive::median, resamples, level, seed)
}

/// Bootstrap CI for the *ratio of medians* of two independent samples
/// (Fig. 12's Android/iOS gap with uncertainty attached).
pub fn median_ratio_ci(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> BootstrapCi {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    assert!(resamples >= 10, "need at least 10 resamples");
    assert!((0.5..1.0).contains(&level), "level must be in [0.5, 1)");
    let point = crate::descriptive::median(a) / crate::descriptive::median(b);
    let mut rng = stream_rng(seed, 0xB006);
    let mut stats = Vec::with_capacity(resamples);
    let mut buf_a = vec![0.0f64; a.len()];
    let mut buf_b = vec![0.0f64; b.len()];
    for _ in 0..resamples {
        for slot in buf_a.iter_mut() {
            *slot = a[rng.random_range(0..a.len())];
        }
        for slot in buf_b.iter_mut() {
            *slot = b[rng.random_range(0..b.len())];
        }
        stats.push(crate::descriptive::median(&buf_a) / crate::descriptive::median(&buf_b));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    BootstrapCi {
        point,
        lo: crate::descriptive::quantile_sorted(&stats, alpha),
        hi: crate::descriptive::quantile_sorted(&stats, 1.0 - alpha),
        level,
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::LogNormal;

    fn lognormal_sample(n: usize, median: f64, sigma: f64, seed: u64) -> Vec<f64> {
        let d = LogNormal::from_median(median, sigma);
        let mut rng = stream_rng(seed, 1);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn median_ci_covers_truth() {
        let sample = lognormal_sample(2000, 100.0, 0.8, 3);
        let ci = median_ci(&sample, 500, 0.95, 7);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(
            ci.lo < 100.0 && 100.0 < ci.hi,
            "true median outside CI: [{}, {}]",
            ci.lo,
            ci.hi
        );
        // CI is tight for n=2000.
        assert!(ci.width() / ci.point < 0.2, "width {}", ci.width());
    }

    #[test]
    fn wider_level_wider_interval() {
        let sample = lognormal_sample(500, 10.0, 1.0, 4);
        let narrow = median_ci(&sample, 400, 0.80, 9);
        let wide = median_ci(&sample, 400, 0.99, 9);
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn ratio_ci_detects_real_gap() {
        // Medians 4 and 1.5 → true ratio ≈ 2.67; the CI must exclude 1.
        let a = lognormal_sample(1500, 4.0, 0.8, 5);
        let b = lognormal_sample(1500, 1.5, 0.8, 6);
        let ci = median_ratio_ci(&a, &b, 400, 0.95, 11);
        assert!((ci.point - 2.67).abs() < 0.5, "point {}", ci.point);
        assert!(ci.excludes(1.0), "CI [{}, {}] must exclude 1", ci.lo, ci.hi);
        assert!(!ci.excludes(ci.point));
    }

    #[test]
    fn ratio_ci_covers_one_for_identical_populations() {
        let a = lognormal_sample(800, 2.0, 0.7, 13);
        let b = lognormal_sample(800, 2.0, 0.7, 14);
        let ci = median_ratio_ci(&a, &b, 400, 0.95, 15);
        assert!(
            !ci.excludes(1.0),
            "CI [{}, {}] should cover 1",
            ci.lo,
            ci.hi
        );
    }

    #[test]
    fn deterministic() {
        let sample = lognormal_sample(300, 5.0, 0.6, 20);
        let a = median_ci(&sample, 200, 0.95, 21);
        let b = median_ci(&sample, 200, 0.95, 21);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = median_ci(&[], 100, 0.95, 1);
    }
}
