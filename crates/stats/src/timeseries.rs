//! Hourly time series and diurnal profiles.
//!
//! Figure 1 of the paper bins one week of requests into one-hour frames and
//! plots (a) transferred volume and (b) file counts per hour, showing a
//! diurnal pattern with a surge around 11 PM. [`HourlySeries`] is that
//! binning; [`DiurnalProfile`] is the hour-of-day aggregate used both for
//! analysis and as the intensity profile of the synthetic generator.

use serde::{Deserialize, Serialize};

/// Seconds per hour.
pub const HOUR_SECS: u64 = 3600;
/// Seconds per day.
pub const DAY_SECS: u64 = 86_400;

/// A quantity accumulated into one-hour bins over a fixed horizon starting
/// at time zero (trace-relative seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlySeries {
    bins: Vec<f64>,
}

impl HourlySeries {
    /// Creates a series covering `horizon_secs` seconds (rounded up to
    /// whole hours).
    pub fn new(horizon_secs: u64) -> Self {
        let hours = horizon_secs.div_ceil(HOUR_SECS).max(1);
        Self {
            bins: vec![0.0; hours as usize],
        }
    }

    /// Adds `amount` at trace-relative time `t_secs`; amounts beyond the
    /// horizon are dropped (the generator clamps sessions to the horizon,
    /// so in practice this only trims the final in-flight transfer).
    pub fn add(&mut self, t_secs: u64, amount: f64) {
        let idx = (t_secs / HOUR_SECS) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += amount;
        }
    }

    /// Adds another series bin-wise. Both series must cover the same
    /// horizon. The pipeline's amounts are integer-valued (byte and file
    /// counts well below 2⁵³), so per-bin sums are exact and merging
    /// per-shard series in any grouping reproduces the sequential
    /// accumulation bit for bit.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "cannot merge hourly series with different horizons"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            // mcs-lint: allow(float-merge, bins hold integer-valued f64 below 2^53 so bin-wise sums are exact)
            *a += b;
        }
    }

    /// Per-hour totals.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Number of hourly bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when the horizon is zero hours (cannot happen via `new`).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Sum over all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Largest bin value and its index.
    pub fn peak(&self) -> (usize, f64) {
        self.bins
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| f64::total_cmp(&a.1, &b.1))
            .unwrap_or((0, 0.0))
    }

    /// Peak-to-mean ratio — the over-provisioning factor §2.4 alludes to
    /// ("server capacity is often designed to bear the peak load").
    pub fn peak_to_mean(&self) -> f64 {
        let mean = self.total() / self.bins.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            self.peak().1 / mean
        }
    }

    /// Autocorrelation of the hourly series at `lag` bins. A strong
    /// diurnal pattern shows up as a high value at lag 24 (Fig. 1's
    /// day-over-day repetition). Returns `NaN` when the series is too
    /// short or constant.
    pub fn autocorrelation(&self, lag: usize) -> f64 {
        let n = self.bins.len();
        if lag == 0 || lag >= n {
            return f64::NAN;
        }
        let mean = self.total() / n as f64;
        let var: f64 = self.bins.iter().map(|&v| (v - mean) * (v - mean)).sum();
        if var == 0.0 {
            return f64::NAN;
        }
        let cov: f64 = (0..n - lag)
            .map(|i| (self.bins[i] - mean) * (self.bins[i + lag] - mean))
            .sum();
        cov / var
    }

    /// Collapses the series into an hour-of-day profile (mean across days).
    pub fn diurnal(&self) -> DiurnalProfile {
        let mut sums = [0.0f64; 24];
        let mut counts = [0u32; 24];
        for (i, &v) in self.bins.iter().enumerate() {
            let h = i % 24;
            sums[h] += v;
            counts[h] += 1;
        }
        let mut hours = [0.0f64; 24];
        for h in 0..24 {
            if counts[h] > 0 {
                hours[h] = sums[h] / counts[h] as f64;
            }
        }
        DiurnalProfile { hours }
    }
}

/// Mean quantity per hour-of-day (0 = midnight .. 23 = 11 PM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Mean value per hour of day.
    pub hours: [f64; 24],
}

impl DiurnalProfile {
    /// Hour of day with the highest mean load.
    pub fn peak_hour(&self) -> usize {
        self.hours
            .iter()
            .enumerate()
            .max_by(|a, b| f64::total_cmp(a.1, b.1))
            .map(|(h, _)| h)
            // mcs-lint: allow(panic, hours is a fixed 24-slot array)
            .expect("24 hours")
    }

    /// Hour of day with the lowest mean load.
    pub fn trough_hour(&self) -> usize {
        self.hours
            .iter()
            .enumerate()
            .min_by(|a, b| f64::total_cmp(a.1, b.1))
            .map(|(h, _)| h)
            // mcs-lint: allow(panic, hours is a fixed 24-slot array)
            .expect("24 hours")
    }

    /// Normalises so the profile sums to 1 (an intensity distribution the
    /// workload generator can sample hours from). All-zero profiles come
    /// back uniform.
    pub fn normalized(&self) -> [f64; 24] {
        let total: f64 = self.hours.iter().sum();
        if total <= 0.0 {
            return [1.0 / 24.0; 24];
        }
        let mut out = [0.0; 24];
        for (o, &h) in out.iter_mut().zip(self.hours.iter()) {
            *o = h / total;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_binning() {
        let mut s = HourlySeries::new(3 * HOUR_SECS);
        s.add(0, 1.0);
        s.add(3599, 2.0);
        s.add(3600, 4.0);
        s.add(2 * HOUR_SECS + 1, 8.0);
        assert_eq!(s.bins(), &[3.0, 4.0, 8.0]);
        assert_eq!(s.total(), 15.0);
    }

    #[test]
    fn merge_equals_single_series_accumulation() {
        let mut whole = HourlySeries::new(3 * HOUR_SECS);
        let mut left = HourlySeries::new(3 * HOUR_SECS);
        let mut right = HourlySeries::new(3 * HOUR_SECS);
        for (i, &(t, v)) in [(0, 1.0), (10, 2.0), (3700, 4.0), (7300, 8.0)]
            .iter()
            .enumerate()
        {
            whole.add(t, v);
            if i % 2 == 0 {
                left.add(t, v);
            } else {
                right.add(t, v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    #[should_panic(expected = "different horizons")]
    fn merge_rejects_mismatched_horizons() {
        let mut a = HourlySeries::new(HOUR_SECS);
        a.merge(&HourlySeries::new(2 * HOUR_SECS));
    }

    #[test]
    fn out_of_horizon_dropped() {
        let mut s = HourlySeries::new(HOUR_SECS);
        s.add(HOUR_SECS + 5, 1.0);
        assert_eq!(s.total(), 0.0);
    }

    #[test]
    fn horizon_rounds_up() {
        let s = HourlySeries::new(HOUR_SECS + 1);
        assert_eq!(s.len(), 2);
        assert_eq!(HourlySeries::new(0).len(), 1);
    }

    #[test]
    fn peak_and_ratio() {
        let mut s = HourlySeries::new(4 * HOUR_SECS);
        s.add(0, 1.0);
        s.add(HOUR_SECS, 7.0);
        s.add(2 * HOUR_SECS, 1.0);
        s.add(3 * HOUR_SECS, 1.0);
        assert_eq!(s.peak(), (1, 7.0));
        assert!((s.peak_to_mean() - 7.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_detects_daily_period() {
        // Strong sinusoid with a 24 h period over a week.
        let mut s = HourlySeries::new(7 * DAY_SECS);
        for h in 0..(7 * 24) {
            let v = 10.0 + 8.0 * (2.0 * std::f64::consts::PI * (h % 24) as f64 / 24.0).sin();
            s.add(h as u64 * HOUR_SECS, v);
        }
        // The standard biased ACF estimator tops out at (n-lag)/n ≈ 0.86
        // for a perfect 24 h period over one week.
        assert!(s.autocorrelation(24) > 0.8, "{}", s.autocorrelation(24));
        // Half-period is anti-correlated.
        assert!(s.autocorrelation(12) < 0.0);
        // Degenerate cases.
        assert!(s.autocorrelation(0).is_nan());
        assert!(s.autocorrelation(10_000).is_nan());
        let flat = HourlySeries::new(2 * DAY_SECS);
        assert!(flat.autocorrelation(24).is_nan());
    }

    #[test]
    fn diurnal_collapse_over_days() {
        // Two days; hour 23 gets load 10 both days, others zero.
        let mut s = HourlySeries::new(2 * DAY_SECS);
        s.add(23 * HOUR_SECS, 10.0);
        s.add(DAY_SECS + 23 * HOUR_SECS, 10.0);
        let d = s.diurnal();
        assert_eq!(d.peak_hour(), 23);
        assert!((d.hours[23] - 10.0).abs() < 1e-12);
        assert_eq!(d.hours[0], 0.0);
    }

    #[test]
    fn diurnal_normalized_sums_to_one() {
        let mut s = HourlySeries::new(DAY_SECS);
        for h in 0..24u64 {
            s.add(h * HOUR_SECS, (h + 1) as f64);
        }
        let norm = s.diurnal().normalized();
        let total: f64 = norm.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_profile_normalizes_uniform() {
        let s = HourlySeries::new(DAY_SECS);
        let norm = s.diurnal().normalized();
        assert!(norm.iter().all(|&p| (p - 1.0 / 24.0).abs() < 1e-15));
    }
}
