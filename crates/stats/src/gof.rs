//! Goodness-of-fit machinery: χ² tests (the paper's Table 2 fits "pass the
//! test when considering the significance level of P₀ = 5 %"), the
//! one-sample Kolmogorov–Smirnov statistic, and R² against an arbitrary
//! model.

use serde::{Deserialize, Serialize};

use crate::special::chi2_sf;

/// Result of a χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chi2Test {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub dof: usize,
    /// p-value `Pr[χ²_dof ≥ statistic]`.
    pub p_value: f64,
}

impl Chi2Test {
    /// Whether the fit is accepted at significance level `alpha`
    /// (i.e. we fail to reject the null that data follow the model).
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// χ² test of observed bin counts against expected bin *probabilities*.
///
/// `fitted_params` is subtracted from the degrees of freedom along with the
/// usual 1 (for the total), matching the textbook procedure for composite
/// hypotheses. Bins with expected count below `min_expected` (commonly 5)
/// are pooled with their right neighbour first.
///
/// Returns `None` when fewer than 2 usable bins remain or dof would be 0.
pub fn chi2_binned(
    observed: &[u64],
    expected_probs: &[f64],
    fitted_params: usize,
    min_expected: f64,
) -> Option<Chi2Test> {
    assert_eq!(
        observed.len(),
        expected_probs.len(),
        "observed/expected length mismatch"
    );
    let n: u64 = observed.iter().sum();
    if n == 0 {
        return None;
    }
    let nf = n as f64;

    // Pool adjacent bins so every expected count ≥ min_expected.
    let mut pooled: Vec<(f64, f64)> = Vec::new(); // (obs, exp)
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        acc_o += o as f64;
        acc_e += p * nf;
        if acc_e >= min_expected {
            pooled.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_o;
            last.1 += acc_e;
        } else {
            pooled.push((acc_o, acc_e));
        }
    }
    if pooled.len() < 2 {
        return None;
    }
    let dof = pooled.len().checked_sub(1 + fitted_params)?;
    if dof == 0 {
        return None;
    }

    let statistic: f64 = pooled
        .iter()
        .filter(|&&(_, e)| e > 0.0)
        .map(|&(o, e)| (o - e) * (o - e) / e)
        .sum();
    Some(Chi2Test {
        statistic,
        dof,
        p_value: chi2_sf(statistic, dof),
    })
}

/// One-sample Kolmogorov–Smirnov statistic of `sample` against a model CDF.
///
/// Returns `sup_x |F_n(x) − F(x)|` evaluated at the sample points (where the
/// supremum of the step-function difference is attained).
pub fn ks_statistic(sample: &[f64], model_cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!sample.is_empty(), "KS of empty sample");
    let mut xs = sample.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = model_cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// R² of model predictions against observations.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(observed.len(), predicted.len(), "length mismatch");
    assert!(!observed.is_empty(), "empty input");
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    let ss_tot: f64 = observed.iter().map(|&y| (y - mean) * (y - mean)).sum();
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(&y, &p)| (y - p) * (y - p))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn chi2_accepts_true_model() {
        // 10 equiprobable bins, uniform draws.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut obs = [0u64; 10];
        for _ in 0..10_000 {
            let b = rng.random_range(0..10usize);
            obs[b] += 1;
        }
        let probs = [0.1f64; 10];
        let t = chi2_binned(&obs, &probs, 0, 5.0).unwrap();
        assert!(t.passes(0.05), "stat {} p {}", t.statistic, t.p_value);
        assert_eq!(t.dof, 9);
    }

    #[test]
    fn chi2_rejects_wrong_model() {
        // Data heavily skewed into bin 0, tested against uniform.
        let obs = [5000u64, 500, 500, 500, 500, 500, 500, 500, 500, 1000];
        let probs = [0.1f64; 10];
        let t = chi2_binned(&obs, &probs, 0, 5.0).unwrap();
        assert!(!t.passes(0.05));
        assert!(t.p_value < 1e-10);
    }

    #[test]
    fn chi2_pools_small_bins() {
        // Expected probabilities concentrate in 2 bins; tail bins pool.
        let obs = [500u64, 480, 3, 2, 1, 0, 0];
        let probs = [0.5, 0.49, 0.003, 0.003, 0.002, 0.001, 0.001];
        let t = chi2_binned(&obs, &probs, 0, 5.0).unwrap();
        assert!(t.dof < 6, "pooling should reduce dof, got {}", t.dof);
    }

    #[test]
    fn chi2_empty_and_degenerate() {
        assert!(chi2_binned(&[0, 0], &[0.5, 0.5], 0, 5.0).is_none());
        // One pooled bin only.
        assert!(chi2_binned(&[10], &[1.0], 0, 5.0).is_none());
        // dof exhausted by fitted params.
        assert!(chi2_binned(&[50, 50], &[0.5, 0.5], 1, 5.0).is_none());
    }

    #[test]
    fn ks_exact_uniform() {
        // Sample at exact uniform quantiles: KS = 1/(2n) ideally ~ small.
        let n = 1000;
        let sample: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
        assert!(d < 1.0 / n as f64 + 1e-12, "d = {d}");
    }

    #[test]
    fn ks_detects_wrong_model() {
        let sample: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        // Model says everything is below 0.5.
        let d = ks_statistic(&sample, |x| (2.0 * x).clamp(0.0, 1.0));
        assert!(d > 0.4, "d = {d}");
    }

    #[test]
    fn ks_exponential_sample() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sample: Vec<f64> = (0..5000)
            .map(|_| -2.0 * rng.random::<f64>().max(1e-15).ln())
            .collect();
        let d = ks_statistic(&sample, |x| 1.0 - (-x / 2.0).exp());
        // For n = 5000 the 5% critical value is ≈ 1.36/√n ≈ 0.019.
        assert!(d < 0.019, "d = {d}");
    }

    #[test]
    fn r_squared_perfect_and_mean_model() {
        let obs = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&obs, &obs), 1.0);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&obs, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn r_squared_can_be_negative_for_bad_model() {
        let obs = [1.0, 2.0, 3.0];
        let bad = [10.0, -10.0, 10.0];
        assert!(r_squared(&obs, &bad) < 0.0);
    }
}
