//! Statistics substrate for the IMC'16 mobile cloud storage reproduction.
//!
//! The paper ("An Empirical Analysis of a Large-scale Mobile Cloud Storage
//! Service", IMC 2016) builds its user-behaviour characterisation on a small
//! set of statistical tools, all of which are implemented here from scratch:
//!
//! * [`histogram`] — linear and logarithmic binned histograms (Fig. 3),
//! * [`ecdf`] — empirical CDF/CCDF and quantiles (Figs. 4, 5, 12, 14, 16),
//! * [`gmm`] — 1-D Gaussian mixtures fitted by EM (Fig. 3, session threshold),
//! * [`expmix`] — mixtures of exponentials fitted by EM (Fig. 6 / Table 2),
//! * [`stretched_exp`] — stretched-exponential rank models (Fig. 10),
//! * [`gof`] — χ² and Kolmogorov–Smirnov goodness-of-fit tests, R²,
//! * [`bootstrap`] — percentile-bootstrap confidence intervals,
//! * [`linreg`] — ordinary least squares (Fig. 5b linear coefficient),
//! * [`timeseries`] — hourly binning and diurnal profiles (Fig. 1),
//! * [`descriptive`] — summary statistics, concentration measures,
//! * [`rng`] — deterministic, seeded samplers for every distribution the
//!   synthetic workload generator needs,
//! * [`special`] — the special functions (erf, ln Γ, incomplete γ) backing
//!   the distributions and tests.
//!
//! Everything is deterministic: no wall-clock time, no global RNG. Samplers
//! take an explicit [`rand::Rng`], and all fitting routines are pure
//! functions of their input slices.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod descriptive;
pub mod ecdf;
pub mod expmix;
pub mod gmm;
pub mod gof;
pub mod histogram;
pub mod linreg;
pub mod rng;
pub mod special;
pub mod stretched_exp;
pub mod timeseries;

pub use bootstrap::{bootstrap_ci, median_ci, median_ratio_ci, BootstrapCi};
pub use descriptive::Summary;
pub use ecdf::Ecdf;
pub use expmix::ExponentialMixture;
pub use gmm::GaussianMixture;
pub use histogram::{Histogram, LogHistogram};
pub use linreg::LinearFit;
pub use stretched_exp::StretchedExpFit;
pub use timeseries::HourlySeries;
