//! Stretched-exponential (SE) rank models.
//!
//! Section 3.2.3 of the paper shows that per-user activity (number of
//! stored / retrieved files) does **not** follow a power law; it is well
//! captured by a stretched exponential with CCDF
//!
//! ```text
//! P(X ≥ x) = exp(−(x/x₀)^c)
//! ```
//!
//! In rank form: if the `i`-th ranked user (descending) has activity `yᵢ`,
//! then `yᵢ^c = −a·ln i + b` with `a = x₀^c`, i.e. ranked data plot as a
//! straight line on log–y^c axes. Following the paper (and Guo et al.,
//! KDD'09), we fit `(a, b)` by least squares for a given stretch factor `c`
//! and choose `c` to maximise the coefficient of determination R².
//! The paper reports `c ≈ 0.2` for storage activity and `c ≈ 0.15` for
//! retrieval (Fig. 10).

use serde::{Deserialize, Serialize};

use crate::linreg::LinearFit;

/// A fitted stretched-exponential rank model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StretchedExpFit {
    /// Stretch factor `c`.
    pub c: f64,
    /// Slope magnitude `a = x₀^c` of the `y^c` vs `ln i` line.
    pub a: f64,
    /// Intercept `b ≈ y₁^c`.
    pub b: f64,
    /// Coefficient of determination of the `y^c` vs `ln i` regression.
    pub r_squared: f64,
    /// Number of ranked observations used.
    pub n: usize,
}

impl StretchedExpFit {
    /// Fits the SE rank model to activity counts (any order; zeros are
    /// dropped because rank models are defined on positive activity).
    ///
    /// `c` is optimised over `(c_min, c_max)` by golden-section search on
    /// R². Returns `None` when fewer than 3 positive observations remain.
    pub fn fit(activity: &[f64], c_min: f64, c_max: f64) -> Option<Self> {
        assert!(0.0 < c_min && c_min < c_max && c_max <= 2.0, "bad c range");
        let mut ranked: Vec<f64> = activity.iter().copied().filter(|&x| x > 0.0).collect();
        if ranked.len() < 3 {
            return None;
        }
        ranked.sort_by(|p, q| f64::total_cmp(q, p)); // descending

        let log_ranks: Vec<f64> = (1..=ranked.len()).map(|i| (i as f64).ln()).collect();

        let r2_of = |c: f64| -> (f64, LinearFit) {
            let yc: Vec<f64> = ranked.iter().map(|&y| y.powf(c)).collect();
            let fit = LinearFit::fit(&log_ranks, &yc);
            (fit.r_squared, fit)
        };

        // Golden-section search for the c maximising R².
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        let (mut lo, mut hi) = (c_min, c_max);
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let (mut f1, _) = r2_of(x1);
        let (mut f2, _) = r2_of(x2);
        for _ in 0..80 {
            if f1 < f2 {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = r2_of(x2).0;
            } else {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = r2_of(x1).0;
            }
        }
        let c = 0.5 * (lo + hi);
        let (r2, line) = r2_of(c);
        Some(Self {
            c,
            a: -line.slope,
            b: line.intercept,
            r_squared: r2,
            n: ranked.len(),
        })
    }

    /// Like [`Self::fit`] but with the paper's search range `c ∈ (0.05, 1)`.
    pub fn fit_default(activity: &[f64]) -> Option<Self> {
        Self::fit(activity, 0.05, 1.0)
    }

    /// Characteristic scale `x₀ = a^(1/c)`.
    pub fn x0(&self) -> f64 {
        self.a.powf(1.0 / self.c)
    }

    /// Model prediction of the activity of the rank-`i` (1-based) user:
    /// `y = (b − a·ln i)^{1/c}` (clamped at zero where the line goes
    /// negative).
    pub fn predicted_activity(&self, rank: usize) -> f64 {
        assert!(rank >= 1, "ranks are 1-based");
        let v = self.b - self.a * (rank as f64).ln();
        if v <= 0.0 {
            0.0
        } else {
            v.powf(1.0 / self.c)
        }
    }

    /// Model CCDF `P(X ≥ x) = exp(−x^c/a · …)` expressed through the rank
    /// line: `P(X ≥ y) = exp((y^c − b)/a − ln N)`-free form; we use the
    /// direct SE form with `x₀` from the fit.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.x0()).powf(self.c)).exp()
        }
    }
}

/// Power-law comparison fit: regression of `ln y` on `ln i` for descending
/// ranked data. The paper argues user activity deviates from this line —
/// compare `r_squared` here with the SE fit's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerLawRankFit {
    /// Exponent of `y ∝ i^{−β}`.
    pub beta: f64,
    /// Intercept (ln of rank-1 activity).
    pub ln_y1: f64,
    /// R² of the log–log regression.
    pub r_squared: f64,
    /// Observations used.
    pub n: usize,
}

impl PowerLawRankFit {
    /// Fits the log–log rank line. Drops non-positive activities. Returns
    /// `None` with fewer than 3 positive observations.
    pub fn fit(activity: &[f64]) -> Option<Self> {
        let mut ranked: Vec<f64> = activity.iter().copied().filter(|&x| x > 0.0).collect();
        if ranked.len() < 3 {
            return None;
        }
        ranked.sort_by(|p, q| f64::total_cmp(q, p));
        let xs: Vec<f64> = (1..=ranked.len()).map(|i| (i as f64).ln()).collect();
        let ys: Vec<f64> = ranked.iter().map(|&y| y.ln()).collect();
        let fit = LinearFit::fit(&xs, &ys);
        Some(Self {
            beta: -fit.slope,
            ln_y1: fit.intercept,
            r_squared: fit.r_squared,
            n: ranked.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates exact SE rank data y_i = (b − a ln i)^{1/c}.
    fn se_rank_data(n: usize, c: f64, a: f64, b: f64) -> Vec<f64> {
        (1..=n)
            .map(|i| {
                let v = b - a * (i as f64).ln();
                if v <= 0.0 {
                    0.0
                } else {
                    v.powf(1.0 / c)
                }
            })
            .collect()
    }

    #[test]
    fn recovers_exact_se_parameters() {
        // Paper Fig. 10a parameters: c = 0.2, a = 0.448, b = 7.239.
        let data = se_rank_data(50_000, 0.2, 0.448, 7.239);
        let fit = StretchedExpFit::fit_default(&data).expect("fit");
        assert!((fit.c - 0.2).abs() < 0.01, "c = {}", fit.c);
        assert!((fit.a - 0.448).abs() < 0.02, "a = {}", fit.a);
        assert!((fit.b - 7.239).abs() < 0.05, "b = {}", fit.b);
        assert!(fit.r_squared > 0.9999, "R² = {}", fit.r_squared);
    }

    #[test]
    fn recovers_retrieval_parameters() {
        // Fig. 10b: c = 0.15, a = 0.322, b = 4.971.
        let data = se_rank_data(20_000, 0.15, 0.322, 4.971);
        let fit = StretchedExpFit::fit_default(&data).expect("fit");
        assert!((fit.c - 0.15).abs() < 0.01, "c = {}", fit.c);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn se_beats_power_law_on_se_data() {
        let data = se_rank_data(10_000, 0.2, 0.45, 7.2);
        let se = StretchedExpFit::fit_default(&data).unwrap();
        let pl = PowerLawRankFit::fit(&data).unwrap();
        assert!(
            se.r_squared > pl.r_squared,
            "SE {} vs PL {}",
            se.r_squared,
            pl.r_squared
        );
    }

    #[test]
    fn power_law_wins_on_power_law_data() {
        let data: Vec<f64> = (1..=5000).map(|i| 1e6 / (i as f64).powf(1.2)).collect();
        let pl = PowerLawRankFit::fit(&data).unwrap();
        assert!((pl.beta - 1.2).abs() < 1e-6);
        assert!(pl.r_squared > 0.999999);
    }

    #[test]
    fn predicted_activity_monotone_nonincreasing() {
        let data = se_rank_data(1000, 0.25, 0.5, 6.0);
        let fit = StretchedExpFit::fit_default(&data).unwrap();
        let mut prev = f64::INFINITY;
        for i in 1..=1000 {
            let y = fit.predicted_activity(i);
            assert!(y <= prev + 1e-9);
            prev = y;
        }
    }

    #[test]
    fn ccdf_bounded_and_monotone() {
        let data = se_rank_data(2000, 0.2, 0.45, 7.0);
        let fit = StretchedExpFit::fit_default(&data).unwrap();
        let mut prev = 1.0f64;
        for i in 0..200 {
            let x = i as f64 * 10.0;
            let p = fit.ccdf(x);
            assert!((0.0..=1.0 + 1e-12).contains(&p));
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn zeros_are_dropped() {
        let mut data = se_rank_data(1000, 0.2, 0.45, 7.0);
        data.extend(std::iter::repeat_n(0.0, 500));
        let fit = StretchedExpFit::fit_default(&data).unwrap();
        assert!(fit.n <= 1000);
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(StretchedExpFit::fit_default(&[1.0, 2.0]).is_none());
        assert!(PowerLawRankFit::fit(&[0.0, 0.0, 0.0]).is_none());
    }

    #[test]
    fn x0_consistent_with_a_and_c() {
        let data = se_rank_data(5000, 0.2, 0.448, 7.239);
        let fit = StretchedExpFit::fit_default(&data).unwrap();
        assert!((fit.x0() - fit.a.powf(1.0 / fit.c)).abs() < 1e-12);
    }
}
