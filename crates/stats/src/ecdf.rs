//! Empirical distribution functions.
//!
//! Most of the paper's figures are empirical CDFs (Figs. 4, 5a, 12, 14, 16)
//! or CCDFs on log–log axes (Fig. 6). [`Ecdf`] owns a sorted copy of the
//! sample and answers CDF/CCDF/quantile queries in `O(log n)`.

use serde::{Deserialize, Serialize};

/// Empirical cumulative distribution function over an `f64` sample.
///
/// ```
/// use mcs_stats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.cdf(2.5), 0.5);
/// assert_eq!(e.median(), 2.5);
/// assert_eq!(e.ccdf(3.0), 0.25);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Non-finite values are rejected.
    ///
    /// Panics if the sample is empty or contains NaN/±∞.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF of empty sample");
        assert!(
            sample.iter().all(|x| x.is_finite()),
            "ECDF sample must be finite"
        );
        sample.sort_by(f64::total_cmp);
        Self { sorted: sample }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x) = Pr[X ≤ x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `1 − F(x) = Pr[X > x]`.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// `q`-quantile via linear interpolation between order statistics.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::descriptive::quantile_sorted(&self.sorted, q)
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        // mcs-lint: allow(panic, Ecdf::new rejects empty samples)
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the CDF at `n` points evenly spaced over `[min, max]`,
    /// returning `(x, F(x))` pairs — the series a figure plots.
    pub fn cdf_series(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two evaluation points");
        let lo = self.min();
        let hi = self.max();
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }

    /// Evaluates the CDF at `n` points log-spaced over `[min, max]` (both
    /// must be positive) — for figures with logarithmic x-axes (Figs. 14, 16).
    pub fn cdf_series_log(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two evaluation points");
        assert!(self.min() > 0.0, "log-spaced series needs positive sample");
        let lo = self.min().ln();
        let hi = self.max().ln();
        (0..n)
            .map(|i| {
                let x = (lo + (hi - lo) * i as f64 / (n - 1) as f64).exp();
                (x, self.cdf(x))
            })
            .collect()
    }

    /// Evaluates the CCDF at `n` log-spaced points (Fig. 6 style, both axes
    /// logarithmic).
    pub fn ccdf_series_log(&self, n: usize) -> Vec<(f64, f64)> {
        self.cdf_series_log(n)
            .into_iter()
            .map(|(x, f)| (x, 1.0 - f))
            .collect()
    }

    /// Two-sample Kolmogorov–Smirnov statistic `sup |F₁ − F₂|`.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in &self.sorted {
            d = d.max((self.cdf(x) - other.cdf(x)).abs());
        }
        for &x in &other.sorted {
            d = d.max((self.cdf(x) - other.cdf(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cdf_step_values() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(99.0), 1.0);
    }

    #[test]
    fn ccdf_complements_cdf() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        for &x in &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn quantile_median() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0]);
        assert_eq!(e.median(), 20.0);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(1.0), 30.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(1.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn series_shapes() {
        let e = Ecdf::new(vec![1.0, 10.0, 100.0, 1000.0]);
        let s = e.cdf_series(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 1.0);
        assert_eq!(s[10].0, 1000.0);
        assert_eq!(s[10].1, 1.0);
        let l = e.cdf_series_log(5);
        assert!((l[0].0 - 1.0).abs() < 1e-9);
        assert!((l[4].0 - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let e = Ecdf::new(xs);
            let pts = e.cdf_series(20);
            for w in pts.windows(2) {
                prop_assert!(w[0].1 <= w[1].1 + 1e-12);
            }
        }

        #[test]
        fn prop_quantile_cdf_consistency(
            xs in proptest::collection::vec(-1e4f64..1e4, 2..100),
            q in 0.01f64..0.99,
        ) {
            let e = Ecdf::new(xs);
            let x = e.quantile(q);
            // CDF at the q-quantile must be at least roughly q.
            prop_assert!(e.cdf(x) + 1.0 / e.len() as f64 >= q - 1e-9);
        }

        #[test]
        fn prop_ks_symmetric(
            a in proptest::collection::vec(-1e3f64..1e3, 1..50),
            b in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let ea = Ecdf::new(a);
            let eb = Ecdf::new(b);
            prop_assert!((ea.ks_distance(&eb) - eb.ks_distance(&ea)).abs() < 1e-12);
        }
    }
}
