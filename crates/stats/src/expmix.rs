//! Mixtures of exponential distributions fitted by expectation maximisation.
//!
//! Section 3.1.4 of the paper models the *average file size per session*
//! with a mixture of exponentials
//!
//! ```text
//! f(x) = Σᵢ αᵢ (1/µᵢ) e^(−x/µᵢ)
//! ```
//!
//! where each µᵢ is read as a "typical file size" and αᵢ as the fraction of
//! sessions around that size (Table 2: store-only ≈ {0.91 @ 1.5 MB,
//! 0.07 @ 13.1 MB, 0.02 @ 77.4 MB}). The paper selects the component count
//! n by growing it until some αᵢ < 0.001; [`ExponentialMixture::fit_select`]
//! reproduces that rule.

use serde::{Deserialize, Serialize};

/// One exponential component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpComponent {
    /// Mixing weight αᵢ.
    pub weight: f64,
    /// Mean µᵢ (same unit as the data; the paper uses MB).
    pub mean: f64,
}

impl ExpComponent {
    /// Weighted density αᵢ·(1/µᵢ)e^(−x/µᵢ) for x ≥ 0.
    pub fn weighted_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.weight / self.mean * (-x / self.mean).exp()
        }
    }

    /// Weighted tail αᵢ·e^(−x/µᵢ).
    pub fn weighted_ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            self.weight
        } else {
            self.weight * (-x / self.mean).exp()
        }
    }
}

/// A fitted mixture of exponentials.
///
/// ```
/// use mcs_stats::ExponentialMixture;
/// use mcs_stats::rng::{stream_rng, ExpMixtureSampler};
///
/// // Sample the paper's Table 2 store-only mixture, then recover it.
/// let sampler = ExpMixtureSampler::new(&[(0.91, 1.5), (0.07, 13.1), (0.02, 77.4)]);
/// let mut rng = stream_rng(1, 0);
/// let data: Vec<f64> = (0..20_000).map(|_| sampler.sample(&mut rng)).collect();
/// let fit = ExponentialMixture::fit(&data, 3, 300, 1e-8).unwrap();
/// assert!((fit.components[0].mean - 1.5).abs() < 0.4);
/// assert!((fit.components[0].weight - 0.91).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExponentialMixture {
    /// Components sorted by ascending mean.
    pub components: Vec<ExpComponent>,
    /// Final per-sample average log-likelihood.
    pub avg_log_likelihood: f64,
    /// EM iterations actually run.
    pub iterations: usize,
}

impl ExponentialMixture {
    /// Fits a `k`-component exponential mixture to non-negative `data`.
    ///
    /// EM only converges to a local optimum, and exponential mixtures with
    /// a dominant light component (exactly the paper's Table 2 shape:
    /// α₁ = 0.91) are notorious for it. We therefore run EM from several
    /// deterministic initialisations — component means geometrically spaced
    /// between different quantile pairs — and keep the best final
    /// log-likelihood. Returns `None` for insufficient (< 2k points) or
    /// degenerate data.
    pub fn fit(data: &[f64], k: usize, max_iter: usize, tol: f64) -> Option<Self> {
        assert!(k >= 1, "need at least one component");
        if data.len() < 2 * k {
            return None;
        }
        if data.iter().any(|&x| x < 0.0) {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);

        // Quantile pairs spanning progressively more of the tail; the
        // (0.5, ~max) start is what rescues heavy-α₁ mixtures.
        const INIT_SPANS: [(f64, f64); 4] =
            [(0.10, 0.99), (0.50, 0.999), (0.25, 0.90), (0.50, 1.0)];
        let mut best: Option<Self> = None;
        for &(qlo, qhi) in &INIT_SPANS {
            let lo = crate::descriptive::quantile_sorted(&sorted, qlo).max(1e-9);
            let hi = crate::descriptive::quantile_sorted(&sorted, qhi).max(lo * 1.0001);
            let init: Vec<ExpComponent> = (0..k)
                .map(|i| {
                    let t = if k == 1 {
                        0.5
                    } else {
                        i as f64 / (k - 1) as f64
                    };
                    ExpComponent {
                        weight: 1.0 / k as f64,
                        mean: lo * (hi / lo).powf(t),
                    }
                })
                .collect();
            let fit = Self::fit_from(data, init, max_iter, tol);
            match (&best, &fit) {
                (None, _) => best = fit,
                (Some(b), Some(f)) if f.avg_log_likelihood > b.avg_log_likelihood => best = fit,
                _ => {}
            }
        }
        best
    }

    /// Runs EM from an explicit initial component set.
    pub fn fit_from(
        data: &[f64],
        init: Vec<ExpComponent>,
        max_iter: usize,
        tol: f64,
    ) -> Option<Self> {
        let k = init.len();
        assert!(k >= 1, "need at least one component");
        if data.len() < 2 * k || data.iter().any(|&x| x < 0.0) {
            return None;
        }
        let mut comps = init;
        let n = data.len();
        let mut resp = vec![0.0f64; n * k];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut ll = prev_ll;
        let mut iters = 0;

        for iter in 0..max_iter {
            iters = iter + 1;
            ll = 0.0;
            for (i, &x) in data.iter().enumerate() {
                let mut total = 0.0;
                for (j, c) in comps.iter().enumerate() {
                    let p = c.weighted_pdf(x).max(1e-300);
                    resp[i * k + j] = p;
                    total += p;
                }
                ll += total.ln();
                for j in 0..k {
                    resp[i * k + j] /= total;
                }
            }
            ll /= n as f64;

            for (j, comp) in comps.iter_mut().enumerate() {
                let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                if nj < 1e-9 {
                    comp.weight = 0.0;
                    continue;
                }
                let mean: f64 = (0..n).map(|i| resp[i * k + j] * data[i]).sum::<f64>() / nj;
                comp.weight = nj / n as f64;
                comp.mean = mean.max(1e-9);
            }

            if (ll - prev_ll).abs() < tol {
                break;
            }
            prev_ll = ll;
        }

        comps.sort_by(|a, b| f64::total_cmp(&a.mean, &b.mean));
        // Renormalise so the weights sum to exactly 1.0 — accumulated float
        // drift otherwise leaks into CCDF values slightly above 1.
        let wsum: f64 = comps.iter().map(|c| c.weight).sum();
        if wsum > 0.0 {
            for c in &mut comps {
                c.weight /= wsum;
            }
        }
        Some(Self {
            components: comps,
            avg_log_likelihood: ll,
            iterations: iters,
        })
    }

    /// Reproduces the paper's model-selection rule: starting at `k = 1`,
    /// grow the component count until adding another component produces a
    /// negligible weight (αᵢ < `min_weight`, the paper uses 0.001) or
    /// `max_k` is reached; return the last accepted fit.
    ///
    /// We additionally require each extra component to *earn its keep* by
    /// the Bayesian information criterion: with multi-start EM an
    /// over-parameterised mixture can keep all weights non-negligible by
    /// splitting a true component in two, which the weight rule alone does
    /// not catch, yet adds almost no explanatory power — exactly what BIC's
    /// parameter penalty rejects.
    pub fn fit_select(
        data: &[f64],
        max_k: usize,
        min_weight: f64,
        max_iter: usize,
        tol: f64,
    ) -> Option<Self> {
        let mut best: Option<Self> = None;
        for k in 1..=max_k {
            match Self::fit(data, k, max_iter, tol) {
                Some(fit) => {
                    let negligible = fit.components.iter().any(|c| c.weight < min_weight);
                    if negligible {
                        return best.or(Some(fit));
                    }
                    if let Some(prev) = &best {
                        if fit.bic(data.len()) >= prev.bic(data.len()) {
                            return best;
                        }
                    }
                    best = Some(fit);
                }
                None => return best,
            }
        }
        best
    }

    /// Bayesian information criterion on `n` samples (lower is better); a
    /// k-component exponential mixture has `2k − 1` free parameters.
    pub fn bic(&self, n: usize) -> f64 {
        let params = (2 * self.k() - 1) as f64;
        params * (n as f64).ln() - 2.0 * self.avg_log_likelihood * n as f64
    }

    /// Mixture density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|c| c.weighted_pdf(x)).sum()
    }

    /// Mixture tail `Pr[X > x]` — this is what Fig. 6 plots against the
    /// empirical CCDF.
    pub fn ccdf(&self, x: f64) -> f64 {
        self.components.iter().map(|c| c.weighted_ccdf(x)).sum()
    }

    /// Mixture CDF.
    pub fn cdf(&self, x: f64) -> f64 {
        1.0 - self.ccdf(x)
    }

    /// Mixture mean Σ αᵢ µᵢ.
    pub fn mean(&self) -> f64 {
        self.components.iter().map(|c| c.weight * c.mean).sum()
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Sample from a given mixture (tests only).
    fn sample_mixture(comps: &[(f64, f64)], n: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                let mut acc = 0.0;
                let mut mean = comps[comps.len() - 1].1;
                for &(w, m) in comps {
                    acc += w;
                    if u < acc {
                        mean = m;
                        break;
                    }
                }
                let v: f64 = rng.random::<f64>().max(1e-15);
                -mean * v.ln()
            })
            .collect()
    }

    #[test]
    fn recovers_single_exponential() {
        let data = sample_mixture(&[(1.0, 5.0)], 5000, 1);
        let fit = ExponentialMixture::fit(&data, 1, 200, 1e-10).unwrap();
        assert!((fit.components[0].mean - 5.0).abs() < 0.3);
        assert!((fit.components[0].weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_paper_like_store_mixture() {
        // Table 2 store-only parameters: 0.91@1.5, 0.07@13.1, 0.02@77.4 MB.
        let truth = [(0.91, 1.5), (0.07, 13.1), (0.02, 77.4)];
        let data = sample_mixture(&truth, 60_000, 2);
        let fit = ExponentialMixture::fit(&data, 3, 500, 1e-10).unwrap();
        // Components come back sorted by mean; check each within tolerance.
        let c = &fit.components;
        assert!((c[0].weight - 0.91).abs() < 0.04, "{:?}", c);
        assert!((c[0].mean - 1.5).abs() < 0.3, "{:?}", c);
        assert!((c[1].mean - 13.1).abs() < 4.0, "{:?}", c);
        assert!((c[2].mean - 77.4).abs() < 15.0, "{:?}", c);
    }

    #[test]
    fn fit_select_stops_at_three_for_three_component_data() {
        let truth = [(0.5, 1.5), (0.3, 30.0), (0.2, 150.0)];
        let data = sample_mixture(&truth, 30_000, 3);
        let fit = ExponentialMixture::fit_select(&data, 5, 0.001, 300, 1e-8).unwrap();
        assert!(
            fit.k() >= 2 && fit.k() <= 4,
            "selected k = {} for 3-component data",
            fit.k()
        );
        // Every kept component carries non-negligible weight.
        assert!(fit.components.iter().all(|c| c.weight >= 0.001));
    }

    #[test]
    fn weights_sum_to_one() {
        let data = sample_mixture(&[(0.7, 2.0), (0.3, 40.0)], 10_000, 4);
        let fit = ExponentialMixture::fit(&data, 2, 300, 1e-9).unwrap();
        let w: f64 = fit.components.iter().map(|c| c.weight).sum();
        assert!((w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ccdf_monotone_and_bounded() {
        let data = sample_mixture(&[(0.8, 1.5), (0.2, 20.0)], 5000, 5);
        let fit = ExponentialMixture::fit(&data, 2, 300, 1e-9).unwrap();
        let mut prev = 1.0 + 1e-12;
        for i in 0..100 {
            let x = i as f64;
            let t = fit.ccdf(x);
            assert!(t <= prev);
            assert!((0.0..=1.0).contains(&t));
            prev = t;
        }
        assert!((fit.ccdf(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_mean_matches_sample_mean() {
        let data = sample_mixture(&[(0.6, 3.0), (0.4, 12.0)], 20_000, 6);
        let fit = ExponentialMixture::fit(&data, 2, 300, 1e-9).unwrap();
        let sample_mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!((fit.mean() - sample_mean).abs() / sample_mean < 0.02);
    }

    #[test]
    fn rejects_negative_data() {
        assert!(ExponentialMixture::fit(&[1.0, -2.0, 3.0, 4.0], 1, 50, 1e-8).is_none());
    }

    #[test]
    fn deterministic() {
        let data = sample_mixture(&[(0.9, 1.5), (0.1, 30.0)], 3000, 9);
        let a = ExponentialMixture::fit(&data, 2, 200, 1e-9).unwrap();
        let b = ExponentialMixture::fit(&data, 2, 200, 1e-9).unwrap();
        assert_eq!(a, b);
    }
}
