//! Summary statistics and concentration measures.

use serde::{Deserialize, Serialize};

/// One-pass summary of a sample: count, mean, variance, extrema.
///
/// Uses Welford's online algorithm so it can be fed record-by-record by the
/// streaming analysis pipeline without buffering the sample.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        // mcs-lint: allow(float-merge, Chan pairwise mean update; shards merge in pinned index order per the R4 law)
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        // mcs-lint: allow(float-merge, Chan mean and M2 combination is deterministic under the pinned merge order)
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        // mcs-lint: allow(float-merge, integer count plus f64 sum; sum follows the same pinned merge order)
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `NaN` when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `xs` using linear interpolation
/// between order statistics (type-7, the R/NumPy default).
///
/// `xs` must be sorted ascending. Panics if `xs` is empty or `q` is outside
/// `[0, 1]`.
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    if xs.len() == 1 {
        return xs[0];
    }
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    xs[lo] + (xs[hi] - xs[lo]) * frac
}

/// Sorts a copy of `xs` and returns the `q`-quantile.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    quantile_sorted(&v, q)
}

/// Median convenience wrapper.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Gini coefficient of a non-negative sample — a standard inequality measure
/// used to characterise how concentrated per-user activity is.
///
/// Returns `NaN` for empty input and 0 for an all-zero sample.
pub fn gini(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len() as f64;
    let total: f64 = v.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Fraction of the total mass contributed by the largest `k` values —
/// e.g. "what share of uploads come from the top 1 % of users".
pub fn top_k_share(xs: &[f64], k: usize) -> f64 {
    if xs.is_empty() || k == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| f64::total_cmp(b, a));
    let total: f64 = v.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    v.iter().take(k).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::from_slice(&[7.5]);
        assert_eq!(s.mean(), 7.5);
        assert!(s.variance().is_nan());
    }

    #[test]
    fn merge_matches_concatenation() {
        let a = [1.0, 5.0, 2.0];
        let b = [9.0, -3.0, 4.0, 8.0];
        let mut sa = Summary::from_slice(&a);
        let sb = Summary::from_slice(&b);
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let sc = Summary::from_slice(&all);
        assert_eq!(sa.count(), sc.count());
        assert!((sa.mean() - sc.mean()).abs() < 1e-12);
        assert!((sa.variance() - sc.variance()).abs() < 1e-12);
        assert_eq!(sa.min(), sc.min());
        assert_eq!(sa.max(), sc.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0]);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gini_extremes() {
        // Perfect equality.
        assert!(gini(&[1.0, 1.0, 1.0, 1.0]).abs() < 1e-12);
        // Near-perfect inequality approaches (n−1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!((g - 0.75).abs() < 1e-12);
    }

    #[test]
    fn top_k_share_basics() {
        let xs = [10.0, 30.0, 60.0];
        assert!((top_k_share(&xs, 1) - 0.6).abs() < 1e-12);
        assert!((top_k_share(&xs, 2) - 0.9).abs() < 1e-12);
        assert!((top_k_share(&xs, 3) - 1.0).abs() < 1e-12);
        assert!((top_k_share(&xs, 10) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_summary_mean_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_slice(&xs);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn prop_merge_commutes(
            a in proptest::collection::vec(-1e3f64..1e3, 1..50),
            b in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let mut ab = Summary::from_slice(&a);
            ab.merge(&Summary::from_slice(&b));
            let mut ba = Summary::from_slice(&b);
            ba.merge(&Summary::from_slice(&a));
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        }

        #[test]
        fn prop_quantile_monotone(
            xs in proptest::collection::vec(-1e4f64..1e4, 2..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
        }

        #[test]
        fn prop_gini_in_unit_interval(
            xs in proptest::collection::vec(0.0f64..1e6, 1..100)
        ) {
            let g = gini(&xs);
            prop_assert!((-1e-9..=1.0).contains(&g));
        }
    }
}
