//! One-dimensional Gaussian mixture models fitted by expectation
//! maximisation.
//!
//! Section 3.1.1 of the paper fits a **two-component Gaussian mixture** to
//! the logarithm of inter-file-operation times: one component captures
//! within-session gaps (mean ≈ 10 s) and the other between-session gaps
//! (mean ≈ 1 day). The crossover between the two component posteriors
//! justifies the session threshold τ = 1 hour.

use serde::{Deserialize, Serialize};

use crate::special::normal_pdf;

/// A single Gaussian component of a mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussComponent {
    /// Mixing weight α ∈ (0, 1].
    pub weight: f64,
    /// Mean µ.
    pub mean: f64,
    /// Standard deviation σ > 0.
    pub std_dev: f64,
}

impl GaussComponent {
    /// Weighted density α·N(x; µ, σ²).
    pub fn weighted_pdf(&self, x: f64) -> f64 {
        self.weight * normal_pdf((x - self.mean) / self.std_dev) / self.std_dev
    }
}

/// A fitted K-component Gaussian mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture {
    /// Components sorted by ascending mean.
    pub components: Vec<GaussComponent>,
    /// Final per-sample average log-likelihood.
    pub avg_log_likelihood: f64,
    /// EM iterations actually run.
    pub iterations: usize,
}

impl GaussianMixture {
    /// Fits a `k`-component mixture to `data` by EM.
    ///
    /// Initialisation is deterministic: component means are seeded at
    /// evenly spaced sample quantiles, so repeated fits of the same data
    /// give identical results. Returns `None` when `data` has fewer than
    /// `2·k` points or zero variance.
    pub fn fit(data: &[f64], k: usize, max_iter: usize, tol: f64) -> Option<Self> {
        assert!(k >= 1, "need at least one component");
        if data.len() < 2 * k {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let spread = sorted[sorted.len() - 1] - sorted[0];
        if spread <= 0.0 {
            return None;
        }

        // Deterministic init: means at quantiles, common σ from the spread.
        let mut comps: Vec<GaussComponent> = (0..k)
            .map(|i| {
                let q = (i as f64 + 0.5) / k as f64;
                GaussComponent {
                    weight: 1.0 / k as f64,
                    mean: crate::descriptive::quantile_sorted(&sorted, q),
                    std_dev: (spread / (2.0 * k as f64)).max(1e-6),
                }
            })
            .collect();

        let n = data.len();
        let mut resp = vec![0.0f64; n * k];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut iters = 0;
        let mut ll = prev_ll;

        for iter in 0..max_iter {
            iters = iter + 1;
            // E step.
            ll = 0.0;
            for (i, &x) in data.iter().enumerate() {
                let mut total = 0.0;
                for (j, c) in comps.iter().enumerate() {
                    let p = c.weighted_pdf(x).max(1e-300);
                    resp[i * k + j] = p;
                    total += p;
                }
                ll += total.ln();
                for j in 0..k {
                    resp[i * k + j] /= total;
                }
            }
            ll /= n as f64;

            // M step.
            for (j, comp) in comps.iter_mut().enumerate() {
                let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                if nj < 1e-9 {
                    // Dead component: re-seed at the global mean so EM can
                    // recover instead of dividing by ~0.
                    comp.weight = 1e-6;
                    continue;
                }
                let mean: f64 = (0..n).map(|i| resp[i * k + j] * data[i]).sum::<f64>() / nj;
                let var: f64 = (0..n)
                    .map(|i| {
                        let d = data[i] - mean;
                        resp[i * k + j] * d * d
                    })
                    .sum::<f64>()
                    / nj;
                comp.weight = nj / n as f64;
                comp.mean = mean;
                comp.std_dev = var.sqrt().max(1e-6);
            }

            if (ll - prev_ll).abs() < tol {
                break;
            }
            prev_ll = ll;
        }

        comps.sort_by(|a, b| f64::total_cmp(&a.mean, &b.mean));
        Some(Self {
            components: comps,
            avg_log_likelihood: ll,
            iterations: iters,
        })
    }

    /// Mixture density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|c| c.weighted_pdf(x)).sum()
    }

    /// Posterior responsibility of component `j` at `x`.
    pub fn responsibility(&self, j: usize, x: f64) -> f64 {
        let num = self.components[j].weighted_pdf(x);
        let den = self.pdf(x);
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// For a two-component mixture, the point between the two means where
    /// the weighted densities are equal — the natural class boundary.
    ///
    /// Section 3.1.1 uses exactly this: the 1-hour mark is "equally likely
    /// to be within the two components". Found by bisection on the
    /// difference of weighted log-densities. Returns `None` unless the
    /// mixture has exactly two components with distinct means and the
    /// densities actually cross between them.
    pub fn crossover(&self) -> Option<f64> {
        if self.components.len() != 2 {
            return None;
        }
        let (a, b) = (self.components[0], self.components[1]);
        if a.mean >= b.mean {
            return None;
        }
        let f = |x: f64| a.weighted_pdf(x) - b.weighted_pdf(x);
        let (mut lo, mut hi) = (a.mean, b.mean);
        let (flo, fhi) = (f(lo), f(hi));
        if flo <= 0.0 || fhi >= 0.0 {
            return None;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Bayesian information criterion for this fit on `n` samples: lower is
    /// better. A K-component 1-D mixture has `3K − 1` free parameters.
    pub fn bic(&self, n: usize) -> f64 {
        let params = (3 * self.components.len() - 1) as f64;
        params * (n as f64).ln() - 2.0 * self.avg_log_likelihood * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Box-Muller normal sample (tests only; library samplers live in rng).
    fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn bimodal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 10 < 7 {
                    normal(&mut rng, 1.0, 0.6) // "10 s" mode in log10 seconds
                } else {
                    normal(&mut rng, 4.9, 0.5) // "1 day" mode
                }
            })
            .collect()
    }

    #[test]
    fn recovers_two_well_separated_components() {
        let data = bimodal_sample(4000, 7);
        let fit = GaussianMixture::fit(&data, 2, 300, 1e-9).expect("fit");
        let c0 = fit.components[0];
        let c1 = fit.components[1];
        assert!((c0.mean - 1.0).abs() < 0.1, "c0 mean {}", c0.mean);
        assert!((c1.mean - 4.9).abs() < 0.1, "c1 mean {}", c1.mean);
        assert!((c0.weight - 0.7).abs() < 0.05, "c0 weight {}", c0.weight);
        assert!((c1.weight - 0.3).abs() < 0.05);
    }

    #[test]
    fn crossover_lies_between_modes() {
        let data = bimodal_sample(4000, 11);
        let fit = GaussianMixture::fit(&data, 2, 300, 1e-9).expect("fit");
        let x = fit.crossover().expect("crossover");
        assert!(x > 1.5 && x < 4.5, "crossover {x}");
        // Responsibilities are balanced at the crossover.
        let r = fit.responsibility(0, x);
        assert!((r - 0.5).abs() < 1e-6, "responsibility {r}");
    }

    #[test]
    fn fit_is_deterministic() {
        let data = bimodal_sample(1000, 3);
        let a = GaussianMixture::fit(&data, 2, 200, 1e-9).unwrap();
        let b = GaussianMixture::fit(&data, 2, 200, 1e-9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn weights_sum_to_one() {
        let data = bimodal_sample(2000, 5);
        let fit = GaussianMixture::fit(&data, 2, 200, 1e-9).unwrap();
        let w: f64 = fit.components.iter().map(|c| c.weight).sum();
        assert!((w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insufficient_data_returns_none() {
        assert!(GaussianMixture::fit(&[1.0, 2.0, 3.0], 2, 100, 1e-9).is_none());
        assert!(GaussianMixture::fit(&[5.0; 50], 2, 100, 1e-9).is_none());
    }

    #[test]
    fn single_component_matches_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let data: Vec<f64> = (0..3000).map(|_| normal(&mut rng, 3.0, 1.5)).collect();
        let fit = GaussianMixture::fit(&data, 1, 200, 1e-10).unwrap();
        let c = fit.components[0];
        assert!((c.mean - 3.0).abs() < 0.1);
        assert!((c.std_dev - 1.5).abs() < 0.1);
        assert!((c.weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bic_prefers_two_components_for_bimodal_data() {
        let data = bimodal_sample(3000, 13);
        let f1 = GaussianMixture::fit(&data, 1, 300, 1e-9).unwrap();
        let f2 = GaussianMixture::fit(&data, 2, 300, 1e-9).unwrap();
        assert!(f2.bic(data.len()) < f1.bic(data.len()));
    }

    #[test]
    fn pdf_integrates_to_one() {
        let data = bimodal_sample(2000, 17);
        let fit = GaussianMixture::fit(&data, 2, 200, 1e-9).unwrap();
        // Trapezoid integration over a wide range.
        let (lo, hi, steps) = (-10.0, 15.0, 20_000);
        let h = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            integral += w * fit.pdf(x) * h;
        }
        assert!((integral - 1.0).abs() < 1e-6, "integral {integral}");
    }
}
