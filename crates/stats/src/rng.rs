//! Deterministic, seeded samplers.
//!
//! Everything the synthetic workload generator draws — inter-operation
//! gaps (log-space Gaussian mixtures), file sizes (exponential mixtures),
//! per-user activity (stretched exponential), RTTs (lognormal), hour-of-day
//! (categorical) — is sampled through this module so that a single `u64`
//! seed reproduces a trace bit-for-bit.
//!
//! Samplers are plain structs with a `sample(&self, rng)` method taking any
//! [`rand::Rng`]; no global state, no wall clock.

use rand::SeedableRng;
use rand::{Rng, RngExt};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Derives independent sub-seeds from a master seed using SplitMix64 —
/// the standard seed-sequencing construction. Stream `k` of seed `s` is
/// stable across runs and platforms.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates the deterministic RNG for a named stream of the master seed.
pub fn stream_rng(master: u64, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(split_seed(master, stream))
}

/// Standard normal sample via Box–Muller (one value per call; simple and
/// branch-free determinism beats caching the second value here).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (> 0).
    pub std_dev: f64,
}

impl Normal {
    /// Creates the sampler; panics if `std_dev <= 0`.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev > 0.0, "std_dev must be positive");
        Self { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Lognormal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Mean of the underlying normal (of ln X).
    pub mu: f64,
    /// Std-dev of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates the sampler; panics if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self { mu, sigma }
    }

    /// Builds the sampler from the *median* of X and the std-dev of ln X —
    /// often the natural parameterisation for latency-like quantities
    /// (e.g. "median RTT ≈ 100 ms", Fig. 14).
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        Self::new(median.ln(), sigma)
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Distribution median `e^mu`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Distribution mean `e^{mu + sigma²/2}`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Exponential distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    /// Mean (= 1/rate).
    pub mean: f64,
}

impl Exponential {
    /// Creates the sampler; panics if `mean <= 0`.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Self { mean }
    }

    /// Draws one sample by inversion.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        -self.mean * rng.random::<f64>().max(1e-300).ln()
    }
}

/// Categorical distribution over `0..weights.len()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds from non-negative weights (not necessarily normalised).
    /// Panics if all weights are zero or any is negative/non-finite.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // mcs-lint: allow(panic, loop above pushed >= 1 entry)
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Self { cumulative }
    }

    /// Draws an index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cumulative.partition_point(|&c| c <= u)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Never true: construction requires at least one weight.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of category `i`.
    pub fn prob(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - prev
    }
}

/// Mixture of exponentials sampler — matches
/// [`crate::expmix::ExponentialMixture`] and is how the generator plants
/// the Table 2 file-size model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpMixtureSampler {
    choose: Categorical,
    means: Vec<f64>,
}

impl ExpMixtureSampler {
    /// Builds from `(weight, mean)` pairs.
    pub fn new(components: &[(f64, f64)]) -> Self {
        assert!(!components.is_empty(), "need at least one component");
        assert!(
            components.iter().all(|&(_, m)| m > 0.0),
            "component means must be positive"
        );
        let weights: Vec<f64> = components.iter().map(|&(w, _)| w).collect();
        let means = components.iter().map(|&(_, m)| m).collect();
        Self {
            choose: Categorical::new(&weights),
            means,
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let j = self.choose.sample(rng);
        -self.means[j] * rng.random::<f64>().max(1e-300).ln()
    }

    /// Mixture mean.
    pub fn mean(&self) -> f64 {
        (0..self.means.len())
            .map(|j| self.choose.prob(j) * self.means[j])
            .sum()
    }
}

/// Mixture of Gaussians in `ln x` space — i.e. a lognormal mixture. This is
/// the generative counterpart of the paper's Fig. 3 model: inter-operation
/// times whose *logarithm* is a two-component Gaussian mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogSpaceGmmSampler {
    choose: Categorical,
    comps: Vec<LogNormal>,
}

impl LogSpaceGmmSampler {
    /// Builds from `(weight, mu_ln, sigma_ln)` triples (parameters of the
    /// Gaussians on ln x).
    pub fn new(components: &[(f64, f64, f64)]) -> Self {
        assert!(!components.is_empty(), "need at least one component");
        let weights: Vec<f64> = components.iter().map(|&(w, _, _)| w).collect();
        let comps = components
            .iter()
            .map(|&(_, mu, sigma)| LogNormal::new(mu, sigma))
            .collect();
        Self {
            choose: Categorical::new(&weights),
            comps,
        }
    }

    /// Draws one sample (positive).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let j = self.choose.sample(rng);
        self.comps[j].sample(rng)
    }
}

/// Stretched-exponential sampler by CCDF inversion:
/// `P(X ≥ x) = exp(−(x/x₀)^c)` inverts to `x = x₀·(−ln U)^{1/c}`.
///
/// Used to plant per-user activity levels with the Fig. 10 shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StretchedExpSampler {
    /// Characteristic scale x₀ > 0.
    pub x0: f64,
    /// Stretch factor c ∈ (0, 2].
    pub c: f64,
}

impl StretchedExpSampler {
    /// Creates the sampler; panics on non-positive parameters.
    pub fn new(x0: f64, c: f64) -> Self {
        assert!(x0 > 0.0 && c > 0.0, "x0 and c must be positive");
        Self { x0, c }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.random::<f64>().max(1e-300);
        self.x0 * (-u.ln()).powf(1.0 / self.c)
    }

    /// Model CCDF (for tests / GoF).
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.x0).powf(self.c)).exp()
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s` — used for
/// download popularity (the §3.1.4 locality-of-interest implication).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the CDF table for `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s > 0.0, "exponent must be positive");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // mcs-lint: allow(panic, loop above pushed >= 1 entry)
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Self { cumulative }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cumulative.partition_point(|&c| c <= u) + 1
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn split_seed_streams_differ() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable value (regression pin for cross-run determinism).
        assert_eq!(split_seed(0, 0), split_seed(0, 0));
    }

    #[test]
    fn stream_rng_is_deterministic() {
        let mut a = stream_rng(7, 3);
        let mut b = stream_rng(7, 3);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(1);
        let d = Normal::new(5.0, 2.0);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng(2);
        let d = LogNormal::from_median(100.0, 0.8);
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(f64::total_cmp);
        let med = xs[xs.len() / 2];
        assert!((med - 100.0).abs() / 100.0 < 0.05, "median {med}");
        assert!(xs.iter().all(|&x| x > 0.0));
        assert!((d.median() - 100.0).abs() < 1e-9);
        assert!(d.mean() > d.median());
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng(3);
        let d = Exponential::new(7.0);
        let n = 50_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn categorical_frequencies() {
        let mut r = rng(4);
        let d = Categorical::new(&[1.0, 3.0, 6.0]);
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.01);
        assert!((d.prob(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn categorical_rejects_all_zero() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn expmixture_mean_and_component_shares() {
        let mut r = rng(5);
        let d = ExpMixtureSampler::new(&[(0.91, 1.5), (0.07, 13.1), (0.02, 77.4)]);
        let expected_mean = 0.91 * 1.5 + 0.07 * 13.1 + 0.02 * 77.4;
        assert!((d.mean() - expected_mean).abs() < 1e-9);
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!(
            (mean - expected_mean).abs() / expected_mean < 0.05,
            "{mean}"
        );
    }

    #[test]
    fn log_space_gmm_is_bimodal_in_log() {
        let mut r = rng(6);
        // ~10 s and ~1 day modes (ln space), as in Fig. 3.
        let d = LogSpaceGmmSampler::new(&[(0.7, 10f64.ln(), 1.0), (0.3, 86_400f64.ln(), 0.7)]);
        let n = 40_000;
        let (mut small, mut large) = (0u32, 0u32);
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!(x > 0.0);
            if x < 3600.0 {
                small += 1;
            } else if x > 3600.0 {
                large += 1;
            }
        }
        let frac_small = small as f64 / n as f64;
        let frac_large = large as f64 / n as f64;
        assert!((frac_small - 0.7).abs() < 0.05, "{frac_small}");
        assert!((frac_large - 0.3).abs() < 0.05, "{frac_large}");
    }

    #[test]
    fn stretched_exp_ccdf_matches_samples() {
        let mut r = rng(7);
        let d = StretchedExpSampler::new(50.0, 0.3);
        let n = 50_000usize;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        // Empirical CCDF at a few probes vs model.
        for &probe in &[1.0, 10.0, 100.0, 1000.0] {
            let emp = xs.iter().filter(|&&x| x >= probe).count() as f64 / n as f64;
            assert!(
                (emp - d.ccdf(probe)).abs() < 0.01,
                "probe {probe}: emp {emp} model {}",
                d.ccdf(probe)
            );
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut r = rng(8);
        let d = Zipf::new(1000, 1.0);
        let n = 50_000;
        let mut rank1 = 0u32;
        for _ in 0..n {
            let k = d.sample(&mut r);
            assert!((1..=1000).contains(&k));
            if k == 1 {
                rank1 += 1;
            }
        }
        // H(1000) ≈ 7.485, so P(rank 1) ≈ 0.1336.
        let frac = rank1 as f64 / n as f64;
        assert!((frac - 0.1336).abs() < 0.01, "{frac}");
    }

    #[test]
    fn samplers_are_reproducible() {
        let d = ExpMixtureSampler::new(&[(0.5, 1.0), (0.5, 10.0)]);
        let a: Vec<f64> = {
            let mut r = rng(99);
            (0..20).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(99);
            (0..20).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
