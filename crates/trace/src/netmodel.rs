//! Timing model: fills the Table 1 timing fields (`T_chunk`, `T_srv`, RTT)
//! and spaces chunk requests with the device-dependent client processing
//! time `T_clt`.
//!
//! These are the paper's *measured* §4 inputs, planted parametrically:
//! RTT median ≈ 100 ms (Fig. 14), `T_srv` ≈ 100 ms regardless of device
//! (Fig. 16a,b), per-chunk upload times with the Fig. 12a Android/iOS gap
//! (medians ≈ 4.1 s vs 1.6 s), and Android's heavier `T_clt` tail
//! (Fig. 16b: 90th percentile ≈ 1 s on retrieval). The *mechanistic*
//! explanation of those gaps (slow-start restart after idle) lives in the
//! `mcs-net` simulator; the trace generator only needs log-faithful values.

use rand::{Rng, RngExt};

use mcs_stats::rng::LogNormal;

use crate::config::NetworkModel;
use crate::record::{DeviceType, Direction, CHUNK_SIZE};

/// Per-device, per-direction client processing time medians/sigmas, ms.
/// (Fig. 16: Android spends ≈ 90 ms more than iOS preparing upload chunks;
/// retrieval medians are similar but Android's tail reaches ≈ 1 s.)
#[derive(Debug, Clone, Copy)]
pub struct CltModel {
    /// Median T_clt for Android uploads.
    pub upload_android_median: f64,
    /// Median T_clt for iOS uploads.
    pub upload_ios_median: f64,
    /// σ of ln T_clt for uploads.
    pub upload_sigma: f64,
    /// Median T_clt for Android downloads.
    pub download_android_median: f64,
    /// Median T_clt for iOS downloads.
    pub download_ios_median: f64,
    /// σ of ln T_clt for Android downloads (heavy tail).
    pub download_android_sigma: f64,
    /// σ of ln T_clt for iOS downloads.
    pub download_ios_sigma: f64,
}

impl Default for CltModel {
    fn default() -> Self {
        Self {
            upload_android_median: 190.0,
            upload_ios_median: 100.0,
            upload_sigma: 0.8,
            download_android_median: 110.0,
            download_ios_median: 95.0,
            download_android_sigma: 1.5,
            download_ios_sigma: 0.8,
        }
    }
}

/// Stateless sampler bundle built from a [`NetworkModel`].
#[derive(Debug, Clone)]
pub struct TimingSampler {
    rtt: LogNormal,
    srv: LogNormal,
    chunk_up_android: LogNormal,
    chunk_up_ios: LogNormal,
    chunk_down_android: LogNormal,
    chunk_down_ios: LogNormal,
    chunk_pc: LogNormal,
    clt: CltModel,
    proxied_frac: f64,
    window_bound_frac: f64,
}

impl TimingSampler {
    /// Builds the samplers from the configuration.
    pub fn new(net: &NetworkModel) -> Self {
        Self {
            rtt: LogNormal::from_median(net.rtt_median_ms, net.rtt_sigma),
            srv: LogNormal::from_median(net.srv_median_ms, net.srv_sigma),
            chunk_up_android: LogNormal::from_median(
                net.upload_chunk_median_ms_android,
                net.chunk_sigma,
            ),
            chunk_up_ios: LogNormal::from_median(net.upload_chunk_median_ms_ios, net.chunk_sigma),
            chunk_down_android: LogNormal::from_median(
                net.download_chunk_median_ms_android,
                net.chunk_sigma,
            ),
            chunk_down_ios: LogNormal::from_median(
                net.download_chunk_median_ms_ios,
                net.chunk_sigma,
            ),
            chunk_pc: LogNormal::from_median(net.pc_chunk_median_ms, net.chunk_sigma),
            clt: CltModel::default(),
            proxied_frac: net.proxied_frac,
            window_bound_frac: net.window_bound_frac,
        }
    }

    /// Draws the average RTT for a flow (per session; all chunks of a
    /// session share the connection's average RTT, as the Table 1 field is
    /// a per-connection average).
    pub fn flow_rtt_ms(&self, rng: &mut impl Rng) -> f64 {
        self.rtt.sample(rng)
    }

    /// Whether a session's requests traverse an HTTP proxy.
    pub fn proxied(&self, rng: &mut impl Rng) -> bool {
        rng.random::<f64>() < self.proxied_frac
    }

    /// Upstream processing time `T_srv` for one chunk, ms.
    pub fn srv_ms(&self, rng: &mut impl Rng) -> f64 {
        self.srv.sample(rng)
    }

    /// Pure transmission time `t_tran` for one chunk, ms. Scales linearly
    /// with the chunk's size (the final chunk of a file is usually short)
    /// and correlates with the flow RTT: upload throughput is receive-
    /// window-bound (§4.1), so chunk time ∝ RTT around the configured
    /// median.
    pub fn chunk_tran_ms(
        &self,
        rng: &mut impl Rng,
        device: DeviceType,
        dir: Direction,
        chunk_bytes: u64,
        flow_rtt_ms: f64,
        rtt_median_ms: f64,
    ) -> f64 {
        let base = match (device, dir) {
            (DeviceType::Android, Direction::Store) => self.chunk_up_android.sample(rng),
            (DeviceType::Ios, Direction::Store) => self.chunk_up_ios.sample(rng),
            (DeviceType::Android, Direction::Retrieve) => self.chunk_down_android.sample(rng),
            (DeviceType::Ios, Direction::Retrieve) => self.chunk_down_ios.sample(rng),
            (DeviceType::Pc, _) => self.chunk_pc.sample(rng),
        };
        let size_factor = (chunk_bytes as f64 / CHUNK_SIZE as f64).max(0.02);
        // Blend: half the variation tracks the flow RTT (window-bound),
        // half is the device/link draw itself.
        let rtt_factor = (flow_rtt_ms / rtt_median_ms).sqrt();
        let sampled = base * size_factor * rtt_factor;
        // Uploads can never beat the 64 KB receive-window clamp (§4.1):
        // moving `chunk_bytes` needs at least `bytes/65535` round trips.
        let floor = match dir {
            Direction::Store => chunk_bytes as f64 / 65_535.0 * flow_rtt_ms,
            Direction::Retrieve => 0.0,
        };
        // A sizeable share of upload chunks run *exactly* window-bound
        // (fast client, clean path): they transmit at rwnd/RTT and pile up
        // at swnd = 64 KB — the Fig. 15 point mass.
        if dir == Direction::Store && rng.random::<f64>() < self.window_bound_frac {
            return (floor * (1.0 + 0.08 * rng.random::<f64>())).max(1.0);
        }
        sampled.max(floor).max(1.0)
    }

    /// Client processing time `T_clt` separating consecutive chunks, ms.
    pub fn clt_ms(&self, rng: &mut impl Rng, device: DeviceType, dir: Direction) -> f64 {
        let (median, sigma) = match (device, dir) {
            (DeviceType::Android, Direction::Store) => {
                (self.clt.upload_android_median, self.clt.upload_sigma)
            }
            (DeviceType::Ios, Direction::Store) => {
                (self.clt.upload_ios_median, self.clt.upload_sigma)
            }
            (DeviceType::Android, Direction::Retrieve) => (
                self.clt.download_android_median,
                self.clt.download_android_sigma,
            ),
            (DeviceType::Ios, Direction::Retrieve) => {
                (self.clt.download_ios_median, self.clt.download_ios_sigma)
            }
            (DeviceType::Pc, _) => (40.0, 0.5),
        };
        LogNormal::from_median(median, sigma).sample(rng)
    }

    /// Front-end processing time for a metadata-only file operation, ms.
    pub fn file_op_ms(&self, rng: &mut impl Rng) -> f64 {
        LogNormal::from_median(15.0, 0.5).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_stats::rng::stream_rng;

    fn sampler() -> TimingSampler {
        TimingSampler::new(&NetworkModel::default())
    }

    fn median_of(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    }

    #[test]
    fn rtt_median_near_config() {
        let s = sampler();
        let mut rng = stream_rng(1, 0);
        let xs: Vec<f64> = (0..20_000).map(|_| s.flow_rtt_ms(&mut rng)).collect();
        let med = median_of(xs);
        assert!((med - 100.0).abs() < 6.0, "median {med}");
    }

    #[test]
    fn upload_chunk_android_slower_than_ios() {
        let s = sampler();
        let mut rng = stream_rng(2, 0);
        let android: Vec<f64> = (0..20_000)
            .map(|_| {
                s.chunk_tran_ms(
                    &mut rng,
                    DeviceType::Android,
                    Direction::Store,
                    CHUNK_SIZE,
                    100.0,
                    100.0,
                )
            })
            .collect();
        let ios: Vec<f64> = (0..20_000)
            .map(|_| {
                s.chunk_tran_ms(
                    &mut rng,
                    DeviceType::Ios,
                    Direction::Store,
                    CHUNK_SIZE,
                    100.0,
                    100.0,
                )
            })
            .collect();
        let ma = median_of(android);
        let mi = median_of(ios);
        assert!(
            ma / mi > 2.0 && ma / mi < 3.5,
            "median ratio {} (android {ma}, ios {mi})",
            ma / mi
        );
        // Absolute scale tracks Fig. 12a's medians (≈ 4.1 s vs 1.6 s),
        // shifted down by the window-bound fast-chunk mass (Fig. 15).
        assert!((2000.0..4600.0).contains(&ma), "android median {ma}");
        assert!((900.0..1800.0).contains(&mi), "ios median {mi}");
    }

    #[test]
    fn partial_chunk_scales_down() {
        let s = sampler();
        let mut rng = stream_rng(3, 0);
        let full: f64 = (0..2000)
            .map(|_| {
                s.chunk_tran_ms(
                    &mut rng,
                    DeviceType::Ios,
                    Direction::Store,
                    CHUNK_SIZE,
                    100.0,
                    100.0,
                )
            })
            .sum::<f64>()
            / 2000.0;
        let half: f64 = (0..2000)
            .map(|_| {
                s.chunk_tran_ms(
                    &mut rng,
                    DeviceType::Ios,
                    Direction::Store,
                    CHUNK_SIZE / 2,
                    100.0,
                    100.0,
                )
            })
            .sum::<f64>()
            / 2000.0;
        assert!(
            (half / full - 0.5).abs() < 0.1,
            "half-chunk ratio {}",
            half / full
        );
    }

    #[test]
    fn rtt_correlation_increases_chunk_time() {
        let s = sampler();
        let mut rng = stream_rng(4, 0);
        let slow: f64 = (0..4000)
            .map(|_| {
                s.chunk_tran_ms(
                    &mut rng,
                    DeviceType::Ios,
                    Direction::Store,
                    CHUNK_SIZE,
                    400.0,
                    100.0,
                )
            })
            .sum::<f64>()
            / 4000.0;
        let fast: f64 = (0..4000)
            .map(|_| {
                s.chunk_tran_ms(
                    &mut rng,
                    DeviceType::Ios,
                    Direction::Store,
                    CHUNK_SIZE,
                    25.0,
                    100.0,
                )
            })
            .sum::<f64>()
            / 4000.0;
        assert!(slow > fast * 2.0, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn clt_android_upload_heavier() {
        let s = sampler();
        let mut rng = stream_rng(5, 0);
        let android: f64 = (0..20_000)
            .map(|_| s.clt_ms(&mut rng, DeviceType::Android, Direction::Store))
            .sum::<f64>()
            / 20_000.0;
        let ios: f64 = (0..20_000)
            .map(|_| s.clt_ms(&mut rng, DeviceType::Ios, Direction::Store))
            .sum::<f64>()
            / 20_000.0;
        // Fig. 16a: Android ≈ +90 ms mean on uploads.
        assert!(
            android - ios > 50.0 && android - ios < 250.0,
            "android {android} ios {ios}"
        );
    }

    #[test]
    fn clt_android_download_tail() {
        let s = sampler();
        let mut rng = stream_rng(6, 0);
        let mut android: Vec<f64> = (0..20_000)
            .map(|_| s.clt_ms(&mut rng, DeviceType::Android, Direction::Retrieve))
            .collect();
        let mut ios: Vec<f64> = (0..20_000)
            .map(|_| s.clt_ms(&mut rng, DeviceType::Ios, Direction::Retrieve))
            .collect();
        android.sort_by(f64::total_cmp);
        ios.sort_by(f64::total_cmp);
        let p90a = android[18_000];
        let p90i = ios[18_000];
        // Fig. 16b: Android's p90 is near 1 s, an order beyond iOS's.
        assert!(p90a > 500.0, "android p90 {p90a}");
        assert!(p90a / p90i > 2.5, "p90 ratio {}", p90a / p90i);
        // Medians similar (within 2×).
        let ratio = android[10_000] / ios[10_000];
        assert!(ratio > 0.6 && ratio < 2.0, "median ratio {ratio}");
    }

    #[test]
    fn proxied_fraction() {
        let s = sampler();
        let mut rng = stream_rng(7, 0);
        let n = 50_000;
        let hits = (0..n).filter(|_| s.proxied(&mut rng)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "{frac}");
    }

    #[test]
    fn file_op_cheap() {
        let s = sampler();
        let mut rng = stream_rng(8, 0);
        let mean: f64 = (0..5000).map(|_| s.file_op_ms(&mut rng)).sum::<f64>() / 5000.0;
        assert!(mean < 50.0, "{mean}");
    }
}
