//! Per-user session planning.
//!
//! Turns a [`UserProfile`]'s file budgets and engagement pattern into a
//! list of [`SessionPlan`]s: *when* the user shows up, from *which device*,
//! to move *which files in which direction*. The actual log records
//! (timestamps of individual operations/chunks) are produced by the
//! generator from these plans.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use mcs_stats::rng::{Categorical, Exponential, Zipf};

use crate::config::TraceConfig;
use crate::population::{ClientGroup, UserClass, UserProfile};
use crate::record::{DeviceType, Direction};

/// A planned file transfer inside a session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedFile {
    /// Store or retrieve.
    pub direction: Direction,
    /// File size in bytes.
    pub size: u64,
}

/// A planned session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionPlan {
    /// Session start, ms since trace start.
    pub start_ms: u64,
    /// Device used.
    pub device_id: u64,
    /// Platform of that device.
    pub device_type: DeviceType,
    /// Files to move, in issue order.
    pub files: Vec<PlannedFile>,
}

impl SessionPlan {
    /// Total bytes stored in the session.
    pub fn store_bytes(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| f.direction == Direction::Store)
            .map(|f| f.size)
            .sum()
    }

    /// Total bytes retrieved in the session.
    pub fn retrieve_bytes(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| f.direction == Direction::Retrieve)
            .map(|f| f.size)
            .sum()
    }
}

/// Pre-built samplers shared across users (immutable; cheap to reference).
pub struct SessionSamplers {
    files_per_session: Zipf,
    store_component: Categorical,
    store_means: Vec<f64>,
    retrieve_component: Categorical,
    retrieve_means: Vec<f64>,
    hour_of_day: Categorical,
}

impl SessionSamplers {
    /// Builds the samplers from a validated configuration.
    pub fn new(cfg: &TraceConfig) -> Self {
        let store_w: Vec<f64> = cfg.store_sizes.components.iter().map(|&(w, _)| w).collect();
        let store_m: Vec<f64> = cfg.store_sizes.components.iter().map(|&(_, m)| m).collect();
        let ret_w: Vec<f64> = cfg
            .retrieve_sizes
            .components
            .iter()
            .map(|&(w, _)| w)
            .collect();
        let ret_m: Vec<f64> = cfg
            .retrieve_sizes
            .components
            .iter()
            .map(|&(_, m)| m)
            .collect();
        Self {
            files_per_session: Zipf::new(
                cfg.session.files_per_session_max,
                cfg.session.files_per_session_zipf_s,
            ),
            store_component: Categorical::new(&store_w),
            store_means: store_m,
            retrieve_component: Categorical::new(&ret_w),
            retrieve_means: ret_m,
            hour_of_day: Categorical::new(&cfg.diurnal.hour_weights),
        }
    }
}

/// Plans all sessions of one user. Deterministic given the RNG state.
pub fn plan_user_sessions(
    cfg: &TraceConfig,
    samplers: &SessionSamplers,
    user: &UserProfile,
    rng: &mut impl Rng,
) -> Vec<SessionPlan> {
    let mut active_days = draw_active_days(cfg, user, rng);
    // A day with zero file operations is invisible in the logs: keep only
    // as many active days as the user has files to move, so planned
    // returns translate into *observable* returns (Fig. 8).
    let total_budget = (user.store_files + user.retrieve_files).max(1) as usize;
    active_days.truncate(total_budget.max(1));
    let store_alloc = allocate_budget(user.store_files, active_days.len(), rng);
    // Mobile+PC sync users want retrievals near their uploads — bias the
    // retrieval allocation toward store-heavy days (Fig. 9's day-0 spike).
    let retrieve_alloc = if user.group == ClientGroup::MobilePc
        && rng.random::<f64>() < cfg.engagement.pc_sync_same_day_prob
    {
        mirror_allocation(user.retrieve_files, &store_alloc)
    } else {
        allocate_budget(user.retrieve_files, active_days.len(), rng)
    };

    let mut plans = Vec::new();
    for (i, &day) in active_days.iter().enumerate() {
        plan_day(
            cfg,
            samplers,
            user,
            day,
            store_alloc[i],
            retrieve_alloc[i],
            rng,
            &mut plans,
        );
    }
    // Chronological order is a published guarantee: the storage replay's
    // plan phase walks each user's sessions in this order and relies on it
    // to match the per-user execution order of the shared `mcs-sim`
    // timeline (DESIGN.md §10.4). The stable sort keeps same-millisecond
    // sessions in planning order.
    plans.sort_by_key(|p| p.start_ms);
    plans
}

/// Days (0-based) on which the user is active. The process is
/// *stationary*: the observation week is a window onto ongoing behaviour,
/// not the user's first week ever — anchoring everyone's start inside the
/// window would fabricate a ramp that Fig. 1 does not show. One-shot users
/// appear exactly once (uniform position); regulars are active each day
/// independently with a rate that grows with device count (syncing).
fn draw_active_days(cfg: &TraceConfig, user: &UserProfile, rng: &mut impl Rng) -> Vec<u32> {
    if user.oneshot {
        return vec![user.first_day];
    }
    let base = if user.mobile_device_count() > 1 || user.uses_pc() {
        cfg.engagement.daily_return_prob_multi
    } else {
        cfg.engagement.daily_return_prob
    };
    let mut days = Vec::new();
    for d in 0..cfg.horizon_days {
        let mut p = base;
        if is_weekend(d) {
            p = (p * cfg.diurnal.weekend_factor).min(0.95);
        }
        if rng.random::<f64>() < p {
            days.push(d);
        }
    }
    if days.is_empty() {
        days.push(user.first_day);
    }
    days
}

/// Day-of-week helper; the trace starts on a Monday like the paper's week
/// (Fig. 1 runs M..Su), so days 5 and 6 are the weekend.
pub fn is_weekend(day: u32) -> bool {
    day % 7 >= 5
}

/// Splits `total` files across `n_days` with random proportions (every
/// active day gets at least one file while supply lasts).
fn allocate_budget(total: u64, n_days: usize, rng: &mut impl Rng) -> Vec<u64> {
    assert!(n_days > 0, "allocation needs at least one day");
    if total == 0 {
        return vec![0; n_days];
    }
    // Every active day performs at least one operation when supply allows
    // (users who show up do something), the rest spread randomly.
    let base = if total >= n_days as u64 { 1 } else { 0 };
    let mut out = vec![base; n_days];
    let mut remaining = total - base * n_days as u64;
    if base == 0 {
        // Fewer files than days: give the first `total` days one each.
        for slot in out.iter_mut().take(total as usize) {
            *slot = 1;
        }
        remaining = 0;
    }
    if remaining > 0 {
        let weights: Vec<f64> = (0..n_days).map(|_| rng.random::<f64>() + 0.25).collect();
        let wsum: f64 = weights.iter().sum();
        let mut assigned = 0u64;
        for (slot, w) in out.iter_mut().zip(&weights) {
            let extra = ((w / wsum) * remaining as f64).floor() as u64;
            *slot += extra;
            assigned += extra;
        }
        out[0] += remaining - assigned;
    }
    out
}

/// Gives the retrieval budget the same day-shape as the storage allocation
/// (same-day sync).
fn mirror_allocation(total: u64, store_alloc: &[u64]) -> Vec<u64> {
    let store_total: u64 = store_alloc.iter().sum();
    if total == 0 || store_total == 0 {
        let mut v = vec![0; store_alloc.len()];
        if total > 0 {
            v[0] = total;
        }
        return v;
    }
    let mut out: Vec<u64> = store_alloc
        .iter()
        .map(|&s| (s as f64 / store_total as f64 * total as f64).floor() as u64)
        .collect();
    let assigned: u64 = out.iter().sum();
    out[0] += total - assigned;
    out
}

#[allow(clippy::too_many_arguments)]
fn plan_day(
    cfg: &TraceConfig,
    samplers: &SessionSamplers,
    user: &UserProfile,
    day: u32,
    mut store_left: u64,
    mut retrieve_left: u64,
    rng: &mut impl Rng,
    out: &mut Vec<SessionPlan>,
) {
    // Occasional users store exactly one sub-MB file.
    let occasional = user.class == UserClass::Occasional;
    let mut guard = 0;
    while (store_left > 0 || retrieve_left > 0) && guard < 10_000 {
        guard += 1;
        let start_ms = draw_session_start(samplers, day, rng);
        let (device_id, device_type) = pick_device(user, rng);

        // Direction of this session.
        let both = store_left > 0 && retrieve_left > 0;
        let mixed_session =
            both && user.class == UserClass::Mixed && rng.random::<f64>() < MIXED_SESSION_PROB;
        let store_session = if both {
            let p = store_left as f64 / (store_left + retrieve_left) as f64;
            rng.random::<f64>() < p
        } else {
            store_left > 0
        };

        // Heavy days batch proportionally more files per session (a user
        // backing up 500 photos does not open 150 separate sessions); this
        // keeps sessions-per-day bounded so same-day session gaps do not
        // swamp the Fig. 3 between-session mode.
        let day_load = store_left + retrieve_left;
        let batch_scale = (day_load / 4).max(1);
        let mut files = Vec::new();
        if store_session || mixed_session {
            let comp = samplers.store_component.sample(rng);
            let mean = samplers.store_means[comp];
            // Files within one session share a typical size (one camera's
            // photos, one screen's recordings): the *session* draws the
            // scale from the exponential component; individual files jitter
            // around it. This keeps per-session averages on the Table 2
            // mixture regardless of batch size.
            let session_scale = Exponential::new(mean).sample(rng);
            // Size and count anti-correlate: photo sessions (component 0)
            // batch many files; video sessions upload one to three large
            // recordings. This is what keeps the Fig. 5b volume-vs-files
            // slope at the ~1.5 MB photo size.
            let n = if comp == 0 {
                (draw_session_file_count(samplers, rng) * batch_scale)
                    .min(store_left)
                    .min(400)
            } else {
                (1 + (rng.random::<f64>() * 3.0) as u64).min(store_left)
            };
            for _ in 0..n {
                let size = if occasional {
                    50_000 + (rng.random::<f64>() * 650_000.0) as u64
                } else {
                    draw_file_size_around(session_scale, rng)
                };
                files.push(PlannedFile {
                    direction: Direction::Store,
                    size,
                });
            }
            store_left -= n;
        }
        if (!store_session && (!files.is_empty() || retrieve_left > 0)) || mixed_session {
            // Retrieval leg: either the whole session or the tail of a
            // mixed session.
            let comp = samplers.retrieve_component.sample(rng);
            let mean = samplers.retrieve_means[comp];
            let session_scale = Exponential::new(mean).sample(rng);
            let n = if mixed_session {
                retrieve_left.min(1 + (rng.random::<f64>() * 2.0) as u64)
            } else {
                let raw = if comp == 0 {
                    // Photo-sized component: any batch size.
                    (draw_session_file_count(samplers, rng) * batch_scale).min(400)
                } else {
                    // Video-sized components: one to three large objects
                    // (this is what makes Fig. 5c's one-file sessions huge).
                    1 + (rng.random::<f64>() * 3.0) as u64
                };
                raw.min(retrieve_left)
            };
            for _ in 0..n {
                files.push(PlannedFile {
                    direction: Direction::Retrieve,
                    size: draw_file_size_around(session_scale, rng),
                });
            }
            retrieve_left -= n;
        }

        if files.is_empty() {
            // Nothing left to plan in the chosen direction (e.g. the
            // session drew 0 because budgets ran dry mid-loop).
            break;
        }
        out.push(SessionPlan {
            start_ms,
            device_id,
            device_type,
            files,
        });
        let _ = cfg;
    }
}

/// Probability that a session of a mixed-class user carries both directions
/// (calibrated so ~2 % of *all* sessions are mixed, §3.1.1).
const MIXED_SESSION_PROB: f64 = 0.15;

fn draw_session_start(samplers: &SessionSamplers, day: u32, rng: &mut impl Rng) -> u64 {
    let hour = samplers.hour_of_day.sample(rng) as u64;
    let within_hour_ms = (rng.random::<f64>() * 3_600_000.0) as u64;
    day as u64 * 86_400_000 + hour * 3_600_000 + within_hour_ms
}

fn draw_session_file_count(samplers: &SessionSamplers, rng: &mut impl Rng) -> u64 {
    samplers.files_per_session.sample(rng) as u64
}

/// Draws one file size jittered around the session's typical size (σ of
/// ln ≈ 0.3: same-camera photos vary by tens of percent, not decades).
fn draw_file_size_around(session_scale: f64, rng: &mut impl Rng) -> u64 {
    let s = mcs_stats::rng::LogNormal::from_median(session_scale.max(1_000.0), 0.15).sample(rng);
    (s.round() as u64).max(1_000) // at least 1 KB: empty files don't transfer
}

fn pick_device(user: &UserProfile, rng: &mut impl Rng) -> (u64, DeviceType) {
    let mobile: Vec<_> = user
        .devices
        .iter()
        .filter(|d| d.device_type.is_mobile())
        .collect();
    let pc = user
        .devices
        .iter()
        .find(|d| d.device_type == DeviceType::Pc);
    match (mobile.is_empty(), pc) {
        (true, Some(p)) => (p.id, p.device_type),
        (false, Some(p)) if rng.random::<f64>() < PC_SESSION_PROB => (p.id, p.device_type),
        (false, _) => {
            let d = mobile[rng.random_range(0..mobile.len())];
            (d.id, d.device_type)
        }
        (true, None) => unreachable!("users always have at least one device"),
    }
}

/// Share of a mobile+PC user's sessions that run on the PC client.
const PC_SESSION_PROB: f64 = 0.40;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::build_population;
    use mcs_stats::rng::stream_rng;

    fn setup() -> (TraceConfig, SessionSamplers, Vec<UserProfile>) {
        let cfg = TraceConfig::small(42);
        let samplers = SessionSamplers::new(&cfg);
        let users = build_population(&cfg);
        (cfg, samplers, users)
    }

    #[test]
    fn budgets_are_fully_planned() {
        let (cfg, samplers, users) = setup();
        let mut rng = stream_rng(1, 1);
        for user in users.iter().take(300) {
            let plans = plan_user_sessions(&cfg, &samplers, user, &mut rng);
            let stored: u64 = plans
                .iter()
                .flat_map(|p| &p.files)
                .filter(|f| f.direction == Direction::Store)
                .count() as u64;
            let retrieved: u64 = plans
                .iter()
                .flat_map(|p| &p.files)
                .filter(|f| f.direction == Direction::Retrieve)
                .count() as u64;
            assert_eq!(stored, user.store_files, "user {}", user.user_id);
            assert_eq!(retrieved, user.retrieve_files, "user {}", user.user_id);
        }
    }

    #[test]
    fn sessions_are_time_ordered_and_in_horizon() {
        let (cfg, samplers, users) = setup();
        let mut rng = stream_rng(2, 1);
        for user in users.iter().take(200) {
            let plans = plan_user_sessions(&cfg, &samplers, user, &mut rng);
            for w in plans.windows(2) {
                assert!(w[0].start_ms <= w[1].start_ms);
            }
            for p in &plans {
                assert!(p.start_ms < cfg.horizon_ms());
            }
        }
    }

    #[test]
    fn oneshot_users_active_one_day_only() {
        let (cfg, samplers, users) = setup();
        let mut rng = stream_rng(3, 1);
        for user in users.iter().filter(|u| u.oneshot).take(100) {
            let plans = plan_user_sessions(&cfg, &samplers, user, &mut rng);
            let days: std::collections::HashSet<u64> =
                plans.iter().map(|p| p.start_ms / 86_400_000).collect();
            assert!(days.len() <= 1, "one-shot user on {} days", days.len());
            if let Some(&d) = days.iter().next() {
                assert_eq!(d as u32, user.first_day);
            }
        }
    }

    #[test]
    fn devices_belong_to_user() {
        let (cfg, samplers, users) = setup();
        let mut rng = stream_rng(4, 1);
        for user in users.iter().take(200) {
            let ids: Vec<u64> = user.devices.iter().map(|d| d.id).collect();
            for p in plan_user_sessions(&cfg, &samplers, user, &mut rng) {
                assert!(ids.contains(&p.device_id));
            }
        }
    }

    #[test]
    fn occasional_users_store_under_one_mb() {
        let (cfg, samplers, users) = setup();
        let mut rng = stream_rng(5, 1);
        for user in users
            .iter()
            .filter(|u| u.class == UserClass::Occasional)
            .take(100)
        {
            let plans = plan_user_sessions(&cfg, &samplers, user, &mut rng);
            let total: u64 = plans
                .iter()
                .map(|p| p.store_bytes() + p.retrieve_bytes())
                .sum();
            assert!(total < 1_000_000, "occasional user moved {total} bytes");
        }
    }

    #[test]
    fn session_type_mix_roughly_write_dominated() {
        let (cfg, samplers, users) = setup();
        let mut rng = stream_rng(6, 1);
        let mut store_only = 0u64;
        let mut retrieve_only = 0u64;
        let mut mixed = 0u64;
        for user in &users {
            for p in plan_user_sessions(&cfg, &samplers, user, &mut rng) {
                let s = p.store_bytes() > 0;
                let r = p.retrieve_bytes() > 0;
                match (s, r) {
                    (true, false) => store_only += 1,
                    (false, true) => retrieve_only += 1,
                    (true, true) => mixed += 1,
                    (false, false) => unreachable!("empty session planned"),
                }
            }
        }
        let total = (store_only + retrieve_only + mixed) as f64;
        let fs = store_only as f64 / total;
        let fm = mixed as f64 / total;
        assert!(fs > 0.55, "store-only fraction {fs}");
        assert!(fm < 0.08, "mixed fraction {fm}");
    }

    #[test]
    fn mirror_allocation_shapes_match() {
        let store = vec![10u64, 0, 30, 60];
        let ret = mirror_allocation(10, &store);
        assert_eq!(ret.iter().sum::<u64>(), 10);
        assert_eq!(ret[1], 0);
        assert!(ret[3] >= ret[2]);
    }

    #[test]
    fn allocate_budget_conserves_total() {
        let mut rng = stream_rng(7, 1);
        for total in [0u64, 1, 7, 100, 12345] {
            for days in [1usize, 2, 5, 7] {
                let alloc = allocate_budget(total, days, &mut rng);
                assert_eq!(alloc.len(), days);
                assert_eq!(alloc.iter().sum::<u64>(), total);
            }
        }
    }

    #[test]
    fn weekend_helper() {
        assert!(!is_weekend(0)); // Monday
        assert!(!is_weekend(4)); // Friday
        assert!(is_weekend(5)); // Saturday
        assert!(is_weekend(6)); // Sunday
        assert!(!is_weekend(7)); // next Monday
    }
}
