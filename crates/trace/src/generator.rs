//! The trace generator: session plans → Table 1 log records.
//!
//! Produces, per session (§2.1 protocol):
//!
//! 1. a burst of *file operation* requests at the session start, spaced by
//!    the within-session gap distribution (Fig. 3's ≈ 10 s mode; the burst
//!    itself is Fig. 4's "users front-load their operations"),
//! 2. the *chunk requests* of each file, sequential within the session's
//!    connection, each spaced by its own processing time plus the client's
//!    `T_clt` think time (Fig. 11's timeline).
//!
//! Generation is streaming: [`TraceGenerator::user_records`] materialises
//! one user at a time, so paper-scale traces never need to fit in memory;
//! [`TraceGenerator::generate_sorted`] collects and time-sorts everything
//! for small configurations.

use rand::{Rng, RngExt};
use rand_chacha::ChaCha8Rng;

use mcs_obs::{Obs, Registry};
use mcs_stats::rng::{stream_rng, LogNormal};

use crate::blocks::{effective_threads, shard_ranges, BlockSource};
use crate::config::TraceConfig;
use crate::netmodel::TimingSampler;
use crate::population::{build_population, UserProfile};
use crate::record::{chunk_sizes, LogRecord, RequestType};
use crate::sessions::{plan_user_sessions, SessionPlan, SessionSamplers};

/// RNG stream ids (population uses stream 1 in `population.rs`).
const STREAM_USER_BASE: u64 = 1_000;

/// Deterministic synthetic-trace generator.
///
/// ```
/// use mcs_trace::{TraceConfig, TraceGenerator};
///
/// let gen = TraceGenerator::new(TraceConfig {
///     mobile_users: 50,
///     pc_only_users: 10,
///     ..TraceConfig::default()
/// }).unwrap();
/// let records: usize = gen.iter_user_records().map(|b| b.len()).sum();
/// assert!(records > 100);
/// // Same seed, same trace — bit for bit.
/// let again: usize = gen.iter_user_records().map(|b| b.len()).sum();
/// assert_eq!(records, again);
/// ```
pub struct TraceGenerator {
    cfg: TraceConfig,
    users: Vec<UserProfile>,
    samplers: SessionSamplers,
    timing: TimingSampler,
}

impl TraceGenerator {
    /// Validates the configuration and synthesises the population.
    pub fn new(cfg: TraceConfig) -> Result<Self, String> {
        cfg.validate()?;
        let users = build_population(&cfg);
        let samplers = SessionSamplers::new(&cfg);
        let timing = TimingSampler::new(&cfg.network);
        Ok(Self {
            cfg,
            users,
            samplers,
            timing,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// The synthesised user population.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Per-user RNG — independent of generation order, so users can be
    /// generated lazily, in parallel, or individually with identical output.
    fn user_rng(&self, user_id: u64) -> ChaCha8Rng {
        stream_rng(self.cfg.seed, STREAM_USER_BASE + user_id)
    }

    /// Session plans for one user.
    pub fn user_sessions(&self, user: &UserProfile) -> Vec<SessionPlan> {
        let mut rng = self.user_rng(user.user_id);
        plan_user_sessions(&self.cfg, &self.samplers, user, &mut rng)
    }

    /// All log records of one user, time-ordered.
    pub fn user_records(&self, user: &UserProfile) -> Vec<LogRecord> {
        let mut rng = self.user_rng(user.user_id);
        let plans = plan_user_sessions(&self.cfg, &self.samplers, user, &mut rng);
        let mut records = Vec::new();
        for plan in &plans {
            self.emit_session(user, plan, &mut rng, &mut records);
        }
        records.sort_by_key(|r| r.timestamp_ms);
        records
    }

    /// Iterator over per-user record blocks (streaming-friendly).
    pub fn iter_user_records(&self) -> impl Iterator<Item = Vec<LogRecord>> + '_ {
        self.users.iter().map(|u| self.user_records(u))
    }

    /// All per-user record blocks, generated in parallel over
    /// [`TraceConfig::threads`] workers. Each user draws from its own RNG
    /// stream, so the result is identical to collecting
    /// [`Self::iter_user_records`] regardless of the thread count.
    pub fn par_user_records(&self) -> Vec<Vec<LogRecord>> {
        self.par_user_records_observed(&mut Obs::new())
    }

    /// [`Self::par_user_records`] that also reports into `obs`. Each
    /// worker fills a *private* registry (`gen.users` / `gen.records`
    /// counters, `gen.user_records` per-block histogram) which merge by
    /// name in ascending shard order — so the metric snapshot is
    /// bit-identical at any thread count. The trace records per-shard
    /// record counts and the merge fan-in, which describe this particular
    /// execution.
    pub fn par_user_records_observed(&self, obs: &mut Obs) -> Vec<Vec<LogRecord>> {
        let ranges = shard_ranges(self.users.len(), effective_threads(self.cfg.threads));
        if ranges.len() <= 1 {
            let blocks: Vec<Vec<LogRecord>> = self.iter_user_records().collect();
            observe_blocks(&mut obs.metrics, &blocks);
            obs.trace.event(1, "gen.merge.fan_in", 1);
            return blocks;
        }
        let mut shards: Vec<(Vec<Vec<LogRecord>>, Registry)> = Vec::with_capacity(ranges.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let blocks: Vec<Vec<LogRecord>> = self.users[range]
                            .iter()
                            .map(|u| self.user_records(u))
                            .collect();
                        let mut metrics = Registry::new();
                        observe_blocks(&mut metrics, &blocks);
                        (blocks, metrics)
                    })
                })
                .collect();
            for h in handles {
                // mcs-lint: allow(panic, join only fails if a worker panicked; re-raise it)
                shards.push(h.join().expect("generator worker panicked"));
            }
        });
        let fan_in = shards.len() as u64;
        for (i, (blocks, metrics)) in shards.iter().enumerate() {
            let n: u64 = blocks.iter().map(|b| b.len() as u64).sum();
            obs.trace.event(i as u64, "gen.shard.records", n);
            obs.metrics.merge(metrics);
        }
        obs.trace.event(fan_in, "gen.merge.fan_in", fan_in);
        shards.into_iter().flat_map(|(blocks, _)| blocks).collect()
    }

    /// Generates everything and sorts globally by timestamp — convenient
    /// for small configs and for writing trace files. Generation and
    /// sorting run on [`TraceConfig::threads`] workers over contiguous user
    /// shards; the per-shard sorted runs are k-way merged, so the output is
    /// bit-identical to the single-threaded sort for any thread count.
    pub fn generate_sorted(&self) -> Vec<LogRecord> {
        self.generate_sorted_observed(&mut Obs::new())
    }

    /// [`Self::generate_sorted`] that also reports into `obs`, with the
    /// same per-shard private registries merged in shard order as
    /// [`Self::par_user_records_observed`] — metric snapshots are
    /// identical at any thread count, while the trace records the
    /// per-shard run sizes and k-way merge fan-in of this execution.
    pub fn generate_sorted_observed(&self, obs: &mut Obs) -> Vec<LogRecord> {
        let ranges = shard_ranges(self.users.len(), effective_threads(self.cfg.threads));
        if ranges.len() <= 1 {
            let blocks: Vec<Vec<LogRecord>> = self.iter_user_records().collect();
            observe_blocks(&mut obs.metrics, &blocks);
            obs.trace.event(1, "gen.merge.fan_in", 1);
            let mut all: Vec<LogRecord> = blocks.into_iter().flatten().collect();
            all.sort_by_key(sort_key);
            return all;
        }
        let mut shards: Vec<(Vec<LogRecord>, Registry)> = Vec::with_capacity(ranges.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let blocks: Vec<Vec<LogRecord>> = self.users[range]
                            .iter()
                            .map(|u| self.user_records(u))
                            .collect();
                        let mut metrics = Registry::new();
                        observe_blocks(&mut metrics, &blocks);
                        let mut run: Vec<LogRecord> = blocks.into_iter().flatten().collect();
                        run.sort_by_key(sort_key);
                        (run, metrics)
                    })
                })
                .collect();
            for h in handles {
                // mcs-lint: allow(panic, join only fails if a worker panicked; re-raise it)
                shards.push(h.join().expect("generator worker panicked"));
            }
        });
        let fan_in = shards.len() as u64;
        let mut runs: Vec<Vec<LogRecord>> = Vec::with_capacity(shards.len());
        for (i, (run, metrics)) in shards.into_iter().enumerate() {
            obs.trace
                .event(i as u64, "gen.shard.records", run.len() as u64);
            obs.metrics.merge(&metrics);
            runs.push(run);
        }
        obs.trace.event(fan_in, "gen.merge.fan_in", fan_in);
        merge_sorted_runs(runs)
    }

    /// Emits the records of one session into `out`.
    fn emit_session(
        &self,
        user: &UserProfile,
        plan: &SessionPlan,
        rng: &mut impl Rng,
        out: &mut Vec<LogRecord>,
    ) {
        let horizon = self.cfg.horizon_ms();
        let rtt = self.timing.flow_rtt_ms(rng);
        let proxied = self.timing.proxied(rng);
        let gap = LogNormal::from_median(
            self.cfg.session.intra_op_gap_median_s * 1000.0,
            self.cfg.session.intra_op_gap_sigma,
        );
        let straggler_gap =
            LogNormal::from_median(self.cfg.session.straggler_gap_median_s * 1000.0, 0.8);

        // 1. File-operation burst at the session start (an occasional
        //    straggler op arrives while transfers already run).
        let mut op_time = plan.start_ms;
        let mut op_times = Vec::with_capacity(plan.files.len());
        for (i, file) in plan.files.iter().enumerate() {
            if i > 0 {
                let g = if rng.random::<f64>() < self.cfg.session.straggler_frac {
                    straggler_gap.sample(rng)
                } else {
                    gap.sample(rng)
                };
                op_time += g.max(20.0) as u64;
            }
            if op_time >= horizon {
                break;
            }
            op_times.push(op_time);
            out.push(LogRecord {
                timestamp_ms: op_time,
                device_type: plan.device_type,
                device_id: plan.device_id,
                user_id: user.user_id,
                request: RequestType::FileOp(file.direction),
                volume_bytes: 0,
                processing_ms: self.timing.file_op_ms(rng),
                srv_ms: 0.0,
                rtt_ms: rtt,
                proxied,
            });
        }

        // 2. Sequential chunk transfers. The transfer of file k starts no
        //    earlier than its file operation and no earlier than the end of
        //    file k−1's transfer.
        let mut cursor = plan.start_ms as f64;
        for (file, &op_t) in plan.files.iter().zip(&op_times) {
            cursor = cursor.max(op_t as f64);
            for chunk in chunk_sizes(file.size) {
                if cursor >= horizon as f64 {
                    break;
                }
                let srv = self.timing.srv_ms(rng);
                let tran = self.timing.chunk_tran_ms(
                    rng,
                    plan.device_type,
                    file.direction,
                    chunk,
                    rtt,
                    self.cfg.network.rtt_median_ms,
                );
                let processing = tran + srv;
                out.push(LogRecord {
                    timestamp_ms: cursor as u64,
                    device_type: plan.device_type,
                    device_id: plan.device_id,
                    user_id: user.user_id,
                    request: RequestType::Chunk(file.direction),
                    volume_bytes: chunk,
                    processing_ms: processing,
                    srv_ms: srv,
                    rtt_ms: rtt,
                    proxied,
                });
                // Next chunk request leaves after this one completes plus
                // the client's think time (the §4.2 idle-time source).
                let clt = self.timing.clt_ms(rng, plan.device_type, file.direction);
                cursor += processing + clt;
            }
        }
    }
}

impl BlockSource for TraceGenerator {
    fn len(&self) -> usize {
        self.users.len()
    }

    fn block(&self, idx: usize) -> Vec<LogRecord> {
        self.user_records(&self.users[idx])
    }
}

/// Global trace order: timestamp, then user, then device.
pub(crate) fn sort_key(r: &LogRecord) -> (u64, u64, u64) {
    (r.timestamp_ms, r.user_id, r.device_id)
}

/// Books one shard's per-user blocks into `metrics`: `gen.users` /
/// `gen.records` counters plus the `gen.user_records` block-size
/// histogram. Only workload-derived values go in — the registry must
/// merge to the same snapshot regardless of how users were sharded.
fn observe_blocks(metrics: &mut Registry, blocks: &[Vec<LogRecord>]) {
    let users = metrics.counter("gen.users");
    let records = metrics.counter("gen.records");
    let per_user = metrics.histogram("gen.user_records");
    for b in blocks {
        metrics.inc(users);
        metrics.add(records, b.len() as u64);
        metrics.observe(per_user, b.len() as u64);
    }
}

/// K-way merges per-shard runs already sorted by [`sort_key`]. Ties prefer
/// the lower shard, which — with shards being contiguous user ranges —
/// reproduces exactly what a global stable sort over the concatenated runs
/// would produce.
fn merge_sorted_runs(runs: Vec<Vec<LogRecord>>) -> Vec<LogRecord> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut out = Vec::with_capacity(runs.iter().map(Vec::len).sum());
    let mut cursors = vec![0usize; runs.len()];
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        if let Some(r) = run.first() {
            heap.push(Reverse((sort_key(r), i)));
        }
    }
    while let Some(Reverse((_, i))) = heap.pop() {
        out.push(runs[i][cursors[i]]);
        cursors[i] += 1;
        if let Some(next) = runs[i].get(cursors[i]) {
            heap.push(Reverse((sort_key(next), i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DeviceType, Direction, CHUNK_SIZE};

    fn generator(seed: u64) -> TraceGenerator {
        TraceGenerator::new(TraceConfig::small(seed)).unwrap()
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = TraceConfig {
            mobile_users: 0,
            ..TraceConfig::default()
        };
        assert!(TraceGenerator::new(cfg).is_err());
    }

    #[test]
    fn deterministic_per_user_and_globally() {
        let g1 = generator(7);
        let g2 = generator(7);
        let u = &g1.users()[17];
        assert_eq!(g1.user_records(u), g2.user_records(&g2.users()[17]));
        // Per-user generation is order-independent: generating another user
        // first must not change this user's records.
        let _ = g2.user_records(&g2.users()[3]);
        assert_eq!(g1.user_records(u), g2.user_records(&g2.users()[17]));
    }

    #[test]
    fn records_time_ordered_within_user() {
        let g = generator(8);
        for u in g.users().iter().take(100) {
            let recs = g.user_records(u);
            for w in recs.windows(2) {
                assert!(w[0].timestamp_ms <= w[1].timestamp_ms);
            }
        }
    }

    #[test]
    fn all_records_within_horizon() {
        let g = generator(9);
        let horizon = g.config().horizon_ms();
        for block in g.iter_user_records().take(200) {
            for r in block {
                assert!(r.timestamp_ms < horizon);
            }
        }
    }

    #[test]
    fn chunk_volume_bounded_by_chunk_size() {
        let g = generator(10);
        for block in g.iter_user_records().take(200) {
            for r in block {
                match r.request {
                    RequestType::Chunk(_) => {
                        assert!(r.volume_bytes > 0 && r.volume_bytes <= CHUNK_SIZE)
                    }
                    RequestType::FileOp(_) => assert_eq!(r.volume_bytes, 0),
                }
            }
        }
    }

    #[test]
    fn every_file_op_precedes_its_chunks() {
        // Weaker invariant that must always hold: within a user, the first
        // record of a session is a file operation.
        let g = generator(11);
        for u in g.users().iter().take(50) {
            let recs = g.user_records(u);
            if let Some(first) = recs.first() {
                assert!(first.request.is_file_op());
            }
        }
    }

    #[test]
    fn processing_time_exceeds_srv_share_for_chunks() {
        let g = generator(12);
        for block in g.iter_user_records().take(100) {
            for r in block {
                if r.request.is_chunk() {
                    assert!(r.processing_ms > r.srv_ms);
                    assert!(r.srv_ms > 0.0);
                    assert!(r.rtt_ms > 0.0);
                }
            }
        }
    }

    #[test]
    fn generate_sorted_is_globally_ordered() {
        let mut cfg = TraceConfig::small(13);
        cfg.mobile_users = 300;
        cfg.pc_only_users = 50;
        let g = TraceGenerator::new(cfg).unwrap();
        let all = g.generate_sorted();
        assert!(!all.is_empty());
        for w in all.windows(2) {
            assert!(w[0].timestamp_ms <= w[1].timestamp_ms);
        }
    }

    #[test]
    fn par_user_records_matches_sequential_for_any_thread_count() {
        let sequential: Vec<Vec<LogRecord>> = generator(21).iter_user_records().collect();
        for threads in [1usize, 2, 4, 7] {
            let mut cfg = TraceConfig::small(21);
            cfg.threads = threads;
            let g = TraceGenerator::new(cfg).unwrap();
            assert_eq!(g.par_user_records(), sequential, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_generate_sorted_is_bit_identical() {
        let mut cfg = TraceConfig::small(22);
        cfg.mobile_users = 400;
        cfg.pc_only_users = 100;
        cfg.threads = 1;
        let baseline = TraceGenerator::new(cfg.clone()).unwrap().generate_sorted();
        assert!(!baseline.is_empty());
        for threads in [2usize, 3, 8] {
            cfg.threads = threads;
            let g = TraceGenerator::new(cfg.clone()).unwrap();
            assert_eq!(g.generate_sorted(), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn observed_generation_metrics_shard_invariant_across_thread_counts() {
        let mut cfg = TraceConfig::small(24);
        cfg.mobile_users = 200;
        cfg.pc_only_users = 50;
        cfg.threads = 1;
        let g1 = TraceGenerator::new(cfg.clone()).unwrap();
        let mut base = Obs::new();
        let blocks = g1.par_user_records_observed(&mut base);
        let base_snap = base.snapshot();
        let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
        assert_eq!(base_snap.counters["gen.users"], blocks.len() as u64);
        assert_eq!(base_snap.counters["gen.records"], total);
        assert_eq!(
            base_snap.histograms["gen.user_records"].count,
            blocks.len() as u64
        );
        for threads in [2usize, 3, 8] {
            cfg.threads = threads;
            let g = TraceGenerator::new(cfg.clone()).unwrap();
            let mut obs = Obs::new();
            assert_eq!(g.par_user_records_observed(&mut obs), blocks);
            let snap = obs.snapshot();
            assert_eq!(snap, base_snap, "threads = {threads}");
            // The sorted path books the same workload metrics, and its
            // trace names the merge fan-in of this execution.
            let mut sorted_obs = Obs::new();
            let _ = g.generate_sorted_observed(&mut sorted_obs);
            assert_eq!(sorted_obs.snapshot(), base_snap, "threads = {threads}");
            assert!(sorted_obs
                .trace
                .events()
                .iter()
                .any(|e| e.name == "gen.merge.fan_in"));
        }
    }

    #[test]
    fn block_source_indexes_users_in_order() {
        let g = generator(23);
        assert_eq!(BlockSource::len(&g), g.users().len());
        let direct = g.user_records(&g.users()[5]);
        assert_eq!(g.block(5), direct);
    }

    #[test]
    fn android_access_share_near_config() {
        let g = generator(14);
        let mut android = 0u64;
        let mut ios = 0u64;
        for block in g.iter_user_records() {
            for r in block {
                match r.device_type {
                    DeviceType::Android => android += 1,
                    DeviceType::Ios => ios += 1,
                    DeviceType::Pc => {}
                }
            }
        }
        let frac = android as f64 / (android + ios) as f64;
        // Access share tracks the device share within a few points.
        assert!((frac - 0.784).abs() < 0.08, "android access share {frac}");
    }

    #[test]
    fn store_chunks_outnumber_retrieve_chunk_requests_in_file_count() {
        // Fig. 1b: stored *files* per hour are over 2× retrieved files.
        let g = generator(15);
        let mut store_files = 0u64;
        let mut retrieve_files = 0u64;
        for block in g.iter_user_records() {
            for r in block {
                match r.request {
                    RequestType::FileOp(Direction::Store) => store_files += 1,
                    RequestType::FileOp(Direction::Retrieve) => retrieve_files += 1,
                    _ => {}
                }
            }
        }
        assert!(
            store_files as f64 > 1.5 * retrieve_files as f64,
            "store {store_files} vs retrieve {retrieve_files}"
        );
    }

    #[test]
    fn retrieval_volume_exceeds_storage_volume() {
        // Fig. 1a: retrievals carry more bytes than storage.
        let g = generator(16);
        let mut store_bytes = 0u64;
        let mut retrieve_bytes = 0u64;
        for block in g.iter_user_records() {
            for r in block {
                if r.request.is_chunk() {
                    match r.request.direction() {
                        Direction::Store => store_bytes += r.volume_bytes,
                        Direction::Retrieve => retrieve_bytes += r.volume_bytes,
                    }
                }
            }
        }
        assert!(
            retrieve_bytes > store_bytes,
            "retrieve {retrieve_bytes} vs store {store_bytes}"
        );
    }
}
