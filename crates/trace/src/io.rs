//! Trace serialisation: JSON-lines and a compact CSV form.
//!
//! The public dataset the paper released was a flat log file; these
//! readers/writers let generated traces round-trip through files so the
//! analysis pipeline can be pointed at stored traces, not only live
//! generators. Both formats stream record-by-record.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::record::{DeviceType, Direction, LogRecord, RequestType};

/// Why reading a trace file failed. Every variant names the offending
/// line, so malformed logs surface as actionable diagnostics instead of
/// panics or stringly-typed `io::Error`s.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The CSV header line is missing or does not match [`CSV_HEADER`].
    BadHeader,
    /// A JSON line did not parse as a [`LogRecord`].
    Json {
        /// 1-based line number.
        line: usize,
        /// The serde error.
        source: serde_json::Error,
    },
    /// A CSV line had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found (10 expected).
        got: usize,
    },
    /// A CSV field failed to parse.
    Field {
        /// 1-based line number.
        line: usize,
        /// Which field was malformed.
        field: &'static str,
    },
    /// A lossy reader quarantined more malformed lines than its
    /// [`ErrorBudget`] allows; the file is junk, not merely scuffed.
    ErrorBudgetExceeded {
        /// Malformed lines seen when the reader gave up.
        errors: usize,
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::BadHeader => write!(f, "line 1: missing or wrong CSV header"),
            ReadError::Json { line, source } => write!(f, "line {line}: {source}"),
            ReadError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 10 fields, got {got}")
            }
            ReadError::Field { line, field } => {
                write!(f, "line {line}: malformed {field} field")
            }
            ReadError::ErrorBudgetExceeded { errors, budget } => {
                write!(
                    f,
                    "gave up after {errors} malformed lines (budget: {budget})"
                )
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Json { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Writes records as JSON lines (one serde-serialised record per line).
pub fn write_jsonl<W: Write>(
    mut w: W,
    records: impl IntoIterator<Item = LogRecord>,
) -> io::Result<usize> {
    let mut n = 0;
    for r in records {
        serde_json::to_writer(&mut w, &r)?;
        w.write_all(b"\n")?;
        n += 1;
    }
    Ok(n)
}

/// Reads JSON-lines records, failing on the first malformed line.
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Vec<LogRecord>, ReadError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: LogRecord = serde_json::from_str(&line).map_err(|source| ReadError::Json {
            line: i + 1,
            source,
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Cap on malformed lines a lossy reader quarantines before declaring the
/// whole file unusable.
///
/// Real service logs are scuffed at the margins — truncated flushes,
/// interleaved writers, the odd corrupt block — and an analysis pipeline
/// that aborts on the first bad line never gets off the ground. The lossy
/// readers skip-and-quarantine instead, but a bounded budget keeps "a few
/// bad lines" from silently swallowing a file that is wholesale garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorBudget {
    /// Maximum number of malformed lines to tolerate.
    pub max_errors: usize,
}

impl Default for ErrorBudget {
    /// Tolerates up to 1 000 malformed lines.
    fn default() -> Self {
        Self { max_errors: 1000 }
    }
}

/// Outcome of a lossy read: the records that parsed, plus a quarantine of
/// per-line diagnostics for those that did not.
#[derive(Debug, Default)]
pub struct LossyRead {
    /// Records that parsed cleanly, in file order.
    pub records: Vec<LogRecord>,
    /// One diagnostic per malformed line, in file order.
    pub quarantined: Vec<ReadError>,
}

impl LossyRead {
    /// Fraction of non-blank lines that were quarantined (0.0 for an empty
    /// or fully clean file).
    pub fn error_rate(&self) -> f64 {
        let total = self.records.len() + self.quarantined.len();
        if total == 0 {
            return 0.0;
        }
        self.quarantined.len() as f64 / total as f64
    }
}

/// Reads JSON-lines records, quarantining malformed lines instead of
/// failing on the first one. I/O errors stay fatal (the reader itself is
/// broken, not a line), and blowing the [`ErrorBudget`] returns
/// [`ReadError::ErrorBudgetExceeded`].
pub fn read_jsonl_lossy<R: BufRead>(r: R, budget: ErrorBudget) -> Result<LossyRead, ReadError> {
    let mut out = LossyRead::default();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str(&line) {
            Ok(rec) => out.records.push(rec),
            Err(source) => {
                out.quarantined.push(ReadError::Json {
                    line: i + 1,
                    source,
                });
                if out.quarantined.len() > budget.max_errors {
                    return Err(ReadError::ErrorBudgetExceeded {
                        errors: out.quarantined.len(),
                        budget: budget.max_errors,
                    });
                }
            }
        }
    }
    Ok(out)
}

/// CSV header used by [`write_csv`].
pub const CSV_HEADER: &str =
    "timestamp_ms,device_type,device_id,user_id,request,volume_bytes,processing_ms,srv_ms,rtt_ms,proxied";

fn device_str(d: DeviceType) -> &'static str {
    match d {
        DeviceType::Android => "android",
        DeviceType::Ios => "ios",
        DeviceType::Pc => "pc",
    }
}

fn request_str(r: RequestType) -> &'static str {
    match r {
        RequestType::FileOp(Direction::Store) => "file_store",
        RequestType::FileOp(Direction::Retrieve) => "file_retrieve",
        RequestType::Chunk(Direction::Store) => "chunk_store",
        RequestType::Chunk(Direction::Retrieve) => "chunk_retrieve",
    }
}

fn parse_device(s: &str) -> Option<DeviceType> {
    match s {
        "android" => Some(DeviceType::Android),
        "ios" => Some(DeviceType::Ios),
        "pc" => Some(DeviceType::Pc),
        _ => None,
    }
}

fn parse_request(s: &str) -> Option<RequestType> {
    match s {
        "file_store" => Some(RequestType::FileOp(Direction::Store)),
        "file_retrieve" => Some(RequestType::FileOp(Direction::Retrieve)),
        "chunk_store" => Some(RequestType::Chunk(Direction::Store)),
        "chunk_retrieve" => Some(RequestType::Chunk(Direction::Retrieve)),
        _ => None,
    }
}

/// Writes records as CSV with [`CSV_HEADER`]. No field can contain commas,
/// so no quoting is needed.
pub fn write_csv<W: Write>(
    mut w: W,
    records: impl IntoIterator<Item = LogRecord>,
) -> io::Result<usize> {
    writeln!(w, "{CSV_HEADER}")?;
    let mut n = 0;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{}",
            r.timestamp_ms,
            device_str(r.device_type),
            r.device_id,
            r.user_id,
            request_str(r.request),
            r.volume_bytes,
            r.processing_ms,
            r.srv_ms,
            r.rtt_ms,
            r.proxied as u8,
        )?;
        n += 1;
    }
    Ok(n)
}

/// Parses one CSV body line (`line_no` is 1-based, for diagnostics).
fn parse_csv_record(line_no: usize, line: &str) -> Result<LogRecord, ReadError> {
    let bad = |field: &'static str| ReadError::Field {
        line: line_no,
        field,
    };
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != 10 {
        return Err(ReadError::FieldCount {
            line: line_no,
            got: f.len(),
        });
    }
    Ok(LogRecord {
        timestamp_ms: f[0].parse().map_err(|_| bad("timestamp"))?,
        device_type: parse_device(f[1]).ok_or_else(|| bad("device type"))?,
        device_id: f[2].parse().map_err(|_| bad("device id"))?,
        user_id: f[3].parse().map_err(|_| bad("user id"))?,
        request: parse_request(f[4]).ok_or_else(|| bad("request type"))?,
        volume_bytes: f[5].parse().map_err(|_| bad("volume"))?,
        processing_ms: f[6].parse().map_err(|_| bad("processing time"))?,
        srv_ms: f[7].parse().map_err(|_| bad("srv time"))?,
        rtt_ms: f[8].parse().map_err(|_| bad("rtt"))?,
        proxied: match f[9] {
            "0" => false,
            "1" => true,
            _ => return Err(bad("proxied flag")),
        },
    })
}

/// Reads CSV produced by [`write_csv`] (header required).
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<LogRecord>, ReadError> {
    let mut lines = r.lines().enumerate();
    match lines.next() {
        Some((_, Ok(h))) if h.trim() == CSV_HEADER => {}
        Some((_, Ok(_))) => return Err(ReadError::BadHeader),
        Some((_, Err(e))) => return Err(e.into()),
        None => return Ok(Vec::new()),
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_csv_record(i + 1, &line)?);
    }
    Ok(out)
}

/// Reads CSV, quarantining malformed body lines instead of failing on the
/// first one. A missing or wrong header is still fatal — that is the whole
/// file misidentified, not a scuffed line — as are I/O errors. Blowing the
/// [`ErrorBudget`] returns [`ReadError::ErrorBudgetExceeded`].
pub fn read_csv_lossy<R: BufRead>(r: R, budget: ErrorBudget) -> Result<LossyRead, ReadError> {
    let mut lines = r.lines().enumerate();
    match lines.next() {
        Some((_, Ok(h))) if h.trim() == CSV_HEADER => {}
        Some((_, Ok(_))) => return Err(ReadError::BadHeader),
        Some((_, Err(e))) => return Err(e.into()),
        None => return Ok(LossyRead::default()),
    }
    let mut out = LossyRead::default();
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_csv_record(i + 1, &line) {
            Ok(rec) => out.records.push(rec),
            Err(e) => {
                out.quarantined.push(e);
                if out.quarantined.len() > budget.max_errors {
                    return Err(ReadError::ErrorBudgetExceeded {
                        errors: out.quarantined.len(),
                        budget: budget.max_errors,
                    });
                }
            }
        }
    }
    Ok(out)
}

/// Trace file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One serde-JSON record per line.
    Jsonl,
    /// Compact CSV with [`CSV_HEADER`].
    Csv,
}

/// Writes a full generated trace to `path`, streaming user blocks in
/// generation order (records are time-ordered *per user*; use
/// [`crate::TraceGenerator::generate_sorted`] first if a globally sorted
/// file is required).
pub fn write_trace_file(
    gen: &crate::TraceGenerator,
    path: &std::path::Path,
    format: TraceFormat,
) -> io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    let mut written = 0u64;
    match format {
        TraceFormat::Jsonl => {
            for block in gen.iter_user_records() {
                written += write_jsonl(&mut w, block)? as u64;
            }
        }
        TraceFormat::Csv => {
            writeln!(w, "{CSV_HEADER}")?;
            for block in gen.iter_user_records() {
                for r in block {
                    writeln!(
                        w,
                        "{},{},{},{},{},{},{},{},{},{}",
                        r.timestamp_ms,
                        device_str(r.device_type),
                        r.device_id,
                        r.user_id,
                        request_str(r.request),
                        r.volume_bytes,
                        r.processing_ms,
                        r.srv_ms,
                        r.rtt_ms,
                        r.proxied as u8,
                    )?;
                    written += 1;
                }
            }
        }
    }
    use std::io::Write as _;
    w.flush()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CHUNK_SIZE;
    use std::io::BufReader;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord {
                timestamp_ms: 0,
                device_type: DeviceType::Android,
                device_id: 1,
                user_id: 10,
                request: RequestType::FileOp(Direction::Store),
                volume_bytes: 0,
                processing_ms: 12.5,
                srv_ms: 3.0,
                rtt_ms: 88.0,
                proxied: false,
            },
            LogRecord {
                timestamp_ms: 1500,
                device_type: DeviceType::Ios,
                device_id: 2,
                user_id: 10,
                request: RequestType::Chunk(Direction::Retrieve),
                volume_bytes: CHUNK_SIZE,
                processing_ms: 950.0,
                srv_ms: 120.0,
                rtt_ms: 140.5,
                proxied: true,
            },
            LogRecord {
                timestamp_ms: 99_999,
                device_type: DeviceType::Pc,
                device_id: 3,
                user_id: 11,
                request: RequestType::Chunk(Direction::Store),
                volume_bytes: 4096,
                processing_ms: 80.0,
                srv_ms: 60.0,
                rtt_ms: 30.0,
                proxied: false,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let n = write_jsonl(&mut buf, recs.clone()).unwrap();
        assert_eq!(n, 3);
        let back = read_jsonl(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn csv_round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let n = write_csv(&mut buf, recs.clone()).unwrap();
        assert_eq!(n, 3);
        let back = read_csv(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let recs = sample_records();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, recs.clone()).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, sample_records()).unwrap();
        buf.extend_from_slice(b"not json\n");
        let err = read_jsonl(BufReader::new(&buf[..])).unwrap_err();
        match err {
            ReadError::Json { line, .. } => assert_eq!(line, 4),
            other => panic!("expected Json error, got {other:?}"),
        }
        assert!(err.to_string().starts_with("line 4:"));
    }

    #[test]
    fn csv_rejects_missing_header() {
        let err =
            read_csv(BufReader::new(&b"1,android,1,1,file_store,0,1,1,1,0\n"[..])).unwrap_err();
        assert!(matches!(err, ReadError::BadHeader));
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn csv_rejects_bad_field() {
        let mut buf = Vec::new();
        write_csv(&mut buf, sample_records()).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("android", "blackberry");
        let err = read_csv(BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            ReadError::Field { line, field } => {
                assert_eq!(line, 2);
                assert_eq!(field, "device type");
            }
            other => panic!("expected Field error, got {other:?}"),
        }
        assert!(err.to_string().contains("device type"));
    }

    #[test]
    fn csv_rejects_wrong_field_count() {
        let mut buf = Vec::new();
        write_csv(&mut buf, sample_records()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("1,2,3\n");
        let err = read_csv(BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            ReadError::FieldCount { line, got } => {
                assert_eq!(line, 5);
                assert_eq!(got, 3);
            }
            other => panic!("expected FieldCount error, got {other:?}"),
        }
    }

    #[test]
    fn read_error_exposes_sources() {
        let json_err = read_jsonl(BufReader::new(&b"{\n"[..])).unwrap_err();
        assert!(std::error::Error::source(&json_err).is_some());
        let io_err = ReadError::from(io::Error::other("disk on fire"));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(io_err.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&ReadError::BadHeader).is_none());
    }

    #[test]
    fn csv_empty_input_is_empty_vec() {
        assert!(read_csv(BufReader::new(&b""[..])).unwrap().is_empty());
    }

    #[test]
    fn lossy_jsonl_quarantines_garbage_lines() {
        let recs = sample_records();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, recs.clone()).unwrap();
        buf.extend_from_slice(b"not json\n{\"half\": \n");
        write_jsonl(&mut buf, recs.clone()).unwrap();
        let got = read_jsonl_lossy(BufReader::new(&buf[..]), ErrorBudget::default()).unwrap();
        assert_eq!(got.records.len(), 6, "good lines survive the bad ones");
        assert_eq!(got.quarantined.len(), 2);
        assert!(matches!(
            got.quarantined[0],
            ReadError::Json { line: 4, .. }
        ));
        assert!((got.error_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lossy_csv_quarantines_and_keeps_line_numbers() {
        let mut buf = Vec::new();
        write_csv(&mut buf, sample_records()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("1,2,3\n"); // wrong field count → line 5
        text.push_str("x,android,1,1,file_store,0,1,1,1,0\n"); // bad timestamp → line 6
        let got = read_csv_lossy(BufReader::new(text.as_bytes()), ErrorBudget::default()).unwrap();
        assert_eq!(got.records.len(), 3);
        assert_eq!(got.quarantined.len(), 2);
        assert!(matches!(
            got.quarantined[0],
            ReadError::FieldCount { line: 5, got: 3 }
        ));
        assert!(matches!(
            got.quarantined[1],
            ReadError::Field {
                line: 6,
                field: "timestamp"
            }
        ));
    }

    #[test]
    fn lossy_csv_still_rejects_bad_header() {
        let err = read_csv_lossy(
            BufReader::new(&b"not,a,header\n"[..]),
            ErrorBudget::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ReadError::BadHeader));
    }

    #[test]
    fn lossy_readers_enforce_the_error_budget() {
        let mut text = String::from(CSV_HEADER);
        text.push('\n');
        for _ in 0..5 {
            text.push_str("garbage line\n");
        }
        let err = read_csv_lossy(
            BufReader::new(text.as_bytes()),
            ErrorBudget { max_errors: 3 },
        )
        .unwrap_err();
        match err {
            ReadError::ErrorBudgetExceeded { errors, budget } => {
                assert_eq!(errors, 4, "gives up as soon as the budget is blown");
                assert_eq!(budget, 3);
            }
            other => panic!("expected ErrorBudgetExceeded, got {other:?}"),
        }
        assert_eq!(
            err.to_string(),
            "gave up after 4 malformed lines (budget: 3)"
        );
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn lossy_read_of_clean_input_matches_strict_read() {
        let mut buf = Vec::new();
        write_csv(&mut buf, sample_records()).unwrap();
        let strict = read_csv(BufReader::new(&buf[..])).unwrap();
        let lossy = read_csv_lossy(BufReader::new(&buf[..]), ErrorBudget::default()).unwrap();
        assert_eq!(lossy.records, strict);
        assert!(lossy.quarantined.is_empty());
        assert_eq!(lossy.error_rate(), 0.0);
        assert_eq!(LossyRead::default().error_rate(), 0.0);
    }

    #[test]
    fn trace_file_round_trip() {
        use crate::{TraceConfig, TraceGenerator};
        let gen = TraceGenerator::new(TraceConfig {
            mobile_users: 60,
            pc_only_users: 10,
            ..TraceConfig::default()
        })
        .unwrap();
        let dir = std::env::temp_dir();
        let jsonl_path = dir.join("mcs-io-test.jsonl");
        let csv_path = dir.join("mcs-io-test.csv");
        let n1 = write_trace_file(&gen, &jsonl_path, TraceFormat::Jsonl).unwrap();
        let n2 = write_trace_file(&gen, &csv_path, TraceFormat::Csv).unwrap();
        assert_eq!(n1, n2);
        assert!(n1 > 100);
        let back_jsonl =
            read_jsonl(BufReader::new(std::fs::File::open(&jsonl_path).unwrap())).unwrap();
        let back_csv = read_csv(BufReader::new(std::fs::File::open(&csv_path).unwrap())).unwrap();
        assert_eq!(back_jsonl, back_csv);
        assert_eq!(back_jsonl.len() as u64, n1);
        let _ = std::fs::remove_file(jsonl_path);
        let _ = std::fs::remove_file(csv_path);
    }
}
