//! Trace serialisation: JSON-lines, a compact CSV form, and the binary
//! columnar `.mct` shard format (see [`crate::columnar`]).
//!
//! The public dataset the paper released was a flat log file; these
//! readers/writers let generated traces round-trip through files so the
//! analysis pipeline can be pointed at stored traces, not only live
//! generators. Every format streams record-by-record in both directions:
//! the readers are thin adapters over iterator cores
//! ([`JsonlRecords`]/[`CsvRecords`]/[`crate::columnar::ColumnarRecords`],
//! unified under [`RecordStream`]) that never hold the full trace, and the
//! writers are push-style ([`TraceWriter`]) so a shard can be produced
//! without materialising it.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::columnar::{ColumnarRecords, ColumnarWriter};
use crate::record::{DeviceType, Direction, LogRecord, RequestType};

/// Why reading a trace file failed. Every variant carries a location —
/// line number for the text formats, block/record coordinates for the
/// columnar format — so malformed logs surface as actionable diagnostics
/// instead of panics or stringly-typed `io::Error`s.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The CSV header line is missing or does not match [`CSV_HEADER`].
    BadHeader,
    /// A JSON line did not parse as a [`LogRecord`].
    Json {
        /// 1-based line number.
        line: usize,
        /// The parse error.
        source: JsonError,
    },
    /// A CSV line had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found (10 expected).
        got: usize,
    },
    /// A CSV field failed to parse.
    Field {
        /// 1-based line number.
        line: usize,
        /// Which field was malformed.
        field: &'static str,
    },
    /// The file does not start with the `.mct` magic bytes.
    BadMagic,
    /// The `.mct` header declares a format version this reader does not
    /// speak.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The `.mct` header failed its checksum — the header bytes are
    /// damaged, so nothing after them can be trusted.
    HeaderChecksum {
        /// Checksum recomputed from the header fields.
        expected: u64,
        /// Checksum stored in the file.
        found: u64,
    },
    /// A `.mct` file ended in the middle of a header or block.
    Truncated {
        /// Byte offset where the structure was cut short.
        offset: u64,
    },
    /// A `.mct` block's framing is internally inconsistent (lengths and
    /// counts disagree, or exceed the format's sanity caps).
    CorruptBlock {
        /// 0-based block index within the shard.
        block: u64,
        /// What was wrong.
        reason: &'static str,
    },
    /// A `.mct` record referenced a dictionary entry that does not exist
    /// yet — one damaged record, not a damaged shard.
    DictIndex {
        /// 0-based block index within the shard.
        block: u64,
        /// 0-based record index within the block.
        record: u32,
        /// The out-of-range index.
        index: u32,
        /// Dictionary length at that point in the stream.
        len: u32,
    },
    /// A `.mct` record carried an op-code byte outside the valid range.
    OpCode {
        /// 0-based block index within the shard.
        block: u64,
        /// 0-based record index within the block.
        record: u32,
        /// The invalid byte.
        code: u8,
    },
    /// A lossy reader quarantined more malformed records than its
    /// [`ErrorBudget`] allows; the file is junk, not merely scuffed.
    ErrorBudgetExceeded {
        /// Malformed records seen when the reader gave up.
        errors: usize,
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl ReadError {
    /// `true` for damage confined to a single record — the kind a lossy
    /// reader quarantines and reads past. Structural damage (I/O failure,
    /// bad header, truncation, inconsistent block framing) is fatal: the
    /// stream cannot be trusted beyond it.
    pub fn is_record_level(&self) -> bool {
        matches!(
            self,
            ReadError::Json { .. }
                | ReadError::FieldCount { .. }
                | ReadError::Field { .. }
                | ReadError::DictIndex { .. }
                | ReadError::OpCode { .. }
        )
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::BadHeader => write!(f, "line 1: missing or wrong CSV header"),
            ReadError::Json { line, source } => write!(f, "line {line}: {source}"),
            ReadError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 10 fields, got {got}")
            }
            ReadError::Field { line, field } => {
                write!(f, "line {line}: malformed {field} field")
            }
            ReadError::BadMagic => write!(f, "not a .mct trace shard (bad magic bytes)"),
            ReadError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported .mct version {found} (this reader speaks version {})",
                    crate::columnar::VERSION
                )
            }
            ReadError::HeaderChecksum { expected, found } => {
                write!(
                    f,
                    "header checksum mismatch (expected {expected:#018x}, found {found:#018x})"
                )
            }
            ReadError::Truncated { offset } => {
                write!(f, "unexpected end of file at byte {offset}")
            }
            ReadError::CorruptBlock { block, reason } => {
                write!(f, "block {block}: {reason}")
            }
            ReadError::DictIndex {
                block,
                record,
                index,
                len,
            } => write!(
                f,
                "block {block} record {record}: dictionary index {index} out of range (len {len})"
            ),
            ReadError::OpCode {
                block,
                record,
                code,
            } => write!(f, "block {block} record {record}: invalid op code {code}"),
            ReadError::ErrorBudgetExceeded { errors, budget } => {
                write!(
                    f,
                    "gave up after {errors} malformed lines (budget: {budget})"
                )
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Json { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Why one JSON line failed to parse as a [`LogRecord`].
///
/// The JSONL codec is hand-rolled against the fixed Table 1 schema (the
/// derived-serde encoding: struct fields in declaration order, enum
/// variants as `"Android"` / `{"Chunk":"Store"}`), so trace files need no
/// external JSON machinery on the hot ingest path.
#[derive(Debug)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Minimal JSON cursor for [`parse_json_record`] — supports exactly the
/// value shapes the Table 1 schema emits, plus generic skipping so lines
/// with extra fields still parse (mirroring serde's ignore-unknown
/// default).
struct JsonParser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), JsonError> {
        self.skip_ws();
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    /// Parses a string with no escape sequences (none of the schema's
    /// strings contain any).
    fn string(&mut self) -> Result<&'a str, JsonError> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&c) = self.b.get(self.pos) {
            match c {
                b'"' => {
                    let s = std::str::from_utf8(&self.b[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => return Err(self.err("escape sequences unsupported")),
                _ => self.pos += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number_slice(&mut self) -> Result<&'a str, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&c) = self.b.get(self.pos) {
            match c {
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' => self.pos += 1,
                _ => break,
            }
        }
        if start == self.pos {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.b[start..self.pos]).map_err(|_| self.err("invalid number"))
    }

    fn u64(&mut self) -> Result<u64, JsonError> {
        let s = self.number_slice()?;
        s.parse()
            .map_err(|_| self.err(&format!("invalid u64 `{s}`")))
    }

    fn f64(&mut self) -> Result<f64, JsonError> {
        let s = self.number_slice()?;
        s.parse()
            .map_err(|_| self.err(&format!("invalid f64 `{s}`")))
    }

    fn bool(&mut self) -> Result<bool, JsonError> {
        match self.peek() {
            Some(b't') => self.eat_lit("true").map(|()| true),
            Some(b'f') => self.eat_lit("false").map(|()| false),
            _ => Err(self.err("expected bool")),
        }
    }

    /// Skips one value of any shape (for unknown fields).
    fn skip_value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.eat_lit("true"),
            Some(b'f') => self.eat_lit("false"),
            Some(b'n') => self.eat_lit("null"),
            Some(b'{') => {
                self.eat(b'{')?;
                if self.peek() == Some(b'}') {
                    return self.eat(b'}');
                }
                loop {
                    self.string()?;
                    self.eat(b':')?;
                    self.skip_value()?;
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => return self.eat(b'}'),
                    }
                }
            }
            Some(b'[') => {
                self.eat(b'[')?;
                if self.peek() == Some(b']') {
                    return self.eat(b']');
                }
                loop {
                    self.skip_value()?;
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => return self.eat(b']'),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number_slice().map(|_| ()),
            _ => Err(self.err("expected a JSON value")),
        }
    }
}

/// Parses one JSON line in the derived-serde [`LogRecord`] encoding.
/// Unknown fields are skipped; missing fields are errors.
pub(crate) fn parse_json_record(line: &str) -> Result<LogRecord, JsonError> {
    let mut p = JsonParser {
        b: line.as_bytes(),
        pos: 0,
    };
    let mut timestamp_ms = None;
    let mut device_type = None;
    let mut device_id = None;
    let mut user_id = None;
    let mut request = None;
    let mut volume_bytes = None;
    let mut processing_ms = None;
    let mut srv_ms = None;
    let mut rtt_ms = None;
    let mut proxied = None;

    let direction = |p: &mut JsonParser<'_>| -> Result<Direction, JsonError> {
        match p.string()? {
            "Store" => Ok(Direction::Store),
            "Retrieve" => Ok(Direction::Retrieve),
            other => Err(JsonError::new(format!("unknown direction `{other}`"))),
        }
    };

    p.eat(b'{')?;
    if p.peek() == Some(b'}') {
        p.eat(b'}')?;
    } else {
        loop {
            let key = p.string()?;
            p.eat(b':')?;
            match key {
                "timestamp_ms" => timestamp_ms = Some(p.u64()?),
                "device_id" => device_id = Some(p.u64()?),
                "user_id" => user_id = Some(p.u64()?),
                "volume_bytes" => volume_bytes = Some(p.u64()?),
                "processing_ms" => processing_ms = Some(p.f64()?),
                "srv_ms" => srv_ms = Some(p.f64()?),
                "rtt_ms" => rtt_ms = Some(p.f64()?),
                "proxied" => proxied = Some(p.bool()?),
                "device_type" => {
                    device_type = Some(match p.string()? {
                        "Android" => DeviceType::Android,
                        "Ios" => DeviceType::Ios,
                        "Pc" => DeviceType::Pc,
                        other => {
                            return Err(JsonError::new(format!("unknown device_type `{other}`")))
                        }
                    })
                }
                "request" => {
                    p.eat(b'{')?;
                    let variant = p.string()?;
                    p.eat(b':')?;
                    let dir = direction(&mut p)?;
                    request = Some(match variant {
                        "FileOp" => RequestType::FileOp(dir),
                        "Chunk" => RequestType::Chunk(dir),
                        other => return Err(JsonError::new(format!("unknown request `{other}`"))),
                    });
                    p.eat(b'}')?;
                }
                _ => p.skip_value()?,
            }
            match p.peek() {
                Some(b',') => p.eat(b',')?,
                Some(b'}') => {
                    p.eat(b'}')?;
                    break;
                }
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing characters"));
    }

    let missing = |name: &str| JsonError::new(format!("missing field `{name}`"));
    Ok(LogRecord {
        timestamp_ms: timestamp_ms.ok_or_else(|| missing("timestamp_ms"))?,
        device_type: device_type.ok_or_else(|| missing("device_type"))?,
        device_id: device_id.ok_or_else(|| missing("device_id"))?,
        user_id: user_id.ok_or_else(|| missing("user_id"))?,
        request: request.ok_or_else(|| missing("request"))?,
        volume_bytes: volume_bytes.ok_or_else(|| missing("volume_bytes"))?,
        processing_ms: processing_ms.ok_or_else(|| missing("processing_ms"))?,
        srv_ms: srv_ms.ok_or_else(|| missing("srv_ms"))?,
        rtt_ms: rtt_ms.ok_or_else(|| missing("rtt_ms"))?,
        proxied: proxied.ok_or_else(|| missing("proxied"))?,
    })
}

// ------------------------------------------------------- streaming cores

/// Streaming JSON-lines reader: an iterator of
/// `Result<LogRecord, ReadError>`. Blank lines are skipped; line numbers
/// in diagnostics are 1-based and count every physical line. An I/O error
/// is fatal and ends the stream; a malformed line is yielded as a
/// record-level `Err` and the stream continues.
pub struct JsonlRecords<R: BufRead> {
    lines: io::Lines<R>,
    line_no: usize,
    done: bool,
}

impl<R: BufRead> JsonlRecords<R> {
    /// Wraps a reader positioned at the start of a JSON-lines trace.
    pub fn new(r: R) -> Self {
        Self {
            lines: r.lines(),
            line_no: 0,
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for JsonlRecords<R> {
    type Item = Result<LogRecord, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let line = match self.lines.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Some(Ok(line)) => line,
            };
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            return Some(parse_json_record(&line).map_err(|source| ReadError::Json {
                line: self.line_no,
                source,
            }));
        }
    }
}

/// Streaming CSV reader: an iterator of `Result<LogRecord, ReadError>`.
/// The header is checked on the first pull — empty input is an empty
/// trace, a wrong header is a fatal [`ReadError::BadHeader`]. Blank body
/// lines are skipped; line numbers count every physical line including
/// the header. Malformed body lines are record-level errors; I/O errors
/// are fatal.
pub struct CsvRecords<R: BufRead> {
    lines: io::Lines<R>,
    line_no: usize,
    header_checked: bool,
    done: bool,
}

impl<R: BufRead> CsvRecords<R> {
    /// Wraps a reader positioned at the start of a CSV trace (header
    /// line included).
    pub fn new(r: R) -> Self {
        Self {
            lines: r.lines(),
            line_no: 0,
            header_checked: false,
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for CsvRecords<R> {
    type Item = Result<LogRecord, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if !self.header_checked {
            self.header_checked = true;
            match self.lines.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Some(Ok(h)) => {
                    self.line_no += 1;
                    if h.trim() != CSV_HEADER {
                        self.done = true;
                        return Some(Err(ReadError::BadHeader));
                    }
                }
            }
        }
        loop {
            let line = match self.lines.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Some(Ok(line)) => line,
            };
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            return Some(parse_csv_record(self.line_no, &line));
        }
    }
}

/// A streaming reader over any [`TraceFormat`], yielding
/// `Result<LogRecord, ReadError>` without ever holding the full trace.
///
/// Record-level errors (see [`ReadError::is_record_level`]) leave the
/// stream usable; fatal errors end it. [`collect_records`] and
/// [`collect_records_lossy`] are the strict/quarantining terminal
/// adapters every `read_*` function in this module is built from.
pub enum RecordStream<R: BufRead> {
    /// JSON lines.
    Jsonl(JsonlRecords<R>),
    /// CSV with [`CSV_HEADER`].
    Csv(CsvRecords<R>),
    /// Binary columnar `.mct` shard.
    Columnar(ColumnarRecords<R>),
}

impl<R: BufRead> RecordStream<R> {
    /// Wraps a reader positioned at the start of a trace in `format`.
    pub fn new(r: R, format: TraceFormat) -> Self {
        match format {
            TraceFormat::Jsonl => RecordStream::Jsonl(JsonlRecords::new(r)),
            TraceFormat::Csv => RecordStream::Csv(CsvRecords::new(r)),
            TraceFormat::Columnar => RecordStream::Columnar(ColumnarRecords::new(r)),
        }
    }
}

impl<R: BufRead> Iterator for RecordStream<R> {
    type Item = Result<LogRecord, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RecordStream::Jsonl(s) => s.next(),
            RecordStream::Csv(s) => s.next(),
            RecordStream::Columnar(s) => s.next(),
        }
    }
}

/// Opens `path` as a buffered [`RecordStream`] in `format`.
pub fn open_trace(
    path: &std::path::Path,
    format: TraceFormat,
) -> io::Result<RecordStream<io::BufReader<std::fs::File>>> {
    let file = std::fs::File::open(path)?;
    Ok(RecordStream::new(io::BufReader::new(file), format))
}

/// Strict terminal adapter: collects a record stream into a `Vec`,
/// failing on the first error of any kind.
pub fn collect_records(
    stream: impl Iterator<Item = Result<LogRecord, ReadError>>,
) -> Result<Vec<LogRecord>, ReadError> {
    let mut out = Vec::new();
    for item in stream {
        out.push(item?);
    }
    Ok(out)
}

/// Lossy terminal adapter: collects a record stream, quarantining
/// record-level errors under `budget`. Fatal errors (I/O, bad header,
/// truncation, corrupt framing) still fail the whole read, as does
/// blowing the budget ([`ReadError::ErrorBudgetExceeded`]).
pub fn collect_records_lossy(
    stream: impl Iterator<Item = Result<LogRecord, ReadError>>,
    budget: ErrorBudget,
) -> Result<LossyRead, ReadError> {
    let mut out = LossyRead::default();
    for item in stream {
        match item {
            Ok(rec) => out.records.push(rec),
            Err(e) if e.is_record_level() => {
                out.quarantined.push(e);
                if out.quarantined.len() > budget.max_errors {
                    return Err(ReadError::ErrorBudgetExceeded {
                        errors: out.quarantined.len(),
                        budget: budget.max_errors,
                    });
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

// ------------------------------------------------------------- adapters

/// Writes records as JSON lines (one serde-serialised record per line).
pub fn write_jsonl<W: Write>(
    mut w: W,
    records: impl IntoIterator<Item = LogRecord>,
) -> io::Result<usize> {
    let mut n = 0;
    for r in records {
        write_jsonl_record(&mut w, &r)?;
        n += 1;
    }
    Ok(n)
}

/// Reads JSON-lines records, failing on the first malformed line.
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Vec<LogRecord>, ReadError> {
    collect_records(JsonlRecords::new(r))
}

/// Cap on malformed lines a lossy reader quarantines before declaring the
/// whole file unusable.
///
/// Real service logs are scuffed at the margins — truncated flushes,
/// interleaved writers, the odd corrupt block — and an analysis pipeline
/// that aborts on the first bad line never gets off the ground. The lossy
/// readers skip-and-quarantine instead, but a bounded budget keeps "a few
/// bad lines" from silently swallowing a file that is wholesale garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorBudget {
    /// Maximum number of malformed lines to tolerate.
    pub max_errors: usize,
}

impl Default for ErrorBudget {
    /// Tolerates up to 1 000 malformed lines.
    fn default() -> Self {
        Self { max_errors: 1000 }
    }
}

/// Outcome of a lossy read: the records that parsed, plus a quarantine of
/// per-line diagnostics for those that did not.
#[derive(Debug, Default)]
pub struct LossyRead {
    /// Records that parsed cleanly, in file order.
    pub records: Vec<LogRecord>,
    /// One diagnostic per malformed line, in file order.
    pub quarantined: Vec<ReadError>,
}

impl LossyRead {
    /// Fraction of non-blank lines that were quarantined (0.0 for an empty
    /// or fully clean file).
    pub fn error_rate(&self) -> f64 {
        let total = self.records.len() + self.quarantined.len();
        if total == 0 {
            return 0.0;
        }
        self.quarantined.len() as f64 / total as f64
    }
}

/// Reads JSON-lines records, quarantining malformed lines instead of
/// failing on the first one. I/O errors stay fatal (the reader itself is
/// broken, not a line), and blowing the [`ErrorBudget`] returns
/// [`ReadError::ErrorBudgetExceeded`].
pub fn read_jsonl_lossy<R: BufRead>(r: R, budget: ErrorBudget) -> Result<LossyRead, ReadError> {
    collect_records_lossy(JsonlRecords::new(r), budget)
}

/// CSV header used by [`write_csv`].
pub const CSV_HEADER: &str =
    "timestamp_ms,device_type,device_id,user_id,request,volume_bytes,processing_ms,srv_ms,rtt_ms,proxied";

fn device_str(d: DeviceType) -> &'static str {
    match d {
        DeviceType::Android => "android",
        DeviceType::Ios => "ios",
        DeviceType::Pc => "pc",
    }
}

fn request_str(r: RequestType) -> &'static str {
    match r {
        RequestType::FileOp(Direction::Store) => "file_store",
        RequestType::FileOp(Direction::Retrieve) => "file_retrieve",
        RequestType::Chunk(Direction::Store) => "chunk_store",
        RequestType::Chunk(Direction::Retrieve) => "chunk_retrieve",
    }
}

fn parse_device(s: &str) -> Option<DeviceType> {
    match s {
        "android" => Some(DeviceType::Android),
        "ios" => Some(DeviceType::Ios),
        "pc" => Some(DeviceType::Pc),
        _ => None,
    }
}

fn parse_request(s: &str) -> Option<RequestType> {
    match s {
        "file_store" => Some(RequestType::FileOp(Direction::Store)),
        "file_retrieve" => Some(RequestType::FileOp(Direction::Retrieve)),
        "chunk_store" => Some(RequestType::Chunk(Direction::Store)),
        "chunk_retrieve" => Some(RequestType::Chunk(Direction::Retrieve)),
        _ => None,
    }
}

/// Formats an `f64` as JSON: shortest round-trip decimal for finite
/// values, `null` for non-finite ones (matching serde_json).
struct JsonF64(f64);

impl fmt::Display for JsonF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_finite() {
            write!(f, "{:?}", self.0)
        } else {
            f.write_str("null")
        }
    }
}

/// Serialises one record as a JSON line in the derived-serde encoding
/// ([`parse_json_record`] is the inverse).
pub(crate) fn write_jsonl_record<W: Write>(mut w: W, r: &LogRecord) -> io::Result<()> {
    let device_type = match r.device_type {
        DeviceType::Android => "Android",
        DeviceType::Ios => "Ios",
        DeviceType::Pc => "Pc",
    };
    let (req_variant, dir) = match r.request {
        RequestType::FileOp(d) => ("FileOp", d),
        RequestType::Chunk(d) => ("Chunk", d),
    };
    let direction = match dir {
        Direction::Store => "Store",
        Direction::Retrieve => "Retrieve",
    };
    writeln!(
        w,
        "{{\"timestamp_ms\":{},\"device_type\":\"{}\",\"device_id\":{},\"user_id\":{},\
         \"request\":{{\"{}\":\"{}\"}},\"volume_bytes\":{},\"processing_ms\":{},\
         \"srv_ms\":{},\"rtt_ms\":{},\"proxied\":{}}}",
        r.timestamp_ms,
        device_type,
        r.device_id,
        r.user_id,
        req_variant,
        direction,
        r.volume_bytes,
        JsonF64(r.processing_ms),
        JsonF64(r.srv_ms),
        JsonF64(r.rtt_ms),
        r.proxied,
    )
}

/// Serialises one record as a CSV body line.
fn write_csv_record<W: Write>(mut w: W, r: &LogRecord) -> io::Result<()> {
    writeln!(
        w,
        "{},{},{},{},{},{},{},{},{},{}",
        r.timestamp_ms,
        device_str(r.device_type),
        r.device_id,
        r.user_id,
        request_str(r.request),
        r.volume_bytes,
        r.processing_ms,
        r.srv_ms,
        r.rtt_ms,
        u8::from(r.proxied),
    )
}

/// Writes records as CSV with [`CSV_HEADER`]. No field can contain commas,
/// so no quoting is needed.
pub fn write_csv<W: Write>(
    mut w: W,
    records: impl IntoIterator<Item = LogRecord>,
) -> io::Result<usize> {
    writeln!(w, "{CSV_HEADER}")?;
    let mut n = 0;
    for r in records {
        write_csv_record(&mut w, &r)?;
        n += 1;
    }
    Ok(n)
}

/// Parses one CSV body line (`line_no` is 1-based, for diagnostics).
fn parse_csv_record(line_no: usize, line: &str) -> Result<LogRecord, ReadError> {
    let bad = |field: &'static str| ReadError::Field {
        line: line_no,
        field,
    };
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != 10 {
        return Err(ReadError::FieldCount {
            line: line_no,
            got: f.len(),
        });
    }
    Ok(LogRecord {
        timestamp_ms: f[0].parse().map_err(|_| bad("timestamp"))?,
        device_type: parse_device(f[1]).ok_or_else(|| bad("device type"))?,
        device_id: f[2].parse().map_err(|_| bad("device id"))?,
        user_id: f[3].parse().map_err(|_| bad("user id"))?,
        request: parse_request(f[4]).ok_or_else(|| bad("request type"))?,
        volume_bytes: f[5].parse().map_err(|_| bad("volume"))?,
        processing_ms: f[6].parse().map_err(|_| bad("processing time"))?,
        srv_ms: f[7].parse().map_err(|_| bad("srv time"))?,
        rtt_ms: f[8].parse().map_err(|_| bad("rtt"))?,
        proxied: match f[9] {
            "0" => false,
            "1" => true,
            _ => return Err(bad("proxied flag")),
        },
    })
}

/// Reads CSV produced by [`write_csv`] (header required).
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<LogRecord>, ReadError> {
    collect_records(CsvRecords::new(r))
}

/// Reads CSV, quarantining malformed body lines instead of failing on the
/// first one. A missing or wrong header is still fatal — that is the whole
/// file misidentified, not a scuffed line — as are I/O errors. Blowing the
/// [`ErrorBudget`] returns [`ReadError::ErrorBudgetExceeded`].
pub fn read_csv_lossy<R: BufRead>(r: R, budget: ErrorBudget) -> Result<LossyRead, ReadError> {
    collect_records_lossy(CsvRecords::new(r), budget)
}

/// Trace file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One serde-JSON record per line.
    Jsonl,
    /// Compact CSV with [`CSV_HEADER`].
    Csv,
    /// Binary columnar `.mct` shard (see [`crate::columnar`]): ~4× denser
    /// than the text formats and decoded without per-record parsing.
    Columnar,
}

impl TraceFormat {
    /// Conventional file extension for this format.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Csv => "csv",
            TraceFormat::Columnar => "mct",
        }
    }
}

/// Push-style streaming writer over any [`TraceFormat`]: create, [`push`]
/// records one at a time, [`finish`]. Headers are written on creation;
/// peak memory is one columnar block at most, never the trace.
///
/// [`push`]: TraceWriter::push
/// [`finish`]: TraceWriter::finish
pub enum TraceWriter<W: Write> {
    /// JSON lines.
    Jsonl {
        /// Underlying writer.
        w: W,
        /// Records written so far.
        written: u64,
    },
    /// CSV ([`CSV_HEADER`] already written).
    Csv {
        /// Underlying writer.
        w: W,
        /// Records written so far.
        written: u64,
    },
    /// Binary columnar `.mct` shard (header already written).
    Columnar(ColumnarWriter<W>),
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace in `format`, writing any header immediately.
    pub fn new(mut w: W, format: TraceFormat) -> io::Result<Self> {
        Ok(match format {
            TraceFormat::Jsonl => TraceWriter::Jsonl { w, written: 0 },
            TraceFormat::Csv => {
                writeln!(w, "{CSV_HEADER}")?;
                TraceWriter::Csv { w, written: 0 }
            }
            TraceFormat::Columnar => TraceWriter::Columnar(ColumnarWriter::new(w)?),
        })
    }

    /// Appends one record.
    pub fn push(&mut self, r: &LogRecord) -> io::Result<()> {
        match self {
            TraceWriter::Jsonl { w, written } => {
                write_jsonl_record(&mut *w, r)?;
                *written += 1;
                Ok(())
            }
            TraceWriter::Csv { w, written } => {
                write_csv_record(&mut *w, r)?;
                *written += 1;
                Ok(())
            }
            TraceWriter::Columnar(cw) => cw.push(r),
        }
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        match self {
            TraceWriter::Jsonl { written, .. } | TraceWriter::Csv { written, .. } => *written,
            TraceWriter::Columnar(cw) => cw.records_written(),
        }
    }

    /// Flushes any buffered tail (the trailing columnar block) and the
    /// underlying writer, returning it with the total record count.
    pub fn finish(self) -> io::Result<(W, u64)> {
        match self {
            TraceWriter::Jsonl { mut w, written } | TraceWriter::Csv { mut w, written } => {
                w.flush()?;
                Ok((w, written))
            }
            TraceWriter::Columnar(cw) => cw.finish(),
        }
    }
}

/// Writes a full generated trace to `path`, streaming user blocks in
/// generation order (records are time-ordered *per user*; use
/// [`crate::TraceGenerator::generate_sorted`] or
/// [`crate::TraceGenerator::write_sorted_trace_file`] if a globally
/// sorted file is required).
pub fn write_trace_file(
    gen: &crate::TraceGenerator,
    path: &std::path::Path,
    format: TraceFormat,
) -> io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(std::io::BufWriter::new(file), format)?;
    for block in gen.iter_user_records() {
        for r in block {
            w.push(&r)?;
        }
    }
    let (_, written) = w.finish()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CHUNK_SIZE;
    use std::io::BufReader;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord {
                timestamp_ms: 0,
                device_type: DeviceType::Android,
                device_id: 1,
                user_id: 10,
                request: RequestType::FileOp(Direction::Store),
                volume_bytes: 0,
                processing_ms: 12.5,
                srv_ms: 3.0,
                rtt_ms: 88.0,
                proxied: false,
            },
            LogRecord {
                timestamp_ms: 1500,
                device_type: DeviceType::Ios,
                device_id: 2,
                user_id: 10,
                request: RequestType::Chunk(Direction::Retrieve),
                volume_bytes: CHUNK_SIZE,
                processing_ms: 950.0,
                srv_ms: 120.0,
                rtt_ms: 140.5,
                proxied: true,
            },
            LogRecord {
                timestamp_ms: 99_999,
                device_type: DeviceType::Pc,
                device_id: 3,
                user_id: 11,
                request: RequestType::Chunk(Direction::Store),
                volume_bytes: 4096,
                processing_ms: 80.0,
                srv_ms: 60.0,
                rtt_ms: 30.0,
                proxied: false,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let n = write_jsonl(&mut buf, recs.clone()).unwrap();
        assert_eq!(n, 3);
        let back = read_jsonl(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn csv_round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let n = write_csv(&mut buf, recs.clone()).unwrap();
        assert_eq!(n, 3);
        let back = read_csv(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let recs = sample_records();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, recs.clone()).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, sample_records()).unwrap();
        buf.extend_from_slice(b"not json\n");
        let err = read_jsonl(BufReader::new(&buf[..])).unwrap_err();
        match err {
            ReadError::Json { line, .. } => assert_eq!(line, 4),
            other => panic!("expected Json error, got {other:?}"),
        }
        assert!(err.to_string().starts_with("line 4:"));
    }

    #[test]
    fn csv_rejects_missing_header() {
        let err =
            read_csv(BufReader::new(&b"1,android,1,1,file_store,0,1,1,1,0\n"[..])).unwrap_err();
        assert!(matches!(err, ReadError::BadHeader));
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn csv_rejects_bad_field() {
        let mut buf = Vec::new();
        write_csv(&mut buf, sample_records()).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("android", "blackberry");
        let err = read_csv(BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            ReadError::Field { line, field } => {
                assert_eq!(line, 2);
                assert_eq!(field, "device type");
            }
            other => panic!("expected Field error, got {other:?}"),
        }
        assert!(err.to_string().contains("device type"));
    }

    #[test]
    fn csv_rejects_wrong_field_count() {
        let mut buf = Vec::new();
        write_csv(&mut buf, sample_records()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("1,2,3\n");
        let err = read_csv(BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            ReadError::FieldCount { line, got } => {
                assert_eq!(line, 5);
                assert_eq!(got, 3);
            }
            other => panic!("expected FieldCount error, got {other:?}"),
        }
    }

    #[test]
    fn read_error_exposes_sources() {
        let json_err = read_jsonl(BufReader::new(&b"{\n"[..])).unwrap_err();
        assert!(std::error::Error::source(&json_err).is_some());
        let io_err = ReadError::from(io::Error::other("disk on fire"));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(io_err.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&ReadError::BadHeader).is_none());
    }

    #[test]
    fn csv_empty_input_is_empty_vec() {
        assert!(read_csv(BufReader::new(&b""[..])).unwrap().is_empty());
    }

    #[test]
    fn record_level_classification() {
        assert!(ReadError::Json {
            line: 1,
            source: parse_json_record("{").unwrap_err(),
        }
        .is_record_level());
        assert!(ReadError::FieldCount { line: 1, got: 3 }.is_record_level());
        assert!(ReadError::DictIndex {
            block: 0,
            record: 0,
            index: 1,
            len: 0
        }
        .is_record_level());
        assert!(ReadError::OpCode {
            block: 0,
            record: 0,
            code: 255
        }
        .is_record_level());
        assert!(!ReadError::BadHeader.is_record_level());
        assert!(!ReadError::BadMagic.is_record_level());
        assert!(!ReadError::Truncated { offset: 7 }.is_record_level());
        assert!(!ReadError::Io(io::Error::other("x")).is_record_level());
    }

    #[test]
    fn streaming_iterator_continues_past_record_errors() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, sample_records()).unwrap();
        buf.extend_from_slice(b"not json\n");
        write_jsonl(&mut buf, sample_records()).unwrap();
        let items: Vec<_> = JsonlRecords::new(BufReader::new(&buf[..])).collect();
        assert_eq!(items.len(), 7);
        assert!(items[3].is_err());
        assert_eq!(items.iter().filter(|i| i.is_ok()).count(), 6);
    }

    #[test]
    fn lossy_jsonl_quarantines_garbage_lines() {
        let recs = sample_records();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, recs.clone()).unwrap();
        buf.extend_from_slice(b"not json\n{\"half\": \n");
        write_jsonl(&mut buf, recs.clone()).unwrap();
        let got = read_jsonl_lossy(BufReader::new(&buf[..]), ErrorBudget::default()).unwrap();
        assert_eq!(got.records.len(), 6, "good lines survive the bad ones");
        assert_eq!(got.quarantined.len(), 2);
        assert!(matches!(
            got.quarantined[0],
            ReadError::Json { line: 4, .. }
        ));
        assert!((got.error_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lossy_csv_quarantines_and_keeps_line_numbers() {
        let mut buf = Vec::new();
        write_csv(&mut buf, sample_records()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("1,2,3\n"); // wrong field count → line 5
        text.push_str("x,android,1,1,file_store,0,1,1,1,0\n"); // bad timestamp → line 6
        let got = read_csv_lossy(BufReader::new(text.as_bytes()), ErrorBudget::default()).unwrap();
        assert_eq!(got.records.len(), 3);
        assert_eq!(got.quarantined.len(), 2);
        assert!(matches!(
            got.quarantined[0],
            ReadError::FieldCount { line: 5, got: 3 }
        ));
        assert!(matches!(
            got.quarantined[1],
            ReadError::Field {
                line: 6,
                field: "timestamp"
            }
        ));
    }

    #[test]
    fn lossy_csv_still_rejects_bad_header() {
        let err = read_csv_lossy(
            BufReader::new(&b"not,a,header\n"[..]),
            ErrorBudget::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ReadError::BadHeader));
    }

    #[test]
    fn lossy_readers_enforce_the_error_budget() {
        let mut text = String::from(CSV_HEADER);
        text.push('\n');
        for _ in 0..5 {
            text.push_str("garbage line\n");
        }
        let err = read_csv_lossy(
            BufReader::new(text.as_bytes()),
            ErrorBudget { max_errors: 3 },
        )
        .unwrap_err();
        match err {
            ReadError::ErrorBudgetExceeded { errors, budget } => {
                assert_eq!(errors, 4, "gives up as soon as the budget is blown");
                assert_eq!(budget, 3);
            }
            other => panic!("expected ErrorBudgetExceeded, got {other:?}"),
        }
        assert_eq!(
            err.to_string(),
            "gave up after 4 malformed lines (budget: 3)"
        );
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn lossy_read_of_clean_input_matches_strict_read() {
        let mut buf = Vec::new();
        write_csv(&mut buf, sample_records()).unwrap();
        let strict = read_csv(BufReader::new(&buf[..])).unwrap();
        let lossy = read_csv_lossy(BufReader::new(&buf[..]), ErrorBudget::default()).unwrap();
        assert_eq!(lossy.records, strict);
        assert!(lossy.quarantined.is_empty());
        assert_eq!(lossy.error_rate(), 0.0);
        assert_eq!(LossyRead::default().error_rate(), 0.0);
    }

    #[test]
    fn trace_writer_matches_batch_writers_per_format() {
        let recs = sample_records();
        for format in [TraceFormat::Jsonl, TraceFormat::Csv, TraceFormat::Columnar] {
            let mut streamed = Vec::new();
            let mut w = TraceWriter::new(&mut streamed, format).unwrap();
            for r in &recs {
                w.push(r).unwrap();
            }
            assert_eq!(w.records_written(), 3);
            let (_, n) = w.finish().unwrap();
            assert_eq!(n, 3);

            let mut batch = Vec::new();
            match format {
                TraceFormat::Jsonl => {
                    write_jsonl(&mut batch, recs.clone()).unwrap();
                }
                TraceFormat::Csv => {
                    write_csv(&mut batch, recs.clone()).unwrap();
                }
                TraceFormat::Columnar => {
                    crate::columnar::write_columnar(&mut batch, recs.clone()).unwrap();
                }
            }
            assert_eq!(streamed, batch, "{format:?}");

            let back =
                collect_records(RecordStream::new(BufReader::new(&streamed[..]), format)).unwrap();
            assert_eq!(back, recs, "{format:?}");
        }
    }

    #[test]
    fn format_extensions() {
        assert_eq!(TraceFormat::Jsonl.extension(), "jsonl");
        assert_eq!(TraceFormat::Csv.extension(), "csv");
        assert_eq!(TraceFormat::Columnar.extension(), "mct");
    }

    #[test]
    fn trace_file_round_trip() {
        use crate::{TraceConfig, TraceGenerator};
        let gen = TraceGenerator::new(TraceConfig {
            mobile_users: 60,
            pc_only_users: 10,
            ..TraceConfig::default()
        })
        .unwrap();
        let dir = std::env::temp_dir();
        let jsonl_path = dir.join("mcs-io-test.jsonl");
        let csv_path = dir.join("mcs-io-test.csv");
        let mct_path = dir.join("mcs-io-test.mct");
        let n1 = write_trace_file(&gen, &jsonl_path, TraceFormat::Jsonl).unwrap();
        let n2 = write_trace_file(&gen, &csv_path, TraceFormat::Csv).unwrap();
        let n3 = write_trace_file(&gen, &mct_path, TraceFormat::Columnar).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(n1, n3);
        assert!(n1 > 100);
        let back_jsonl =
            read_jsonl(BufReader::new(std::fs::File::open(&jsonl_path).unwrap())).unwrap();
        let back_csv = read_csv(BufReader::new(std::fs::File::open(&csv_path).unwrap())).unwrap();
        let back_mct =
            crate::columnar::read_columnar(BufReader::new(std::fs::File::open(&mct_path).unwrap()))
                .unwrap();
        assert_eq!(back_jsonl, back_csv);
        assert_eq!(back_jsonl, back_mct);
        assert_eq!(back_jsonl.len() as u64, n1);
        assert!(
            std::fs::metadata(&mct_path).unwrap().len()
                < std::fs::metadata(&jsonl_path).unwrap().len() / 3,
            "columnar shard should be far denser than JSONL"
        );
        let _ = std::fs::remove_file(jsonl_path);
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(mct_path);
    }
}
