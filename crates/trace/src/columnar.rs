//! The `.mct` binary columnar trace shard format.
//!
//! JSONL and CSV keep paper-scale traces honest but slow: at 349 M
//! records the text formats spend their time in `serde_json`/`str::parse`
//! and burn ~200 bytes per record. `.mct` stores the Table 1 schema as
//! fixed-width little-endian columns inside length-prefixed blocks, with
//! the high-cardinality user/device identifiers interned through a
//! per-shard dictionary — decoding is a bounds-checked memcpy per column,
//! and a record costs ~49 bytes plus its share of the dictionary.
//!
//! On-disk layout (DESIGN.md §11 is the normative spec):
//!
//! ```text
//! shard  := header block*
//! header := magic "MCT1" | version u32 | flags u32 | fnv1a64(previous 12 bytes)
//! block  := record_count u32 | payload_len u32 | payload
//! payload:= new_users u32   | new_users  × u64      (dictionary delta)
//!         | new_devices u32 | new_devices × u64     (dictionary delta)
//!         | timestamp_ms  record_count × u64
//!         | user_idx      record_count × u32        (index into user dict)
//!         | device_idx    record_count × u32        (index into device dict)
//!         | op            record_count × u8         (packed op code)
//!         | volume_bytes  record_count × u64
//!         | processing_ms record_count × f64
//!         | srv_ms        record_count × f64
//!         | rtt_ms        record_count × f64
//! ```
//!
//! All integers and floats are little-endian. The shard dictionary is the
//! concatenation of the per-block deltas in block order (first-appearance
//! order within the shard); indices may reference entries introduced by
//! the *same* block, so a reader only ever needs the blocks it has already
//! seen — the format streams in one forward pass and a writer never
//! buffers more than one block. End of file after a complete block is the
//! terminator; EOF anywhere else is a typed
//! [`ReadError::Truncated`].

use std::collections::HashMap;
use std::io::{self, BufRead, Write};

use crate::io::{collect_records, collect_records_lossy, ErrorBudget, LossyRead, ReadError};
use crate::record::{DeviceType, Direction, LogRecord, RequestType};

/// Magic bytes opening every `.mct` shard.
pub const MAGIC: [u8; 4] = *b"MCT1";

/// Current format version.
pub const VERSION: u32 = 1;

/// Default records per block: large enough to amortise framing, small
/// enough that a decoded block stays cache- and allocator-friendly.
pub const DEFAULT_BLOCK_RECORDS: usize = 32 * 1024;

/// Hard cap on a block's payload length (guards allocations against a
/// corrupt or adversarial length prefix).
const MAX_PAYLOAD_LEN: u32 = 256 * 1024 * 1024;

/// Hard cap on records per block (same guard, other axis).
const MAX_BLOCK_RECORDS: u32 = 1 << 24;

/// Bytes one record occupies across the fixed-width columns.
const RECORD_BYTES: usize = 8 + 4 + 4 + 1 + 8 + 8 + 8 + 8;

/// FNV-1a 64-bit over `bytes` — the header checksum. Hand-rolled so the
/// format needs no hashing dependency.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Packs the three categorical fields into one op-code byte:
/// `device_type * 8 + request * 2 + proxied`.
fn op_code(r: &LogRecord) -> u8 {
    let dt = match r.device_type {
        DeviceType::Android => 0u8,
        DeviceType::Ios => 1,
        DeviceType::Pc => 2,
    };
    let req = match r.request {
        RequestType::FileOp(Direction::Store) => 0u8,
        RequestType::FileOp(Direction::Retrieve) => 1,
        RequestType::Chunk(Direction::Store) => 2,
        RequestType::Chunk(Direction::Retrieve) => 3,
    };
    dt * 8 + req * 2 + u8::from(r.proxied)
}

/// Reverses [`op_code`]; `None` for bytes outside the valid range.
fn op_decode(code: u8) -> Option<(DeviceType, RequestType, bool)> {
    let dt = match code / 8 {
        0 => DeviceType::Android,
        1 => DeviceType::Ios,
        2 => DeviceType::Pc,
        _ => return None,
    };
    let req = match (code % 8) / 2 {
        0 => RequestType::FileOp(Direction::Store),
        1 => RequestType::FileOp(Direction::Retrieve),
        2 => RequestType::Chunk(Direction::Store),
        _ => RequestType::Chunk(Direction::Retrieve),
    };
    Some((dt, req, code % 2 == 1))
}

// ---------------------------------------------------------------- writer

/// Streaming `.mct` writer: push records one at a time, blocks flush to
/// the underlying writer as they fill, [`finish`](Self::finish) flushes
/// the remainder. Peak memory is one block, never the shard.
pub struct ColumnarWriter<W: Write> {
    w: W,
    block_records: usize,
    /// Shard-wide id → dictionary-index maps (lookup only; iteration
    /// order never observed).
    users: HashMap<u64, u32>,
    devices: HashMap<u64, u32>,
    /// Dictionary entries first seen in the current block.
    new_users: Vec<u64>,
    new_devices: Vec<u64>,
    /// Records buffered for the current block, already interned.
    buf: Vec<(LogRecord, u32, u32)>,
    written: u64,
}

impl<W: Write> ColumnarWriter<W> {
    /// Writes the shard header and returns a writer with the default
    /// block size.
    pub fn new(w: W) -> io::Result<Self> {
        Self::with_block_records(w, DEFAULT_BLOCK_RECORDS)
    }

    /// [`ColumnarWriter::new`] with an explicit records-per-block cap
    /// (mainly for tests exercising multi-block shards).
    pub fn with_block_records(mut w: W, block_records: usize) -> io::Result<Self> {
        let block_records = block_records.clamp(1, MAX_BLOCK_RECORDS as usize);
        let mut header = [0u8; 20];
        header[..4].copy_from_slice(&MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&0u32.to_le_bytes());
        let sum = fnv1a64(&header[..12]);
        header[12..20].copy_from_slice(&sum.to_le_bytes());
        w.write_all(&header)?;
        Ok(Self {
            w,
            block_records,
            users: HashMap::new(),
            devices: HashMap::new(),
            new_users: Vec::new(),
            new_devices: Vec::new(),
            buf: Vec::with_capacity(block_records),
            written: 0,
        })
    }

    /// Appends one record; flushes a block when the buffer is full.
    pub fn push(&mut self, r: &LogRecord) -> io::Result<()> {
        let uidx = intern(&mut self.users, &mut self.new_users, r.user_id)?;
        let didx = intern(&mut self.devices, &mut self.new_devices, r.device_id)?;
        self.buf.push((*r, uidx, didx));
        self.written += 1;
        if self.buf.len() >= self.block_records {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Flushes the trailing partial block and the underlying writer,
    /// returning it together with the total record count.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        if !self.buf.is_empty() {
            self.flush_block()?;
        }
        self.w.flush()?;
        Ok((self.w, self.written))
    }

    fn flush_block(&mut self) -> io::Result<()> {
        let n = self.buf.len();
        // On-disk block fields are u32; a block that cannot express its own
        // lengths must fail loudly, not truncate into a corrupt file.
        fn u32_len(n: usize, what: &str) -> io::Result<u32> {
            u32::try_from(n).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{what} ({n}) exceeds the u32 block format"),
                )
            })
        }
        let payload_len =
            4 + 8 * self.new_users.len() + 4 + 8 * self.new_devices.len() + n * RECORD_BYTES;
        let mut payload = Vec::with_capacity(payload_len);
        put_u32(
            &mut payload,
            u32_len(self.new_users.len(), "user dictionary")?,
        );
        for &u in &self.new_users {
            payload.extend_from_slice(&u.to_le_bytes());
        }
        put_u32(
            &mut payload,
            u32_len(self.new_devices.len(), "device dictionary")?,
        );
        for &d in &self.new_devices {
            payload.extend_from_slice(&d.to_le_bytes());
        }
        for (r, _, _) in &self.buf {
            payload.extend_from_slice(&r.timestamp_ms.to_le_bytes());
        }
        for &(_, uidx, _) in &self.buf {
            payload.extend_from_slice(&uidx.to_le_bytes());
        }
        for &(_, _, didx) in &self.buf {
            payload.extend_from_slice(&didx.to_le_bytes());
        }
        for (r, _, _) in &self.buf {
            payload.push(op_code(r));
        }
        for (r, _, _) in &self.buf {
            payload.extend_from_slice(&r.volume_bytes.to_le_bytes());
        }
        for (r, _, _) in &self.buf {
            payload.extend_from_slice(&r.processing_ms.to_le_bytes());
        }
        for (r, _, _) in &self.buf {
            payload.extend_from_slice(&r.srv_ms.to_le_bytes());
        }
        for (r, _, _) in &self.buf {
            payload.extend_from_slice(&r.rtt_ms.to_le_bytes());
        }
        self.w
            .write_all(&u32_len(n, "record count")?.to_le_bytes())?;
        self.w
            .write_all(&u32_len(payload.len(), "payload length")?.to_le_bytes())?;
        self.w.write_all(&payload)?;
        self.buf.clear();
        self.new_users.clear();
        self.new_devices.clear();
        Ok(())
    }
}

/// Interns `id`, registering it as a block-delta entry on first sight.
fn intern(map: &mut HashMap<u64, u32>, delta: &mut Vec<u64>, id: u64) -> io::Result<u32> {
    if let Some(&idx) = map.get(&id) {
        return Ok(idx);
    }
    let idx = u32::try_from(map.len())
        .map_err(|_| io::Error::other("columnar dictionary overflow (> 2^32 distinct ids)"))?;
    map.insert(id, idx);
    delta.push(id);
    Ok(idx)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------- reader

/// Streaming `.mct` reader: an iterator of `Result<LogRecord, ReadError>`
/// holding at most one decoded block. Structural damage (bad magic,
/// truncation, inconsistent framing) is fatal and ends the stream;
/// per-record damage (a dictionary index out of range, an invalid op
/// code) is yielded as an `Err` the lossy collectors can quarantine while
/// the stream continues.
pub struct ColumnarRecords<R: BufRead> {
    r: R,
    /// `None` until the header has been read (an empty input is an empty
    /// trace, mirroring the CSV reader).
    started: bool,
    done: bool,
    users: Vec<u64>,
    devices: Vec<u64>,
    /// Decoded records of the current block, drained front to back.
    pending: std::vec::IntoIter<Result<LogRecord, ReadError>>,
    /// 0-based index of the block being decoded next.
    block: u64,
    /// Bytes consumed so far (for truncation diagnostics).
    offset: u64,
}

impl<R: BufRead> ColumnarRecords<R> {
    /// Wraps a reader positioned at the start of a shard.
    pub fn new(r: R) -> Self {
        Self {
            r,
            started: false,
            done: false,
            users: Vec::new(),
            devices: Vec::new(),
            pending: Vec::new().into_iter(),
            block: 0,
            offset: 0,
        }
    }

    fn fatal(&mut self, e: ReadError) -> Option<Result<LogRecord, ReadError>> {
        self.done = true;
        Some(Err(e))
    }

    /// Reads exactly `buf.len()` bytes; `Ok(false)` means clean EOF at
    /// the first byte, `Truncated` means EOF mid-structure.
    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool, ReadError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.r.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(false);
                    }
                    return Err(ReadError::Truncated {
                        offset: self.offset + filled as u64,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.offset += buf.len() as u64;
        Ok(true)
    }

    fn read_header(&mut self) -> Result<bool, ReadError> {
        let mut header = [0u8; 20];
        if !self.read_exact_or_eof(&mut header)? {
            return Ok(false); // empty input: empty trace
        }
        if header[..4] != MAGIC {
            return Err(ReadError::BadMagic);
        }
        let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if version != VERSION {
            return Err(ReadError::UnsupportedVersion { found: version });
        }
        let expected = fnv1a64(&header[..12]);
        let found = u64::from_le_bytes(header[12..20].try_into().unwrap_or([0; 8]));
        if expected != found {
            return Err(ReadError::HeaderChecksum { expected, found });
        }
        Ok(true)
    }

    /// Reads and decodes the next block into `pending`. `Ok(false)` at
    /// clean EOF.
    fn read_block(&mut self) -> Result<bool, ReadError> {
        let block = self.block;
        let mut frame = [0u8; 8];
        if !self.read_exact_or_eof(&mut frame)? {
            return Ok(false);
        }
        let n = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let payload_len = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if n > MAX_BLOCK_RECORDS {
            return Err(ReadError::CorruptBlock {
                block,
                reason: "record count exceeds the format cap",
            });
        }
        if payload_len > MAX_PAYLOAD_LEN {
            return Err(ReadError::CorruptBlock {
                block,
                reason: "payload length exceeds the format cap",
            });
        }
        let mut payload = vec![0u8; payload_len as usize];
        if !self.read_exact_or_eof(&mut payload)? {
            return Err(ReadError::Truncated {
                offset: self.offset,
            });
        }
        let mut cur = Cursor {
            bytes: &payload,
            pos: 0,
            block,
        };
        let new_users = cur.take_u32()? as usize;
        for _ in 0..new_users {
            let id = cur.take_u64()?;
            self.users.push(id);
        }
        let new_devices = cur.take_u32()? as usize;
        for _ in 0..new_devices {
            let id = cur.take_u64()?;
            self.devices.push(id);
        }
        let n = n as usize;
        let expected = cur.pos + n * RECORD_BYTES;
        if expected != payload.len() {
            return Err(ReadError::CorruptBlock {
                block,
                reason: "payload length disagrees with record and dictionary counts",
            });
        }
        let ts = cur.take_slice(n * 8)?;
        let uidx = cur.take_slice(n * 4)?;
        let didx = cur.take_slice(n * 4)?;
        let ops = cur.take_slice(n)?;
        let vol = cur.take_slice(n * 8)?;
        let proc_ms = cur.take_slice(n * 8)?;
        let srv = cur.take_slice(n * 8)?;
        let rtt = cur.take_slice(n * 8)?;

        let mut out = Vec::with_capacity(n);
        for (i, &op) in ops.iter().enumerate() {
            let ui = le_u32(uidx, i);
            let di = le_u32(didx, i);
            let user_id = match self.users.get(ui as usize) {
                Some(&u) => u,
                None => {
                    out.push(Err(ReadError::DictIndex {
                        block,
                        record: u32::try_from(i).unwrap_or(u32::MAX),
                        index: ui,
                        len: u32::try_from(self.users.len()).unwrap_or(u32::MAX),
                    }));
                    continue;
                }
            };
            let device_id = match self.devices.get(di as usize) {
                Some(&d) => d,
                None => {
                    out.push(Err(ReadError::DictIndex {
                        block,
                        record: u32::try_from(i).unwrap_or(u32::MAX),
                        index: di,
                        len: u32::try_from(self.devices.len()).unwrap_or(u32::MAX),
                    }));
                    continue;
                }
            };
            let (device_type, request, proxied) = match op_decode(op) {
                Some(t) => t,
                None => {
                    out.push(Err(ReadError::OpCode {
                        block,
                        record: u32::try_from(i).unwrap_or(u32::MAX),
                        code: op,
                    }));
                    continue;
                }
            };
            out.push(Ok(LogRecord {
                timestamp_ms: le_u64(ts, i),
                device_type,
                device_id,
                user_id,
                request,
                volume_bytes: le_u64(vol, i),
                processing_ms: f64::from_bits(le_u64(proc_ms, i)),
                srv_ms: f64::from_bits(le_u64(srv, i)),
                rtt_ms: f64::from_bits(le_u64(rtt, i)),
                proxied,
            }));
        }
        self.pending = out.into_iter();
        self.block += 1;
        Ok(true)
    }
}

/// Little-endian u64 at element `i` of a packed column.
fn le_u64(col: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&col[i * 8..i * 8 + 8]);
    u64::from_le_bytes(b)
}

/// Little-endian u32 at element `i` of a packed column.
fn le_u32(col: &[u8], i: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&col[i * 4..i * 4 + 4]);
    u32::from_le_bytes(b)
}

/// Bounds-checked cursor over a block payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    block: u64,
}

impl<'a> Cursor<'a> {
    fn take_slice(&mut self, len: usize) -> Result<&'a [u8], ReadError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ReadError::CorruptBlock {
                block: self.block,
                reason: "payload shorter than its declared contents",
            }),
        }
    }

    fn take_u32(&mut self) -> Result<u32, ReadError> {
        let s = self.take_slice(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn take_u64(&mut self) -> Result<u64, ReadError> {
        let s = self.take_slice(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }
}

impl<R: BufRead> Iterator for ColumnarRecords<R> {
    type Item = Result<LogRecord, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            match self.read_header() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => return self.fatal(e),
            }
        }
        loop {
            if let Some(item) = self.pending.next() {
                return Some(item);
            }
            match self.read_block() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => return self.fatal(e),
            }
        }
    }
}

// ---------------------------------------------------------------- adapters

/// Writes records as one `.mct` shard, returning the record count.
pub fn write_columnar<W: Write>(
    w: W,
    records: impl IntoIterator<Item = LogRecord>,
) -> io::Result<usize> {
    let mut cw = ColumnarWriter::new(w)?;
    for r in records {
        cw.push(&r)?;
    }
    let (_, n) = cw.finish()?;
    Ok(n as usize)
}

/// Reads a `.mct` shard, failing on the first error.
pub fn read_columnar<R: BufRead>(r: R) -> Result<Vec<LogRecord>, ReadError> {
    collect_records(ColumnarRecords::new(r))
}

/// Reads a `.mct` shard, quarantining per-record damage (bad dictionary
/// indices, invalid op codes) under the [`ErrorBudget`]; structural
/// damage stays fatal.
pub fn read_columnar_lossy<R: BufRead>(r: R, budget: ErrorBudget) -> Result<LossyRead, ReadError> {
    collect_records_lossy(ColumnarRecords::new(r), budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CHUNK_SIZE;
    use std::io::BufReader;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord {
                timestamp_ms: 0,
                device_type: DeviceType::Android,
                device_id: 11,
                user_id: 500,
                request: RequestType::FileOp(Direction::Store),
                volume_bytes: 0,
                processing_ms: 12.5,
                srv_ms: 3.0,
                rtt_ms: 88.0,
                proxied: false,
            },
            LogRecord {
                timestamp_ms: 1500,
                device_type: DeviceType::Ios,
                device_id: 12,
                user_id: 500,
                request: RequestType::Chunk(Direction::Retrieve),
                volume_bytes: CHUNK_SIZE,
                processing_ms: 950.25,
                srv_ms: 120.0,
                rtt_ms: 140.5,
                proxied: true,
            },
            LogRecord {
                timestamp_ms: 99_999,
                device_type: DeviceType::Pc,
                device_id: 13,
                user_id: 501,
                request: RequestType::Chunk(Direction::Store),
                volume_bytes: 4096,
                processing_ms: 80.0,
                srv_ms: 60.0,
                rtt_ms: 30.0,
                proxied: false,
            },
        ]
    }

    fn encode(records: &[LogRecord], block_records: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = ColumnarWriter::with_block_records(&mut buf, block_records).unwrap();
        for r in records {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn round_trip_single_block() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let n = write_columnar(&mut buf, recs.clone()).unwrap();
        assert_eq!(n, 3);
        let back = read_columnar(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn round_trip_multi_block_with_dict_deltas() {
        // Block size 2 forces the second block to reference dictionary
        // entries introduced by the first AND to introduce its own.
        let recs = sample_records();
        let buf = encode(&recs, 2);
        let back = read_columnar(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn op_code_round_trips_all_valid_values() {
        for dt in [DeviceType::Android, DeviceType::Ios, DeviceType::Pc] {
            for req in [
                RequestType::FileOp(Direction::Store),
                RequestType::FileOp(Direction::Retrieve),
                RequestType::Chunk(Direction::Store),
                RequestType::Chunk(Direction::Retrieve),
            ] {
                for proxied in [false, true] {
                    let mut r = sample_records()[0];
                    r.device_type = dt;
                    r.request = req;
                    r.proxied = proxied;
                    let (d2, q2, p2) = op_decode(op_code(&r)).unwrap();
                    assert_eq!((d2, q2, p2), (dt, req, proxied));
                }
            }
        }
        assert!(op_decode(24).is_none());
        assert!(op_decode(255).is_none());
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(read_columnar(BufReader::new(&b""[..])).unwrap().is_empty());
    }

    #[test]
    fn empty_shard_with_header_is_empty_trace() {
        let mut buf = Vec::new();
        let n = write_columnar(&mut buf, Vec::new()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(buf.len(), 20, "header only");
        assert!(read_columnar(BufReader::new(&buf[..])).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut buf = encode(&sample_records(), 64);
        buf[0] = b'X';
        let err = read_columnar(BufReader::new(&buf[..])).unwrap_err();
        assert!(matches!(err, ReadError::BadMagic));
    }

    #[test]
    fn wrong_version_is_fatal() {
        let mut buf = encode(&sample_records(), 64);
        buf[4] = 9;
        // Re-seal the checksum so the version check (not the checksum)
        // fires.
        let sum = fnv1a64(&buf[..12]);
        buf[12..20].copy_from_slice(&sum.to_le_bytes());
        let err = read_columnar(BufReader::new(&buf[..])).unwrap_err();
        assert!(matches!(err, ReadError::UnsupportedVersion { found: 9 }));
    }

    #[test]
    fn corrupt_header_checksum_is_fatal() {
        let mut buf = encode(&sample_records(), 64);
        buf[13] ^= 0xff;
        let err = read_columnar(BufReader::new(&buf[..])).unwrap_err();
        assert!(matches!(err, ReadError::HeaderChecksum { .. }));
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncated_header_is_fatal() {
        let buf = encode(&sample_records(), 64);
        let err = read_columnar(BufReader::new(&buf[..10])).unwrap_err();
        assert!(matches!(err, ReadError::Truncated { .. }));
    }

    #[test]
    fn truncated_block_is_fatal() {
        let buf = encode(&sample_records(), 64);
        let err = read_columnar(BufReader::new(&buf[..buf.len() - 7])).unwrap_err();
        assert!(matches!(err, ReadError::Truncated { .. }));
        // And a cut inside the frame prefix itself:
        let err = read_columnar(BufReader::new(&buf[..23])).unwrap_err();
        assert!(matches!(err, ReadError::Truncated { .. }));
    }

    #[test]
    fn inconsistent_payload_length_is_fatal() {
        let mut buf = encode(&sample_records(), 64);
        //

        // Bump the record count without growing the payload.
        let n = u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]);
        buf[20..24].copy_from_slice(&(n + 1).to_le_bytes());
        let err = read_columnar(BufReader::new(&buf[..])).unwrap_err();
        assert!(matches!(err, ReadError::CorruptBlock { block: 0, .. }));
    }

    #[test]
    fn dict_index_out_of_range_is_per_record() {
        let recs = sample_records();
        let mut buf = encode(&recs, 64);
        // The user-index column starts after the frame (8) + dict deltas:
        // 4 + 2*8 users, 4 + 3*8 devices, then 3*8 timestamps.
        let uidx_off = 20 + 8 + (4 + 16) + (4 + 24) + 24;
        buf[uidx_off..uidx_off + 4].copy_from_slice(&99u32.to_le_bytes());
        let err = read_columnar(BufReader::new(&buf[..])).unwrap_err();
        match err {
            ReadError::DictIndex {
                block: 0,
                record: 0,
                index: 99,
                len,
            } => assert_eq!(len, 2),
            other => panic!("expected DictIndex, got {other:?}"),
        }
        // Lossy mode quarantines the one record and keeps the rest.
        let lossy = read_columnar_lossy(BufReader::new(&buf[..]), ErrorBudget::default()).unwrap();
        assert_eq!(lossy.records, recs[1..]);
        assert_eq!(lossy.quarantined.len(), 1);
    }

    #[test]
    fn invalid_op_code_is_per_record_and_respects_budget() {
        let recs = sample_records();
        let mut buf = encode(&recs, 64);
        // The op column: frame + dicts + ts + uidx + didx.
        let op_off = 20 + 8 + (4 + 16) + (4 + 24) + 24 + 12 + 12;
        buf[op_off] = 240;
        buf[op_off + 1] = 241;
        let lossy = read_columnar_lossy(BufReader::new(&buf[..]), ErrorBudget::default()).unwrap();
        assert_eq!(lossy.records, recs[2..]);
        assert_eq!(lossy.quarantined.len(), 2);
        assert!(matches!(
            lossy.quarantined[0],
            ReadError::OpCode {
                block: 0,
                record: 0,
                code: 240
            }
        ));
        let err = read_columnar_lossy(BufReader::new(&buf[..]), ErrorBudget { max_errors: 1 })
            .unwrap_err();
        assert!(matches!(
            err,
            ReadError::ErrorBudgetExceeded {
                errors: 2,
                budget: 1
            }
        ));
    }

    #[test]
    fn re_encode_is_byte_identical() {
        let recs = sample_records();
        let buf = encode(&recs, 2);
        let back = read_columnar(BufReader::new(&buf[..])).unwrap();
        let again = encode(&back, 2);
        assert_eq!(buf, again);
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
