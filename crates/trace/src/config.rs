//! Generator configuration, with defaults calibrated to every distribution
//! the paper publishes.
//!
//! The proprietary 349 M-request trace is unavailable; [`TraceConfig`]
//! parameterises a generative model whose defaults are taken from the
//! paper's own numbers (Table 2 mixtures, Table 3 class fractions, the
//! Fig. 3 interval modes, the Fig. 16 processing-time gaps, …). The
//! analysis crate never sees these parameters — it re-derives them from the
//! generated logs, closing the loop.

use serde::{Deserialize, Serialize};

/// Fractions of the four §3.2.1 user classes within one client group
/// (Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Stored/retrieved volume ratio > 10⁵.
    pub upload_only: f64,
    /// Ratio < 10⁻⁵.
    pub download_only: f64,
    /// Total traffic under 1 MB.
    pub occasional: f64,
    /// Everything else.
    pub mixed: f64,
}

impl ClassMix {
    /// Validates that the fractions are a probability vector.
    pub fn validate(&self) -> Result<(), String> {
        let parts = [
            self.upload_only,
            self.download_only,
            self.occasional,
            self.mixed,
        ];
        if parts.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err("class fractions must lie in [0,1]".into());
        }
        let sum: f64 = parts.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("class fractions must sum to 1, got {sum}"));
        }
        Ok(())
    }
}

/// Exponential-mixture file-size model: `(weight, mean_bytes)` components
/// (Table 2, converted from MB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileSizeModel {
    /// `(αᵢ, µᵢ in bytes)` components.
    pub components: Vec<(f64, f64)>,
}

impl FileSizeModel {
    /// Table 2 store-only row: 0.91 @ 1.5 MB, 0.07 @ 13.1 MB, 0.02 @ 77.4 MB.
    pub fn paper_store() -> Self {
        Self {
            components: vec![(0.91, 1.5 * MB), (0.07, 13.1 * MB), (0.02, 77.4 * MB)],
        }
    }

    /// Table 2 retrieve-only row: 0.46 @ 1.6 MB, 0.26 @ 29.8 MB,
    /// 0.28 @ 146.8 MB.
    pub fn paper_retrieve() -> Self {
        Self {
            components: vec![(0.46, 1.6 * MB), (0.26, 29.8 * MB), (0.28, 146.8 * MB)],
        }
    }

    /// Validates weights and means.
    pub fn validate(&self) -> Result<(), String> {
        if self.components.is_empty() {
            return Err("file size model needs at least one component".into());
        }
        let wsum: f64 = self.components.iter().map(|&(w, _)| w).sum();
        if (wsum - 1.0).abs() > 1e-6 {
            return Err(format!("file size weights must sum to 1, got {wsum}"));
        }
        if self.components.iter().any(|&(w, m)| w < 0.0 || m <= 0.0) {
            return Err("file size components need w >= 0 and mean > 0".into());
        }
        Ok(())
    }
}

/// One megabyte in bytes (decimal, as the paper's MB figures are).
pub const MB: f64 = 1_000_000.0;

/// Session-process parameters: the Fig. 3 two-mode interval structure and
/// the §3.1 session-type mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionModel {
    /// Median gap between file operations inside a session, seconds.
    /// (Most operations are batched by the app's multi-select UI.)
    pub intra_op_gap_median_s: f64,
    /// σ of ln(gap) for within-session gaps.
    pub intra_op_gap_sigma: f64,
    /// Fraction of within-session gaps that are "stragglers": the user
    /// manually adds another file while transfers run. Together with the
    /// batch gaps these produce Fig. 3's broad within-session component
    /// (mean ≈ 10 s) without destroying Fig. 4's burstiness.
    pub straggler_frac: f64,
    /// Median straggler gap, seconds.
    pub straggler_gap_median_s: f64,
    /// Median gap between sessions of the same user, seconds.
    /// (Fig. 3's inter-session component has mean ≈ 1 day.)
    pub inter_session_gap_median_s: f64,
    /// σ of ln(gap) for inter-session gaps.
    pub inter_session_gap_sigma: f64,
    /// Fraction of sessions that only store (paper: 0.682).
    pub store_only_frac: f64,
    /// Fraction of sessions that only retrieve (paper: 0.299).
    pub retrieve_only_frac: f64,
    /// Zipf exponent for the per-session file count (calibrated so ~40 % of
    /// sessions have one file and ~10 % exceed 20, Fig. 5a).
    pub files_per_session_zipf_s: f64,
    /// Upper bound on files per session.
    pub files_per_session_max: usize,
}

impl Default for SessionModel {
    fn default() -> Self {
        Self {
            intra_op_gap_median_s: 0.2,
            intra_op_gap_sigma: 0.9,
            straggler_frac: 0.02,
            straggler_gap_median_s: 8.0,
            inter_session_gap_median_s: 60_000.0, // ≈ 0.7 day median; mean ≈ 1 day
            inter_session_gap_sigma: 1.0,
            store_only_frac: 0.682,
            retrieve_only_frac: 0.299,
            files_per_session_zipf_s: 1.55,
            files_per_session_max: 200,
        }
    }
}

impl SessionModel {
    /// Validates fractions and positivity.
    pub fn validate(&self) -> Result<(), String> {
        if self.store_only_frac + self.retrieve_only_frac > 1.0 {
            return Err("session type fractions exceed 1".into());
        }
        if self.intra_op_gap_median_s <= 0.0
            || self.inter_session_gap_median_s <= self.intra_op_gap_median_s
        {
            return Err("session gap medians must be positive and ordered".into());
        }
        if self.files_per_session_max == 0 {
            return Err("files_per_session_max must be >= 1".into());
        }
        Ok(())
    }

    /// Fraction of mixed sessions (the remainder; paper: ~0.019).
    pub fn mixed_frac(&self) -> f64 {
        1.0 - self.store_only_frac - self.retrieve_only_frac
    }
}

/// Per-user activity model: a truncated stretched exponential (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityModel {
    /// Characteristic scale x₀ of the SE activity distribution (files).
    pub x0: f64,
    /// Stretch factor c (paper fits ≈ 0.2 store / 0.15 retrieve at 10⁶
    /// users; a scaled-down population needs a milder tail to keep the
    /// maximum activity realistic — see DESIGN.md).
    pub c: f64,
    /// Truncation cap on per-user file counts.
    pub max_files: u64,
}

impl Default for ActivityModel {
    fn default() -> Self {
        Self {
            x0: 8.0,
            c: 0.38,
            max_files: 40_000,
        }
    }
}

/// Network/timing model used to fill the Table 1 timing fields
/// (§4 inputs: RTT ≈ 100 ms median, T_srv ≈ 100 ms, device-dependent
/// chunk times with Fig. 12's Android/iOS gap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Median flow RTT in ms (Fig. 14).
    pub rtt_median_ms: f64,
    /// σ of ln RTT.
    pub rtt_sigma: f64,
    /// Median upstream processing time T_srv in ms (Fig. 16: ≈ 100 ms,
    /// device-independent).
    pub srv_median_ms: f64,
    /// σ of ln T_srv.
    pub srv_sigma: f64,
    /// Median *upload* chunk transmission time per device type, ms
    /// (Fig. 12a: ≈ 1 600 iOS, ≈ 4 100 Android).
    pub upload_chunk_median_ms_ios: f64,
    /// Android counterpart.
    pub upload_chunk_median_ms_android: f64,
    /// Median *download* chunk transmission time per device type, ms
    /// (Fig. 12b: Android ≈ 2× iOS; absolute scale smaller than upload).
    pub download_chunk_median_ms_ios: f64,
    /// Android counterpart.
    pub download_chunk_median_ms_android: f64,
    /// σ of ln(chunk time) — common to all four.
    pub chunk_sigma: f64,
    /// PC clients: median chunk time either direction (PCs see neither the
    /// 64 KB upload clamp badly nor mobile client stalls).
    pub pc_chunk_median_ms: f64,
    /// Fraction of requests arriving through HTTP proxies (filtered out by
    /// the §4 analysis).
    pub proxied_frac: f64,
    /// Fraction of *upload* chunks transmitted exactly at the 64 KB
    /// receive-window bound (fast client on a clean path: throughput =
    /// rwnd/RTT). This is what concentrates Fig. 15's sending-window
    /// estimate at 64 KB.
    pub window_bound_frac: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self {
            rtt_median_ms: 100.0,
            rtt_sigma: 0.9,
            srv_median_ms: 100.0,
            srv_sigma: 0.55,
            upload_chunk_median_ms_ios: 1500.0,
            upload_chunk_median_ms_android: 4000.0,
            download_chunk_median_ms_ios: 800.0,
            download_chunk_median_ms_android: 1600.0,
            chunk_sigma: 0.85,
            pc_chunk_median_ms: 500.0,
            proxied_frac: 0.05,
            window_bound_frac: 0.25,
        }
    }
}

/// Engagement model (Figs. 8 and 9): a bimodal return process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngagementModel {
    /// Probability that a single-mobile-device user is "one-shot" (never
    /// returns after their first active day). Paper Fig. 8: ≈ half of
    /// 1-device users stay inactive all week.
    pub oneshot_1dev: f64,
    /// Same for users with 2 mobile devices (Fig. 8: < 20 %).
    pub oneshot_2dev: f64,
    /// Same for users with 3+ mobile devices.
    pub oneshot_3dev: f64,
    /// Same for mobile + PC users.
    pub oneshot_mobile_pc: f64,
    /// For non-one-shot single-device users: probability of being active
    /// on any given day (stationary; produces the Fig. 8 next-day mode).
    pub daily_return_prob: f64,
    /// Same for multi-device and mobile+PC users (device syncing makes
    /// them show up far more often — the Fig. 8 gap between cohorts).
    pub daily_return_prob_multi: f64,
    /// For mobile+PC users: probability that an upload session is followed
    /// by a PC retrieval of the uploads the same day (Fig. 9's day-0 spike).
    pub pc_sync_same_day_prob: f64,
}

impl Default for EngagementModel {
    fn default() -> Self {
        Self {
            oneshot_1dev: 0.22,
            oneshot_2dev: 0.06,
            oneshot_3dev: 0.05,
            oneshot_mobile_pc: 0.08,
            daily_return_prob: 0.25,
            daily_return_prob_multi: 0.5,
            pc_sync_same_day_prob: 0.35,
        }
    }
}

/// Diurnal intensity: relative weight of each hour of day for session
/// starts. The default reproduces Fig. 1's shape — low early morning,
/// daytime plateau, evening ramp, sharp surge around 23:00 (11 PM, when
/// users reach home WiFi).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalModel {
    /// Relative weight per hour 0..24 (normalised internally).
    pub hour_weights: [f64; 24],
    /// Multiplier on weekend days (Fig. 1 shows slightly higher weekend
    /// volume).
    pub weekend_factor: f64,
}

impl Default for DiurnalModel {
    fn default() -> Self {
        Self {
            hour_weights: [
                1.6, 0.9, 0.5, 0.3, 0.25, 0.3, 0.5, 0.9, // 00-07: overnight trough
                1.3, 1.7, 1.9, 2.0, 2.1, 2.0, 1.9, 2.0, // 08-15: daytime plateau
                2.1, 2.2, 2.4, 2.7, 3.2, 3.9, 4.8, 5.8, // 16-23: evening ramp to 11PM surge
            ],
            weekend_factor: 1.15,
        }
    }
}

/// Top-level generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master seed; every derived stream is deterministic in it.
    pub seed: u64,
    /// Number of mobile users (paper: 1 148 640; default scaled down).
    pub mobile_users: u64,
    /// Number of PC-only users (paper: ~2 M; used for Table 3's PC column).
    pub pc_only_users: u64,
    /// Fraction of mobile users that also use PC clients (paper: 0.143).
    pub mobile_pc_frac: f64,
    /// Fraction of mobile *accesses* from Android devices (paper: 0.784).
    pub android_frac: f64,
    /// Probability vector over device counts {1, 2, 3} for mobile users.
    pub device_count_probs: [f64; 3],
    /// Trace horizon in days (paper: 7).
    pub horizon_days: u32,
    /// Worker threads for parallel generation (`0` = one per available
    /// core). Any value yields the identical trace — per-user RNG streams
    /// make generation order-independent.
    #[serde(default)]
    pub threads: usize,
    /// Class mix for mobile-only users (Table 3, "mobile only").
    pub class_mix_mobile_only: ClassMix,
    /// Class mix for mobile+PC users (Table 3, "mobile & PC").
    pub class_mix_mobile_pc: ClassMix,
    /// Class mix for PC-only users (Table 3, "PC only").
    pub class_mix_pc_only: ClassMix,
    /// Session process parameters.
    pub session: SessionModel,
    /// Store file-size mixture (Table 2 row 1).
    pub store_sizes: FileSizeModel,
    /// Retrieve file-size mixture (Table 2 row 2).
    pub retrieve_sizes: FileSizeModel,
    /// Per-user activity model.
    pub activity: ActivityModel,
    /// Timing model for Table 1 fields.
    pub network: NetworkModel,
    /// Engagement model.
    pub engagement: EngagementModel,
    /// Diurnal profile.
    pub diurnal: DiurnalModel,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 0x4d43_5331, // "MCS1"
            mobile_users: 20_000,
            pc_only_users: 8_000,
            mobile_pc_frac: 0.143,
            android_frac: 0.784,
            device_count_probs: [0.80, 0.15, 0.05],
            horizon_days: 7,
            threads: 0,
            class_mix_mobile_only: ClassMix {
                upload_only: 0.515,
                download_only: 0.173,
                occasional: 0.239,
                mixed: 0.073,
            },
            class_mix_mobile_pc: ClassMix {
                upload_only: 0.537,
                download_only: 0.151,
                occasional: 0.132,
                mixed: 0.180,
            },
            // Table 3's PC-only column (31.6/17.2/34.1/19.1) sums to 102 %
            // in the paper — a rounding artifact; normalised here.
            class_mix_pc_only: ClassMix {
                upload_only: 0.310,
                download_only: 0.169,
                occasional: 0.334,
                mixed: 0.187,
            },
            session: SessionModel::default(),
            store_sizes: FileSizeModel::paper_store(),
            retrieve_sizes: FileSizeModel::paper_retrieve(),
            activity: ActivityModel::default(),
            network: NetworkModel::default(),
            engagement: EngagementModel::default(),
            diurnal: DiurnalModel::default(),
        }
    }
}

impl TraceConfig {
    /// A small configuration for fast tests (~1–2 s of generation).
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            mobile_users: 2_000,
            pc_only_users: 600,
            ..Self::default()
        }
    }

    /// Trace horizon in milliseconds.
    pub fn horizon_ms(&self) -> u64 {
        self.horizon_days as u64 * 24 * 3600 * 1000
    }

    /// Validates the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.mobile_users == 0 {
            return Err("need at least one mobile user".into());
        }
        if self.horizon_days == 0 {
            return Err("horizon must be at least one day".into());
        }
        if !(0.0..=1.0).contains(&self.mobile_pc_frac) {
            return Err("mobile_pc_frac must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.android_frac) {
            return Err("android_frac must be in [0,1]".into());
        }
        let dsum: f64 = self.device_count_probs.iter().sum();
        if (dsum - 1.0).abs() > 1e-6 {
            return Err(format!("device count probs must sum to 1, got {dsum}"));
        }
        self.class_mix_mobile_only.validate()?;
        self.class_mix_mobile_pc.validate()?;
        self.class_mix_pc_only.validate()?;
        self.session.validate()?;
        self.store_sizes.validate()?;
        self.retrieve_sizes.validate()?;
        if self.activity.x0 <= 0.0 || self.activity.c <= 0.0 {
            return Err("activity model needs positive x0 and c".into());
        }
        if self.network.proxied_frac < 0.0 || self.network.proxied_frac > 1.0 {
            return Err("proxied_frac must be in [0,1]".into());
        }
        if self.diurnal.hour_weights.iter().any(|&w| w < 0.0)
            || self.diurnal.hour_weights.iter().sum::<f64>() <= 0.0
        {
            return Err("diurnal weights must be non-negative, not all zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        TraceConfig::default().validate().unwrap();
        TraceConfig::small(1).validate().unwrap();
    }

    #[test]
    fn horizon_math() {
        let c = TraceConfig::default();
        assert_eq!(c.horizon_ms(), 7 * 24 * 3600 * 1000);
    }

    #[test]
    fn class_mix_must_sum_to_one() {
        let mut c = TraceConfig::default();
        c.class_mix_mobile_only.upload_only = 0.9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn device_probs_must_sum_to_one() {
        let mut c = TraceConfig::default();
        c.device_count_probs = [0.5, 0.5, 0.5];
        assert!(c.validate().is_err());
    }

    #[test]
    fn session_fractions_checked() {
        let mut c = TraceConfig::default();
        c.session.store_only_frac = 0.9;
        c.session.retrieve_only_frac = 0.3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn file_size_models_match_table2() {
        let store = FileSizeModel::paper_store();
        assert_eq!(store.components.len(), 3);
        assert!((store.components[0].0 - 0.91).abs() < 1e-12);
        assert!((store.components[0].1 - 1.5e6).abs() < 1e-6);
        let ret = FileSizeModel::paper_retrieve();
        assert!((ret.components[2].1 - 146.8e6).abs() < 1e-3);
        store.validate().unwrap();
        ret.validate().unwrap();
    }

    #[test]
    fn mixed_session_fraction_is_remainder() {
        let s = SessionModel::default();
        assert!((s.mixed_frac() - 0.019).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let c = TraceConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: TraceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn zero_users_invalid() {
        let mut c = TraceConfig::default();
        c.mobile_users = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn negative_diurnal_weight_invalid() {
        let mut c = TraceConfig::default();
        c.diurnal.hour_weights[5] = -1.0;
        assert!(c.validate().is_err());
    }
}
