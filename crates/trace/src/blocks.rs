//! Per-user record-block sources and shard partitioning.
//!
//! The analysis pipeline consumes a trace as a sequence of per-user record
//! blocks. [`BlockSource`] abstracts over where those blocks come from — a
//! live [`TraceGenerator`](crate::TraceGenerator) that materialises each
//! user on demand, or blocks already resident in memory — and exposes them
//! by index so parallel consumers can partition users into contiguous
//! shards. Contiguity is what makes sharded processing deterministic:
//! concatenating per-shard results in shard-index order reproduces the
//! exact sequential block order for *any* shard count.

use std::ops::Range;

use crate::record::LogRecord;

/// An indexable source of per-user record blocks.
///
/// Implementations must be cheap to share across threads (`Sync`) and
/// `block(i)` must be a pure function of `i`: calling it in any order, from
/// any thread, any number of times, yields the same records.
pub trait BlockSource: Sync {
    /// Number of user blocks.
    fn len(&self) -> usize;

    /// True when the source holds no blocks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `idx`-th user's records, time-ordered.
    fn block(&self, idx: usize) -> Vec<LogRecord>;
}

impl BlockSource for [Vec<LogRecord>] {
    fn len(&self) -> usize {
        <[Vec<LogRecord>]>::len(self)
    }

    fn block(&self, idx: usize) -> Vec<LogRecord> {
        self[idx].clone()
    }
}

impl BlockSource for Vec<Vec<LogRecord>> {
    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn block(&self, idx: usize) -> Vec<LogRecord> {
        self[idx].clone()
    }
}

impl<B: BlockSource + ?Sized> BlockSource for &B {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn block(&self, idx: usize) -> Vec<LogRecord> {
        (**self).block(idx)
    }
}

/// Resolves a `threads` knob: `0` means one worker per available core.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Splits `n` items into at most `shards` contiguous, near-equal ranges
/// covering `0..n` in order. Fewer ranges come back when `n < shards`;
/// zero shards are treated as one.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1).min(n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_contiguous_and_cover_all_items() {
        for n in [0usize, 1, 2, 7, 16, 100, 101] {
            for shards in [1usize, 2, 3, 4, 7, 8, 64] {
                let ranges = shard_ranges(n, shards);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "gap at n={n} shards={shards}");
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, n, "coverage at n={n} shards={shards}");
                assert!(ranges.len() <= shards);
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        let ranges = shard_ranges(10, 4);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn vec_source_round_trips() {
        let blocks: Vec<Vec<LogRecord>> = vec![Vec::new(), Vec::new()];
        assert_eq!(BlockSource::len(&blocks), 2);
        assert!(BlockSource::block(&blocks, 1).is_empty());
        let by_ref = &blocks;
        assert_eq!(BlockSource::len(&by_ref), 2);
        assert!(!BlockSource::is_empty(&by_ref));
    }
}
