//! Direct-to-disk trace emission: sharded per-user files and an
//! external-sort writer for globally time-ordered traces.
//!
//! The paper's trace is 349 M records — far past what
//! [`TraceGenerator::generate_sorted`] should ever materialise. This
//! module writes traces *as they are generated*:
//!
//! * [`TraceGenerator::write_shards`] streams per-user record blocks into
//!   `shards` files of contiguous user ranges. Peak memory is one user's
//!   records per worker. The shard layout depends only on the `shards`
//!   argument (never on the thread count), each shard holds whole users
//!   in ascending user order with records time-ordered per user — exactly
//!   the grouping contract the streaming analysis path
//!   (`mcs_analysis::analyze_trace_stream`) relies on.
//! * [`TraceGenerator::write_sorted_trace_file`] produces the same bytes
//!   as writing [`TraceGenerator::generate_sorted`] would, via an
//!   external sort: bounded sorted runs spill to temporary columnar
//!   shards, then a k-way merge (lower run wins ties, mirroring
//!   `merge_sorted_runs`) streams the global order to the output file.
//!   Peak memory is one run, never the trace.

use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};

use mcs_obs::{Obs, Registry};

use crate::blocks::{effective_threads, shard_ranges};
use crate::columnar::{ColumnarRecords, ColumnarWriter};
use crate::generator::TraceGenerator;
use crate::io::{TraceFormat, TraceWriter};
use crate::record::LogRecord;

/// Users per sorted spill run in
/// [`TraceGenerator::write_sorted_trace_file`] — bounds peak memory at a
/// few tens of MB regardless of trace size.
const SORT_RUN_USERS: usize = 50_000;

/// Where a sharded trace landed on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedTrace {
    /// Shard files, in ascending user order.
    pub paths: Vec<PathBuf>,
    /// Total records written.
    pub records: u64,
    /// Total bytes across all shard files.
    pub bytes: u64,
}

/// One worker's result: `(shard index, path, records, bytes)` per shard,
/// plus the worker's private metric registry.
type WorkerShards = (Vec<(usize, PathBuf, u64, u64)>, Registry);

impl TraceGenerator {
    /// Writes the whole trace as `shards` files under `dir` (created if
    /// missing), named `shard-NNNN.<ext>`. See the module docs for the
    /// layout contract. Returns the shard paths and totals.
    pub fn write_shards(
        &self,
        dir: &Path,
        format: TraceFormat,
        shards: usize,
    ) -> io::Result<ShardedTrace> {
        self.write_shards_observed(dir, format, shards, &mut Obs::new())
    }

    /// [`Self::write_shards`] that also reports into `obs`: the same
    /// `gen.users` / `gen.records` / `gen.user_records` workload metrics
    /// as the in-memory generation paths (booked in per-worker private
    /// registries, merged in shard order — bit-identical at any thread
    /// count), plus per-shard `gen.shard.records` trace events describing
    /// this particular execution.
    pub fn write_shards_observed(
        &self,
        dir: &Path,
        format: TraceFormat,
        shards: usize,
        obs: &mut Obs,
    ) -> io::Result<ShardedTrace> {
        std::fs::create_dir_all(dir)?;
        let user_ranges = shard_ranges(self.users().len(), shards.max(1));
        let workers = effective_threads(self.config().threads).min(user_ranges.len().max(1));

        let write_one = |shard_idx: usize,
                         range: std::ops::Range<usize>,
                         metrics: &mut Registry|
         -> io::Result<(usize, PathBuf, u64, u64)> {
            let path = dir.join(format!("shard-{shard_idx:04}.{}", format.extension()));
            let file = File::create(&path)?;
            let mut w = TraceWriter::new(BufWriter::new(file), format)?;
            let users = metrics.counter("gen.users");
            let records = metrics.counter("gen.records");
            let per_user = metrics.histogram("gen.user_records");
            for user in &self.users()[range] {
                let block = self.user_records(user);
                metrics.inc(users);
                metrics.add(records, block.len() as u64);
                metrics.observe(per_user, block.len() as u64);
                for r in &block {
                    w.push(r)?;
                }
            }
            let (mut out, n) = w.finish()?;
            std::io::Write::flush(&mut out)?;
            drop(out);
            let bytes = std::fs::metadata(&path)?.len();
            Ok((shard_idx, path, n, bytes))
        };

        let mut results: Vec<WorkerShards> = Vec::with_capacity(workers);
        if workers <= 1 {
            let mut metrics = Registry::new();
            let mut shards_out = Vec::with_capacity(user_ranges.len());
            for (i, range) in user_ranges.into_iter().enumerate() {
                shards_out.push(write_one(i, range, &mut metrics)?);
            }
            results.push((shards_out, metrics));
        } else {
            // Workers own contiguous chunks of shard indices, so merging
            // worker registries in worker order merges in shard order.
            let worker_ranges = shard_ranges(user_ranges.len(), workers);
            let mut joined: Vec<io::Result<WorkerShards>> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let user_ranges = &user_ranges;
                let write_one = &write_one;
                let handles: Vec<_> = worker_ranges
                    .into_iter()
                    .map(|wr| {
                        scope.spawn(move || {
                            let mut metrics = Registry::new();
                            let mut shards_out = Vec::with_capacity(wr.len());
                            for i in wr {
                                shards_out.push(write_one(
                                    i,
                                    user_ranges[i].clone(),
                                    &mut metrics,
                                )?);
                            }
                            Ok((shards_out, metrics))
                        })
                    })
                    .collect();
                for h in handles {
                    // mcs-lint: allow(panic, join only fails if a worker panicked; re-raise it)
                    joined.push(h.join().expect("shard writer worker panicked"));
                }
            });
            for r in joined {
                results.push(r?);
            }
        }

        let mut out = ShardedTrace {
            paths: Vec::new(),
            records: 0,
            bytes: 0,
        };
        for (shards_out, metrics) in &results {
            obs.metrics.merge(metrics);
            for (i, path, n, bytes) in shards_out {
                obs.trace.event(*i as u64, "gen.shard.records", *n);
                out.paths.push(path.clone());
                out.records += n;
                out.bytes += bytes;
            }
        }
        obs.trace.event(
            out.paths.len() as u64,
            "gen.merge.fan_in",
            out.paths.len() as u64,
        );
        Ok(out)
    }

    /// Writes the globally time-sorted trace to `path` in `format`,
    /// producing byte-for-byte what serialising
    /// [`Self::generate_sorted`] would — without ever holding the full
    /// trace. Sorted runs of at most 50 000 users spill to
    /// temporary `.mct` files beside `path` (generated on
    /// [`crate::TraceConfig::threads`] workers), then a sequential k-way
    /// merge streams the global order into the output. Spills are
    /// deleted on success and on error.
    pub fn write_sorted_trace_file(&self, path: &Path, format: TraceFormat) -> io::Result<u64> {
        let n_users = self.users().len();
        let run_ranges = shard_ranges(n_users, n_users.div_ceil(SORT_RUN_USERS).max(1));

        let sorted_run = |range: std::ops::Range<usize>| -> Vec<LogRecord> {
            let mut run: Vec<LogRecord> = self.users()[range]
                .iter()
                .flat_map(|u| self.user_records(u))
                .collect();
            run.sort_by_key(crate::generator::sort_key);
            run
        };

        // Single run: sort in place and stream straight out, no spills.
        if run_ranges.len() <= 1 {
            let run = run_ranges
                .into_iter()
                .next()
                .map(sorted_run)
                .unwrap_or_default();
            let mut w = TraceWriter::new(BufWriter::new(File::create(path)?), format)?;
            for r in &run {
                w.push(r)?;
            }
            let (_, n) = w.finish()?;
            return Ok(n);
        }

        let spill_path =
            |i: usize| -> PathBuf { path.with_extension(format!("run{i:04}.spill.mct")) };
        let workers = effective_threads(self.config().threads).min(run_ranges.len());

        let write_spill = |i: usize, range: std::ops::Range<usize>| -> io::Result<()> {
            let run = sorted_run(range);
            let mut w = ColumnarWriter::new(BufWriter::new(File::create(spill_path(i))?))?;
            for r in &run {
                w.push(r)?;
            }
            let (mut out, _) = w.finish()?;
            std::io::Write::flush(&mut out)?;
            Ok(())
        };

        let n_runs = run_ranges.len();
        let mut spill_result: io::Result<()> = Ok(());
        if workers <= 1 {
            for (i, range) in run_ranges.into_iter().enumerate() {
                spill_result = spill_result.and(write_spill(i, range));
            }
        } else {
            let worker_ranges = shard_ranges(n_runs, workers);
            let mut joined: Vec<io::Result<()>> = Vec::with_capacity(workers);
            let run_ranges = &run_ranges;
            let write_spill = &write_spill;
            std::thread::scope(|scope| {
                let handles: Vec<_> = worker_ranges
                    .into_iter()
                    .map(|wr| {
                        scope.spawn(move || {
                            for i in wr {
                                write_spill(i, run_ranges[i].clone())?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                for h in handles {
                    // mcs-lint: allow(panic, join only fails if a worker panicked; re-raise it)
                    joined.push(h.join().expect("sort spill worker panicked"));
                }
            });
            for r in joined {
                spill_result = spill_result.and(r);
            }
        }

        let merged = spill_result.and_then(|()| merge_spills_to(path, format, &spill_path, n_runs));
        for i in 0..n_runs {
            let _ = std::fs::remove_file(spill_path(i));
        }
        merged
    }
}

/// K-way merges `n_runs` sorted columnar spill files into `path`,
/// streaming one record at a time. Ties prefer the lower run index —
/// with runs being contiguous ascending user ranges this reproduces the
/// stable global sort of `merge_sorted_runs`.
fn merge_spills_to(
    path: &Path,
    format: TraceFormat,
    spill_path: &dyn Fn(usize) -> PathBuf,
    n_runs: usize,
) -> io::Result<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let next_record = |s: &mut ColumnarRecords<BufReader<File>>| -> io::Result<Option<LogRecord>> {
        match s.next() {
            None => Ok(None),
            Some(Ok(r)) => Ok(Some(r)),
            Some(Err(e)) => Err(io::Error::other(format!("sort spill unreadable: {e}"))),
        }
    };

    let mut streams = Vec::with_capacity(n_runs);
    let mut heads: Vec<Option<LogRecord>> = Vec::with_capacity(n_runs);
    let mut heap = BinaryHeap::with_capacity(n_runs);
    for i in 0..n_runs {
        let mut s = ColumnarRecords::new(BufReader::new(File::open(spill_path(i))?));
        let head = next_record(&mut s)?;
        if let Some(r) = &head {
            heap.push(Reverse((crate::generator::sort_key(r), i)));
        }
        streams.push(s);
        heads.push(head);
    }

    let mut w = TraceWriter::new(BufWriter::new(File::create(path)?), format)?;
    while let Some(Reverse((_, i))) = heap.pop() {
        let next = next_record(&mut streams[i])?;
        if let Some(r) = std::mem::replace(&mut heads[i], next) {
            w.push(&r)?;
        }
        if let Some(r) = &heads[i] {
            heap.push(Reverse((crate::generator::sort_key(r), i)));
        }
    }
    let (_, n) = w.finish()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{collect_records, open_trace, write_trace_file};
    use crate::{TraceConfig, TraceGenerator};

    fn small_gen(seed: u64, threads: usize) -> TraceGenerator {
        let mut cfg = TraceConfig::small(seed);
        cfg.mobile_users = 150;
        cfg.pc_only_users = 40;
        cfg.threads = threads;
        TraceGenerator::new(cfg).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcs-shard-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn read_shards(sharded: &ShardedTrace, format: TraceFormat) -> Vec<LogRecord> {
        let mut all = Vec::new();
        for p in &sharded.paths {
            all.extend(collect_records(open_trace(p, format).unwrap()).unwrap());
        }
        all
    }

    #[test]
    fn shards_concatenate_to_the_full_trace_in_every_format() {
        let g = small_gen(31, 1);
        let expected: Vec<LogRecord> = g.iter_user_records().flatten().collect();
        for format in [TraceFormat::Jsonl, TraceFormat::Csv, TraceFormat::Columnar] {
            let dir = temp_dir(&format!("concat-{}", format.extension()));
            let sharded = g.write_shards(&dir, format, 4).unwrap();
            assert_eq!(sharded.paths.len(), 4);
            assert_eq!(sharded.records, expected.len() as u64);
            assert!(sharded.bytes > 0);
            assert_eq!(read_shards(&sharded, format), expected, "{format:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn shard_layout_is_thread_invariant() {
        let baseline_dir = temp_dir("layout-t1");
        let baseline = small_gen(32, 1)
            .write_shards(&baseline_dir, TraceFormat::Columnar, 5)
            .unwrap();
        let baseline_bytes: Vec<Vec<u8>> = baseline
            .paths
            .iter()
            .map(|p| std::fs::read(p).unwrap())
            .collect();
        for threads in [2usize, 4] {
            let dir = temp_dir(&format!("layout-t{threads}"));
            let sharded = small_gen(32, threads)
                .write_shards(&dir, TraceFormat::Columnar, 5)
                .unwrap();
            assert_eq!(sharded.records, baseline.records);
            assert_eq!(sharded.bytes, baseline.bytes);
            let bytes: Vec<Vec<u8>> = sharded
                .paths
                .iter()
                .map(|p| std::fs::read(p).unwrap())
                .collect();
            assert_eq!(bytes, baseline_bytes, "threads = {threads}");
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&baseline_dir);
    }

    #[test]
    fn shard_metrics_match_in_memory_generation_at_any_thread_count() {
        let g1 = small_gen(33, 1);
        let mut base = Obs::new();
        let _ = g1.par_user_records_observed(&mut base);
        let base_snap = base.snapshot();
        for threads in [1usize, 3] {
            let dir = temp_dir(&format!("metrics-t{threads}"));
            let mut obs = Obs::new();
            small_gen(33, threads)
                .write_shards_observed(&dir, TraceFormat::Columnar, 6, &mut obs)
                .unwrap();
            assert_eq!(obs.snapshot(), base_snap, "threads = {threads}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn more_shards_than_users_degrades_gracefully() {
        let mut cfg = TraceConfig::small(34);
        cfg.mobile_users = 3;
        cfg.pc_only_users = 1;
        let g = TraceGenerator::new(cfg).unwrap();
        let dir = temp_dir("tiny");
        let sharded = g.write_shards(&dir, TraceFormat::Columnar, 16).unwrap();
        assert_eq!(sharded.paths.len(), 4, "one shard per user, no empties");
        let expected: Vec<LogRecord> = g.iter_user_records().flatten().collect();
        assert_eq!(read_shards(&sharded, TraceFormat::Columnar), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sorted_file_matches_generate_sorted_byte_for_byte() {
        let g = small_gen(35, 2);
        let dir = temp_dir("sorted");
        std::fs::create_dir_all(&dir).unwrap();
        for format in [TraceFormat::Jsonl, TraceFormat::Csv, TraceFormat::Columnar] {
            let streamed = dir.join(format!("streamed.{}", format.extension()));
            let n = g.write_sorted_trace_file(&streamed, format).unwrap();
            let expected = g.generate_sorted();
            assert_eq!(n, expected.len() as u64);
            let back = collect_records(open_trace(&streamed, format).unwrap()).unwrap();
            assert_eq!(back, expected, "{format:?}");
            // Byte-for-byte against the in-memory path serialised the
            // same way.
            let in_memory = dir.join(format!("in-memory.{}", format.extension()));
            {
                let mut w =
                    TraceWriter::new(BufWriter::new(File::create(&in_memory).unwrap()), format)
                        .unwrap();
                for r in &expected {
                    w.push(r).unwrap();
                }
                w.finish().unwrap();
            }
            assert_eq!(
                std::fs::read(&streamed).unwrap(),
                std::fs::read(&in_memory).unwrap(),
                "{format:?}"
            );
            // Spills were cleaned up.
            assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
                .unwrap()
                .file_name()
                .to_string_lossy()
                .contains("spill")));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sorted_file_external_merge_path_is_exercised() {
        // Force multiple spill runs by shrinking nothing: with 190 users
        // the single-run fast path would fire, so this test instead pins
        // the merge helper directly through a tiny SORT_RUN_USERS stand-in
        // is impossible without recompiling — so exercise merge_spills_to
        // against hand-written spills.
        let g = small_gen(36, 1);
        let expected = g.generate_sorted();
        let dir = temp_dir("merge");
        std::fs::create_dir_all(&dir).unwrap();
        // Split the sorted trace into 3 interleaved-by-user sorted runs,
        // mimicking contiguous user ranges.
        let users: Vec<u64> = {
            let mut u: Vec<u64> = expected.iter().map(|r| r.user_id).collect();
            u.sort_unstable();
            u.dedup();
            u
        };
        let cut1 = users[users.len() / 3];
        let cut2 = users[2 * users.len() / 3];
        let spill_path = |i: usize| dir.join(format!("hand.run{i:04}.spill.mct"));
        for (i, pred) in [
            Box::new(|r: &LogRecord| r.user_id <= cut1) as Box<dyn Fn(&LogRecord) -> bool>,
            Box::new(|r: &LogRecord| r.user_id > cut1 && r.user_id <= cut2),
            Box::new(|r: &LogRecord| r.user_id > cut2),
        ]
        .into_iter()
        .enumerate()
        {
            let run: Vec<LogRecord> = expected.iter().copied().filter(|r| pred(r)).collect();
            let mut w =
                ColumnarWriter::new(BufWriter::new(File::create(spill_path(i)).unwrap())).unwrap();
            for r in &run {
                w.push(r).unwrap();
            }
            w.finish().unwrap();
        }
        let out = dir.join("merged.csv");
        let n = merge_spills_to(&out, TraceFormat::Csv, &spill_path, 3).unwrap();
        assert_eq!(n, expected.len() as u64);
        let back = collect_records(open_trace(&out, TraceFormat::Csv).unwrap()).unwrap();
        assert_eq!(back, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shards_agree_with_write_trace_file_concatenation() {
        // write_trace_file (the one-file path) and write_shards with one
        // shard must produce identical bytes.
        let g = small_gen(37, 1);
        let dir = temp_dir("onefile");
        std::fs::create_dir_all(&dir).unwrap();
        for format in [TraceFormat::Jsonl, TraceFormat::Columnar] {
            let single = dir.join(format!("single.{}", format.extension()));
            write_trace_file(&g, &single, format).unwrap();
            let sharded = g.write_shards(&dir.join("s"), format, 1).unwrap();
            assert_eq!(sharded.paths.len(), 1);
            assert_eq!(
                std::fs::read(&single).unwrap(),
                std::fs::read(&sharded.paths[0]).unwrap(),
                "{format:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
