//! Log schema and synthetic workload generator for the IMC'16 mobile cloud
//! storage reproduction.
//!
//! The paper analysed 349 M HTTP request logs from a production service;
//! that trace is proprietary and its published download link is gone. This
//! crate substitutes a **generative workload model whose parameters are the
//! paper's own published numbers**:
//!
//! | Paper artifact | Planted via |
//! |---|---|
//! | Table 1 log schema | [`record::LogRecord`] |
//! | Fig. 3 two-mode operation intervals | session gap lognormals in [`config::SessionModel`] |
//! | §3.1 session-type mix (68.2 / 29.9 / 1.9 %) | session planning in [`sessions`] |
//! | Table 2 file-size mixtures | [`config::FileSizeModel`] |
//! | Table 3 user classes per client group | [`config::TraceConfig`] class mixes |
//! | Fig. 8/9 engagement bimodality | [`config::EngagementModel`] |
//! | Fig. 10 stretched-exponential activity | [`config::ActivityModel`] |
//! | Fig. 1 diurnal load with the 11 PM surge | [`config::DiurnalModel`] |
//! | Fig. 12/14/16 timing distributions | [`config::NetworkModel`] / [`netmodel`] |
//!
//! The companion `mcs-analysis` crate consumes only the raw log records and
//! re-derives every model — recovering the planted parameters end-to-end
//! validates the analysis pipeline, and the planted parameters being the
//! paper's keeps every reproduced figure on the published shape.
//!
//! Generation is fully deterministic in [`config::TraceConfig::seed`].

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod blocks;
pub mod columnar;
pub mod config;
pub mod generator;
pub mod io;
pub mod netmodel;
pub mod population;
mod proptests;
pub mod record;
pub mod sessions;
pub mod shard;

pub use blocks::{effective_threads, shard_ranges, BlockSource};
pub use columnar::{read_columnar, read_columnar_lossy, write_columnar, ColumnarWriter};
pub use config::TraceConfig;
pub use generator::TraceGenerator;
pub use io::{
    open_trace, read_csv_lossy, read_jsonl_lossy, ErrorBudget, LossyRead, ReadError, RecordStream,
    TraceFormat, TraceWriter,
};
pub use population::{ClientGroup, UserClass, UserProfile};
pub use record::{DeviceType, Direction, LogRecord, RequestType, CHUNK_SIZE};
pub use sessions::SessionPlan;
pub use shard::ShardedTrace;
