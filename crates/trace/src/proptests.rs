//! Property-based round-trip tests over the three trace formats: for
//! *any* record sequence (not only generator-shaped ones), encode →
//! decode must be the identity, and decode → re-encode must reproduce
//! the file byte for byte. The proptest cases are backed by a seeded
//! splitmix64 corpus so each case sweeps a wide swath of the value
//! space, including the `u64::MAX` / zero edges.

#![cfg(test)]

use proptest::prelude::*;

use crate::io::{collect_records, RecordStream, TraceFormat, TraceWriter};
use crate::record::{DeviceType, Direction, LogRecord, RequestType};

/// splitmix64: deterministic, well-mixed 64-bit stream.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A finite, Display-round-trippable f64 from random bits (millisecond
/// timings in the trace are non-negative; keep to that domain but allow
/// huge and tiny magnitudes).
fn finite_f64(bits: u64) -> f64 {
    match bits % 5 {
        0 => 0.0,
        1 => (bits >> 8) as f64,
        2 => (bits >> 8) as f64 / 1024.0,
        3 => (bits >> 40) as f64 * 1e-9,
        _ => (bits >> 20) as f64 * 1e6,
    }
}

/// One pseudo-random record, hitting id/volume edges with real frequency.
fn random_record(state: &mut u64) -> LogRecord {
    let pick = |state: &mut u64| match next(state) % 4 {
        0 => 0,
        1 => u64::MAX,
        2 => next(state) % 1000,
        _ => next(state),
    };
    let device_type = match next(state) % 3 {
        0 => DeviceType::Android,
        1 => DeviceType::Ios,
        _ => DeviceType::Pc,
    };
    let request = match next(state) % 4 {
        0 => RequestType::FileOp(Direction::Store),
        1 => RequestType::FileOp(Direction::Retrieve),
        2 => RequestType::Chunk(Direction::Store),
        _ => RequestType::Chunk(Direction::Retrieve),
    };
    LogRecord {
        timestamp_ms: pick(state),
        device_type,
        device_id: pick(state),
        user_id: pick(state),
        request,
        volume_bytes: pick(state),
        processing_ms: finite_f64(next(state)),
        srv_ms: finite_f64(next(state)),
        rtt_ms: finite_f64(next(state)),
        proxied: next(state).is_multiple_of(2),
    }
}

/// Encodes `records` in `format`, returning the file bytes.
fn encode(records: &[LogRecord], format: TraceFormat) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new(), format).unwrap();
    for r in records {
        writer.push(r).unwrap();
    }
    let (bytes, written) = writer.finish().unwrap();
    assert_eq!(written, records.len() as u64);
    bytes
}

/// Decodes `bytes` in `format` via the streaming reader.
fn decode(bytes: &[u8], format: TraceFormat) -> Vec<LogRecord> {
    collect_records(RecordStream::new(std::io::BufReader::new(bytes), format)).unwrap()
}

proptest! {
    /// Encode → decode is the identity and decode → re-encode reproduces
    /// the bytes, in every format, for arbitrary record sequences.
    #[test]
    fn prop_round_trip_and_reencode_all_formats(seed in 0u64..1 << 32, len in 0usize..200) {
        let mut state = seed ^ 0x5eed;
        for case in 0..16u64 {
            let n = (len + case as usize * 13) % 200;
            let records: Vec<LogRecord> =
                (0..n).map(|_| random_record(&mut state)).collect();
            for format in [TraceFormat::Jsonl, TraceFormat::Csv, TraceFormat::Columnar] {
                let bytes = encode(&records, format);
                let back = decode(&bytes, format);
                prop_assert_eq!(&back, &records, "{:?} round trip", format);
                let re = encode(&back, format);
                prop_assert_eq!(re, bytes, "{:?} re-encode bytes", format);
            }
        }
    }

    /// The columnar block boundary must be invisible to readers: any
    /// block size yields the same decoded records (though different
    /// bytes), and re-encoding at that same block size is byte-stable.
    #[test]
    fn prop_columnar_block_size_invariant(seed in 0u64..1 << 32) {
        let mut state = seed ^ 0xb10c;
        let records: Vec<LogRecord> = (0..97).map(|_| random_record(&mut state)).collect();
        let reference = encode(&records, TraceFormat::Columnar);
        for block_records in [1usize, 2, 7, 96, 97, 4096] {
            let mut w =
                crate::columnar::ColumnarWriter::with_block_records(Vec::new(), block_records)
                    .unwrap();
            for r in &records {
                w.push(r).unwrap();
            }
            let (bytes, _) = w.finish().unwrap();
            let back = decode(&bytes, TraceFormat::Columnar);
            prop_assert_eq!(&back, &records, "block size {}", block_records);
            // Same records, same default-block re-encode bytes.
            prop_assert_eq!(encode(&back, TraceFormat::Columnar), reference.clone());
        }
    }
}
