//! User population synthesis: client groups, device inventories, user
//! classes and activity levels.
//!
//! The paper's population (§2.2, §3.2): 1 148 640 mobile users on 1 396 494
//! mobile devices (78.4 % Android accesses), 14.3 % of whom also use PC
//! clients; plus ~2 M PC-only users for the §3.2 comparisons. Table 3 gives
//! the per-group class mixes this module plants.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use mcs_stats::rng::{stream_rng, Categorical, StretchedExpSampler};

use crate::config::TraceConfig;
use crate::record::DeviceType;

/// Which client platforms a user touches (§3.2 groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientGroup {
    /// Mobile devices only.
    MobileOnly,
    /// Both mobile devices and PC clients.
    MobilePc,
    /// PC clients only.
    PcOnly,
}

/// The four §3.2.1 usage classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UserClass {
    /// Stored/retrieved volume ratio > 10⁵ — backup users.
    UploadOnly,
    /// Ratio < 10⁻⁵ — content-distribution consumers.
    DownloadOnly,
    /// Total volume < 1 MB — tried the service and left.
    Occasional,
    /// Substantial two-way traffic — synchronisation users.
    Mixed,
}

/// One device owned by a user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Globally unique device identifier.
    pub id: u64,
    /// Platform.
    pub device_type: DeviceType,
}

/// A synthesised user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Globally unique user identifier.
    pub user_id: u64,
    /// Client group.
    pub group: ClientGroup,
    /// Usage class.
    pub class: UserClass,
    /// Devices (mobile first; a PC device is appended for PC-using groups).
    pub devices: Vec<Device>,
    /// Total files this user will store during the horizon.
    pub store_files: u64,
    /// Total files this user will retrieve during the horizon.
    pub retrieve_files: u64,
    /// Whether the user never returns after their first active day.
    pub oneshot: bool,
    /// First day (0-based) the user is active.
    pub first_day: u32,
}

impl UserProfile {
    /// Number of *mobile* devices.
    pub fn mobile_device_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.device_type.is_mobile())
            .count()
    }

    /// Whether the user uses any PC client.
    pub fn uses_pc(&self) -> bool {
        self.devices.iter().any(|d| d.device_type == DeviceType::Pc)
    }
}

/// Builds the full user population for a configuration. Deterministic in
/// `cfg.seed`.
pub fn build_population(cfg: &TraceConfig) -> Vec<UserProfile> {
    let mut rng = stream_rng(cfg.seed, STREAM_POPULATION);
    let mut next_device_id: u64 = 1;
    let mut users = Vec::with_capacity((cfg.mobile_users + cfg.pc_only_users) as usize);

    let dev_count = Categorical::new(&[
        cfg.device_count_probs[0],
        cfg.device_count_probs[1],
        cfg.device_count_probs[2],
    ]);
    let activity = StretchedExpSampler::new(cfg.activity.x0, cfg.activity.c);

    for user_id in 1..=cfg.mobile_users {
        let uses_pc = rng.random::<f64>() < cfg.mobile_pc_frac;
        let group = if uses_pc {
            ClientGroup::MobilePc
        } else {
            ClientGroup::MobileOnly
        };
        let mix = match group {
            ClientGroup::MobileOnly => &cfg.class_mix_mobile_only,
            ClientGroup::MobilePc => &cfg.class_mix_mobile_pc,
            ClientGroup::PcOnly => unreachable!("mobile loop"),
        };
        let class = draw_class(&mut rng, mix);

        // Casual one-off users do not own device fleets; multi-device
        // ownership concentrates among engaged users (this also keeps the
        // Fig. 8 multi-device cohorts from being diluted by one-shot
        // occasional accounts).
        let n_mobile = if class == UserClass::Occasional {
            1
        } else {
            dev_count.sample(&mut rng) + 1
        };
        let mut devices = Vec::with_capacity(n_mobile + usize::from(uses_pc));
        for _ in 0..n_mobile {
            let device_type = if rng.random::<f64>() < cfg.android_frac {
                DeviceType::Android
            } else {
                DeviceType::Ios
            };
            devices.push(Device {
                id: next_device_id,
                device_type,
            });
            next_device_id += 1;
        }
        if uses_pc {
            devices.push(Device {
                id: next_device_id,
                device_type: DeviceType::Pc,
            });
            next_device_id += 1;
        }

        let (mut store_files, mut retrieve_files) =
            draw_activity(&mut rng, class, &activity, cfg.activity.max_files);
        // Users syncing several devices move proportionally more files
        // (each device contributes its own backups/syncs).
        if n_mobile > 1 && class != UserClass::Occasional {
            store_files = (store_files * n_mobile as u64).min(cfg.activity.max_files);
            retrieve_files = (retrieve_files * n_mobile as u64).min(cfg.activity.max_files);
        }
        let oneshot = draw_oneshot(&mut rng, cfg, group, n_mobile);
        let first_day = rng.random_range(0..cfg.horizon_days);

        users.push(UserProfile {
            user_id,
            group,
            class,
            devices,
            store_files,
            retrieve_files,
            oneshot,
            first_day,
        });
    }

    for offset in 0..cfg.pc_only_users {
        let user_id = cfg.mobile_users + offset + 1;
        let class = draw_class(&mut rng, &cfg.class_mix_pc_only);
        let devices = vec![Device {
            id: next_device_id,
            device_type: DeviceType::Pc,
        }];
        next_device_id += 1;
        let (store_files, retrieve_files) =
            draw_activity(&mut rng, class, &activity, cfg.activity.max_files);
        // PC users return more evenly; reuse the multi-device rate.
        let oneshot = rng.random::<f64>() < cfg.engagement.oneshot_2dev;
        let first_day = rng.random_range(0..cfg.horizon_days);
        users.push(UserProfile {
            user_id,
            group: ClientGroup::PcOnly,
            class,
            devices,
            store_files,
            retrieve_files,
            oneshot,
            first_day,
        });
    }

    users
}

/// RNG stream id for population synthesis (other generator stages use
/// different streams; see `generator.rs`).
pub(crate) const STREAM_POPULATION: u64 = 1;

fn draw_class(rng: &mut impl Rng, mix: &crate::config::ClassMix) -> UserClass {
    let u: f64 = rng.random();
    if u < mix.upload_only {
        UserClass::UploadOnly
    } else if u < mix.upload_only + mix.download_only {
        UserClass::DownloadOnly
    } else if u < mix.upload_only + mix.download_only + mix.occasional {
        UserClass::Occasional
    } else {
        UserClass::Mixed
    }
}

/// Draws (store, retrieve) file budgets consistent with the user's class.
///
/// Upload-only users still make the occasional retrieval *request stream*
/// impossible — their retrieve budget is zero so their volume ratio is
/// infinite (> 10⁵), matching the §3.2.1 classification; and vice versa.
/// Occasional users move a handful of small files. Mixed users get two
/// independent activity draws. Retrieval budgets are smaller than storage
/// budgets overall: the paper observes over twice as many stored as
/// retrieved files per hour (Fig. 1b).
fn draw_activity<R: Rng>(
    rng: &mut R,
    class: UserClass,
    activity: &StretchedExpSampler,
    cap: u64,
) -> (u64, u64) {
    fn draw<R: Rng>(rng: &mut R, activity: &StretchedExpSampler, cap: u64) -> u64 {
        let x = activity.sample(rng).round() as u64;
        x.clamp(1, cap)
    }
    match class {
        UserClass::UploadOnly => (draw(rng, activity, cap), 0),
        UserClass::DownloadOnly => (0, (draw(rng, activity, cap) / 2).max(1)),
        UserClass::Occasional => (u64::from(rng.random::<f64>() < 0.5), 0),
        UserClass::Mixed => {
            let s = draw(rng, activity, cap);
            let r = (draw(rng, activity, cap) / 2).max(1);
            (s, r)
        }
    }
}

fn draw_oneshot(
    rng: &mut impl Rng,
    cfg: &TraceConfig,
    group: ClientGroup,
    n_mobile: usize,
) -> bool {
    let p = match group {
        ClientGroup::MobilePc => cfg.engagement.oneshot_mobile_pc,
        _ => match n_mobile {
            1 => cfg.engagement.oneshot_1dev,
            2 => cfg.engagement.oneshot_2dev,
            _ => cfg.engagement.oneshot_3dev,
        },
    };
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(seed: u64) -> (TraceConfig, Vec<UserProfile>) {
        let cfg = TraceConfig {
            seed,
            mobile_users: 5_000,
            pc_only_users: 1_500,
            ..TraceConfig::default()
        };
        let users = build_population(&cfg);
        (cfg, users)
    }

    #[test]
    fn population_size_and_ids_unique() {
        let (cfg, users) = population(1);
        assert_eq!(users.len() as u64, cfg.mobile_users + cfg.pc_only_users);
        let mut uids: Vec<u64> = users.iter().map(|u| u.user_id).collect();
        uids.sort_unstable();
        uids.dedup();
        assert_eq!(uids.len(), users.len());
        let mut dids: Vec<u64> = users
            .iter()
            .flat_map(|u| u.devices.iter().map(|d| d.id))
            .collect();
        let n_devices = dids.len();
        dids.sort_unstable();
        dids.dedup();
        assert_eq!(dids.len(), n_devices, "device ids must be unique");
    }

    #[test]
    fn group_fractions_close_to_config() {
        let (cfg, users) = population(2);
        let mobile: Vec<_> = users
            .iter()
            .filter(|u| u.group != ClientGroup::PcOnly)
            .collect();
        let with_pc = mobile
            .iter()
            .filter(|u| u.group == ClientGroup::MobilePc)
            .count();
        let frac = with_pc as f64 / mobile.len() as f64;
        assert!(
            (frac - cfg.mobile_pc_frac).abs() < 0.02,
            "mobile&PC fraction {frac}"
        );
    }

    #[test]
    fn android_share_of_devices() {
        let (cfg, users) = population(3);
        let mobile_devices: Vec<DeviceType> = users
            .iter()
            .flat_map(|u| u.devices.iter())
            .filter(|d| d.device_type.is_mobile())
            .map(|d| d.device_type)
            .collect();
        let android = mobile_devices
            .iter()
            .filter(|&&d| d == DeviceType::Android)
            .count();
        let frac = android as f64 / mobile_devices.len() as f64;
        assert!((frac - cfg.android_frac).abs() < 0.02, "android {frac}");
    }

    #[test]
    fn class_mix_close_to_table3() {
        let (cfg, users) = population(4);
        let mobile_only: Vec<_> = users
            .iter()
            .filter(|u| u.group == ClientGroup::MobileOnly)
            .collect();
        let frac = |c: UserClass| {
            mobile_only.iter().filter(|u| u.class == c).count() as f64 / mobile_only.len() as f64
        };
        assert!((frac(UserClass::UploadOnly) - cfg.class_mix_mobile_only.upload_only).abs() < 0.03);
        assert!(
            (frac(UserClass::DownloadOnly) - cfg.class_mix_mobile_only.download_only).abs() < 0.03
        );
        assert!((frac(UserClass::Occasional) - cfg.class_mix_mobile_only.occasional).abs() < 0.03);
    }

    #[test]
    fn budgets_respect_class_semantics() {
        let (_, users) = population(5);
        for u in &users {
            match u.class {
                UserClass::UploadOnly => {
                    assert!(u.store_files >= 1);
                    assert_eq!(u.retrieve_files, 0);
                }
                UserClass::DownloadOnly => {
                    assert_eq!(u.store_files, 0);
                    assert!(u.retrieve_files >= 1);
                }
                UserClass::Occasional => {
                    assert!(u.store_files <= 1 && u.retrieve_files == 0);
                }
                UserClass::Mixed => {
                    assert!(u.store_files >= 1 && u.retrieve_files >= 1);
                }
            }
        }
    }

    #[test]
    fn pc_only_users_have_only_pc_devices() {
        let (_, users) = population(6);
        for u in users.iter().filter(|u| u.group == ClientGroup::PcOnly) {
            assert_eq!(u.devices.len(), 1);
            assert_eq!(u.devices[0].device_type, DeviceType::Pc);
            assert_eq!(u.mobile_device_count(), 0);
            assert!(u.uses_pc());
        }
    }

    #[test]
    fn mobile_pc_users_have_both() {
        let (_, users) = population(7);
        for u in users.iter().filter(|u| u.group == ClientGroup::MobilePc) {
            assert!(u.mobile_device_count() >= 1);
            assert!(u.uses_pc());
        }
    }

    #[test]
    fn oneshot_rate_depends_on_device_count() {
        let (cfg, users) = population(8);
        let rate = |n: usize| {
            let group: Vec<_> = users
                .iter()
                .filter(|u| u.group == ClientGroup::MobileOnly && u.mobile_device_count() == n)
                .collect();
            group.iter().filter(|u| u.oneshot).count() as f64 / group.len().max(1) as f64
        };
        assert!((rate(1) - cfg.engagement.oneshot_1dev).abs() < 0.05);
        assert!(rate(2) < rate(1));
    }

    #[test]
    fn deterministic_in_seed() {
        let (_, a) = population(9);
        let (_, b) = population(9);
        assert_eq!(a, b);
        let (_, c) = population(10);
        assert_ne!(a, c);
    }

    #[test]
    fn first_day_within_horizon() {
        let (cfg, users) = population(11);
        assert!(users.iter().all(|u| u.first_day < cfg.horizon_days));
    }
}
