//! The HTTP request-log schema of Table 1.
//!
//! Every entry the storage front-end servers log is one [`LogRecord`]. The
//! original dataset anonymises device and user identifiers; here they are
//! synthetic `u64`s to begin with. Timestamps are milliseconds relative to
//! the trace start (the paper logs wall-clock seconds; millisecond
//! resolution is needed so chunk requests within a flow stay ordered).

use serde::{Deserialize, Serialize};

/// Fixed chunk size of the examined service: 512 KB (§2.1).
pub const CHUNK_SIZE: u64 = 512 * 1024;

/// One week in milliseconds — the paper's observation horizon.
pub const WEEK_MS: u64 = 7 * 24 * 3600 * 1000;

/// Client platform of the device issuing a request.
///
/// The paper's mobile dataset splits 78.4 % Android / 21.6 % iOS; a separate
/// PC-client dataset backs the §3.2 usage comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceType {
    /// Android mobile device.
    Android,
    /// iOS mobile device.
    Ios,
    /// Desktop PC client.
    Pc,
}

impl DeviceType {
    /// Whether the device is a mobile terminal (Android or iOS).
    pub fn is_mobile(self) -> bool {
        !matches!(self, DeviceType::Pc)
    }
}

/// Transfer direction: towards the cloud (store) or from it (retrieve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Upload / file storage.
    Store,
    /// Download / file retrieval.
    Retrieve,
}

/// The two request kinds the front-end servers see (§2.1): a *file
/// operation* announcing a file's metadata and beginning its transfer, and
/// the *chunk requests* that move the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestType {
    /// File storage/retrieval operation request (carries metadata, no data).
    FileOp(Direction),
    /// Chunk storage/retrieval request (carries up to [`CHUNK_SIZE`] bytes).
    Chunk(Direction),
}

impl RequestType {
    /// The transfer direction of the request.
    pub fn direction(self) -> Direction {
        match self {
            RequestType::FileOp(d) | RequestType::Chunk(d) => d,
        }
    }

    /// True for file-operation requests.
    pub fn is_file_op(self) -> bool {
        matches!(self, RequestType::FileOp(_))
    }

    /// True for chunk requests.
    pub fn is_chunk(self) -> bool {
        matches!(self, RequestType::Chunk(_))
    }
}

/// One log entry, with exactly the Table 1 fields.
///
/// `processing_ms` is the front-end request processing time `T_chunk`
/// (first bytes received by the front-end server → last bytes sent to the
/// client); `srv_ms` is the upstream storage-server share `T_srv` of it,
/// which §4 subtracts to estimate the pure transmission time
/// `t_tran = T_chunk − T_srv`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Milliseconds since the start of the trace.
    pub timestamp_ms: u64,
    /// Platform of the issuing device.
    pub device_type: DeviceType,
    /// Anonymised device identifier.
    pub device_id: u64,
    /// Anonymised user-account identifier.
    pub user_id: u64,
    /// File operation vs chunk request, and its direction.
    pub request: RequestType,
    /// Data volume moved by the request in bytes (0 for file operations).
    pub volume_bytes: u64,
    /// Request processing time `T_chunk` in milliseconds.
    pub processing_ms: f64,
    /// Upstream (storage-server) processing time `T_srv` in milliseconds.
    pub srv_ms: f64,
    /// Average RTT of the carrying TCP connection, in milliseconds.
    pub rtt_ms: f64,
    /// Whether the request went through an HTTP proxy
    /// (`X-FORWARDED-FOR` present).
    pub proxied: bool,
}

impl LogRecord {
    /// Estimated pure transmission time `t_tran = T_chunk − T_srv` (§4.1),
    /// clamped at zero against measurement noise.
    pub fn transmission_ms(&self) -> f64 {
        (self.processing_ms - self.srv_ms).max(0.0)
    }

    /// The §4.1 sending-window estimate
    /// `swnd = reqsize · RTT / t_tran` in bytes, or `None` for requests
    /// that moved no data or have degenerate timing.
    pub fn estimated_swnd(&self) -> Option<f64> {
        let t = self.transmission_ms();
        if self.volume_bytes == 0 || t <= 0.0 || self.rtt_ms <= 0.0 {
            return None;
        }
        Some(self.volume_bytes as f64 * self.rtt_ms / t)
    }

    /// Day index (0-based) of the timestamp within the trace.
    pub fn day(&self) -> u64 {
        self.timestamp_ms / (24 * 3600 * 1000)
    }

    /// Second-of-trace of the timestamp (for hourly binning).
    pub fn second(&self) -> u64 {
        self.timestamp_ms / 1000
    }
}

/// Number of chunks a file of `size` bytes splits into (§2.1: files larger
/// than the chunk size are split; every file has at least one chunk).
pub fn chunk_count(size: u64) -> u64 {
    if size == 0 {
        1
    } else {
        size.div_ceil(CHUNK_SIZE)
    }
}

/// Sizes of the individual chunks of a file of `size` bytes: all
/// [`CHUNK_SIZE`] except a smaller final remainder (a zero-byte file still
/// produces one empty chunk so the transfer exists on the wire).
pub fn chunk_sizes(size: u64) -> Vec<u64> {
    let n = chunk_count(size);
    (0..n)
        .map(|i| {
            if i + 1 < n {
                CHUNK_SIZE
            } else {
                size - (n - 1) * CHUNK_SIZE
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_record() -> LogRecord {
        LogRecord {
            timestamp_ms: 1234,
            device_type: DeviceType::Android,
            device_id: 42,
            user_id: 7,
            request: RequestType::Chunk(Direction::Store),
            volume_bytes: CHUNK_SIZE,
            processing_ms: 4398.0,
            srv_ms: 100.0,
            rtt_ms: 89.238,
            proxied: false,
        }
    }

    #[test]
    fn transmission_time_subtracts_server_share() {
        let r = sample_record();
        assert!((r.transmission_ms() - 4298.0).abs() < 1e-9);
    }

    #[test]
    fn transmission_time_clamped() {
        let mut r = sample_record();
        r.srv_ms = 9999.0;
        assert_eq!(r.transmission_ms(), 0.0);
    }

    #[test]
    fn swnd_estimate_formula() {
        let r = sample_record();
        // swnd = 524288 bytes * 89.238 ms / 4298 ms
        let expected = 524_288.0 * 89.238 / 4298.0;
        assert!((r.estimated_swnd().unwrap() - expected).abs() < 1e-6);
    }

    #[test]
    fn swnd_estimate_none_for_degenerate() {
        let mut r = sample_record();
        r.volume_bytes = 0;
        assert!(r.estimated_swnd().is_none());
        let mut r = sample_record();
        r.processing_ms = 50.0; // t_tran clamps to 0
        assert!(r.estimated_swnd().is_none());
    }

    #[test]
    fn day_and_second() {
        let mut r = sample_record();
        r.timestamp_ms = 2 * 24 * 3600 * 1000 + 5000;
        assert_eq!(r.day(), 2);
        assert_eq!(r.second(), 2 * 24 * 3600 + 5);
    }

    #[test]
    fn chunking_exact_multiple() {
        assert_eq!(chunk_count(CHUNK_SIZE), 1);
        assert_eq!(chunk_count(2 * CHUNK_SIZE), 2);
        let sizes = chunk_sizes(2 * CHUNK_SIZE);
        assert_eq!(sizes, vec![CHUNK_SIZE, CHUNK_SIZE]);
    }

    #[test]
    fn chunking_remainder() {
        let sizes = chunk_sizes(CHUNK_SIZE + 1);
        assert_eq!(sizes, vec![CHUNK_SIZE, 1]);
    }

    #[test]
    fn chunking_small_and_empty() {
        assert_eq!(chunk_sizes(100), vec![100]);
        assert_eq!(chunk_sizes(0), vec![0]);
    }

    #[test]
    fn device_type_mobility() {
        assert!(DeviceType::Android.is_mobile());
        assert!(DeviceType::Ios.is_mobile());
        assert!(!DeviceType::Pc.is_mobile());
    }

    #[test]
    fn request_type_accessors() {
        let f = RequestType::FileOp(Direction::Retrieve);
        assert!(f.is_file_op() && !f.is_chunk());
        assert_eq!(f.direction(), Direction::Retrieve);
        let c = RequestType::Chunk(Direction::Store);
        assert!(c.is_chunk() && !c.is_file_op());
        assert_eq!(c.direction(), Direction::Store);
    }

    #[test]
    fn json_round_trip() {
        let r = sample_record();
        let mut buf = Vec::new();
        crate::io::write_jsonl(&mut buf, [r]).unwrap();
        let back = crate::io::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, vec![r]);
    }

    proptest! {
        #[test]
        fn prop_chunks_sum_to_size(size in 0u64..100 * CHUNK_SIZE) {
            let sizes = chunk_sizes(size);
            prop_assert_eq!(sizes.iter().sum::<u64>(), size);
            prop_assert_eq!(sizes.len() as u64, chunk_count(size));
            // All full except possibly the last.
            for &s in &sizes[..sizes.len() - 1] {
                prop_assert_eq!(s, CHUNK_SIZE);
            }
            prop_assert!(*sizes.last().unwrap() <= CHUNK_SIZE);
        }
    }
}
